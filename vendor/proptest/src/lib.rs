//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The repro container builds offline, so the real proptest (and its large
//! dependency tree) is unavailable. This vendored subset keeps the API shape
//! the workspace tests use — `proptest!`, `prop_oneof!`, `Just`, ranges,
//! tuples, `prop_map`, `prop_recursive`, `collection::vec`, string "regex"
//! strategies, `prop_assert!`/`prop_assert_eq!` and `ProptestConfig` — with
//! deterministic sample-based generation (seeded per test name + case index)
//! and no shrinking: a failing case panics with its case number so it can be
//! replayed.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xorshift64* generator; seeded from the test name and case
/// index so failures are reproducible run-to-run.
pub struct TestRng(u64);

impl TestRng {
    pub fn deterministic(name_hash: u64, case: u64) -> Self {
        let seed = name_hash ^ case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03;
        TestRng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// FNV-1a hash of a string, used to derive per-test seeds.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A value generator. Unlike real proptest there is no shrinking; `sample`
/// simply draws one value.
pub trait Strategy: Clone + 'static {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }

    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.sample(rng))))
    }

    /// Build recursive values: `depth` levels of `f` stacked over the leaf
    /// strategy, with each level able to fall back to the leaf so generated
    /// structures vary in depth. `_size`/`_branch` are accepted for API
    /// compatibility but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.below(4) == 0 {
                    l.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            }));
        }
        cur
    }
}

/// Type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                lo: self.lo,
                hi: self.hi,
            }
        }
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            lo: len.start,
            hi: len.end.max(len.start + 1),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// String "regex" strategies
// ---------------------------------------------------------------------------

/// The subset of regex syntax the workspace tests use as string strategies:
/// a single character class (`[...]` with ranges and `\n`/`\t`/`\\` escapes,
/// or `\PC` for "any non-control char") followed by a `{min,max}` repeat.
#[derive(Clone)]
struct Pattern {
    ranges: Vec<(u32, u32)>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Pattern {
    let chars: Vec<char> = pat.chars().collect();
    let mut i: usize;
    let mut ranges: Vec<(u32, u32)> = Vec::new();

    if chars.first() == Some(&'[') {
        i = 1;
        let mut pending: Vec<char> = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                match chars.get(i) {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(&c) => c,
                    None => panic!("bad escape in pattern {pat:?}"),
                }
            } else {
                chars[i]
            };
            i += 1;
            // `a-b` range (a `-` not followed by `]`)
            if chars.get(i) == Some(&'-') && chars.get(i + 1) != Some(&']') {
                let hi = chars[i + 1];
                i += 2;
                ranges.push((c as u32, hi as u32));
            } else {
                pending.push(c);
            }
        }
        assert!(chars.get(i) == Some(&']'), "unterminated class in {pat:?}");
        i += 1;
        for c in pending {
            ranges.push((c as u32, c as u32));
        }
    } else if pat.starts_with("\\PC") {
        // Any non-control character: printable ASCII, Latin, general BMP
        // letters/symbols. A practical sample of the \PC space.
        ranges = vec![
            (0x20, 0x7E),
            (0xA0, 0x2FF),
            (0x370, 0x1FFF),
            (0x2100, 0x2BFF),
        ];
        i = 3;
    } else {
        panic!("unsupported string strategy pattern {pat:?}");
    }

    let rest: String = chars[i..].iter().collect();
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repeat in {pat:?}"));
        match inner.split_once(',') {
            Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
            None => {
                let n = inner.trim().parse().unwrap();
                (n, n)
            }
        }
    };
    Pattern { ranges, min, max }
}

impl Pattern {
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        let total: u64 = self.ranges.iter().map(|(a, b)| (b - a + 1) as u64).sum();
        let mut out = String::with_capacity(len);
        let mut produced = 0;
        while produced < len {
            let mut k = rng.below(total);
            for &(a, b) in &self.ranges {
                let span = (b - a + 1) as u64;
                if k < span {
                    if let Some(c) = char::from_u32(a + k as u32) {
                        out.push(c);
                        produced += 1;
                    }
                    break;
                }
                k -= span;
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        parse_pattern(self).sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Config + errors
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure payload produced by `prop_assert!`-style macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (l, r) => {
                $crate::prop_assert!(l == r, $($fmt)+);
            }
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv(stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::deterministic(__seed, __case as u64);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest case #{} of {}: {}", __case, stringify!($name), e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic(1, 2);
        for _ in 0..1000 {
            let v = Strategy::sample(&(-9i32..10), &mut rng);
            assert!((-9..10).contains(&v));
        }
    }

    #[test]
    fn ascii_class_pattern_samples() {
        let mut rng = crate::TestRng::deterministic(3, 4);
        for _ in 0..200 {
            let s = Strategy::sample(&"[ -~\n\t]{0,200}", &mut rng);
            assert!(s.len() <= 200 * 4);
            assert!(s
                .chars()
                .all(|c| c == '\n' || c == '\t' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn pc_pattern_excludes_controls() {
        let mut rng = crate::TestRng::deterministic(5, 6);
        for _ in 0..200 {
            let s = Strategy::sample(&"\\PC{0,80}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_up(x in 0i32..100, v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..5)) {
            prop_assert!(x >= 0);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x, x);
        }
    }
}
