//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The repro container builds with no network access, so the real criterion
//! crate (and its dependency tree) is unavailable. This vendored subset keeps
//! the same API shape used by the workspace benches — `benchmark_group`,
//! `warm_up_time` / `measurement_time` / `sample_size`, `Bencher::iter`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — and does
//! honest measurement: a timed warm-up to calibrate iterations per sample,
//! then `sample_size` wall-clock samples whose min/median/mean are reported.
//!
//! Results are printed in a criterion-like format and appended as JSON lines
//! to `target/criterion-mini.json` so scripts can scrape them.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing harness handed to the closure of
/// [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One statistic line for a finished benchmark.
#[derive(Debug, Clone)]
pub struct Sampled {
    pub id: String,
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub max_ns: f64,
}

/// Top-level harness state; create via `Criterion::default()`.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Sampled>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }

    /// Flush collected results as JSON lines under `target/`.
    fn persist(&self) {
        if self.results.is_empty() {
            return;
        }
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"max_ns\":{:.1}}}\n",
                r.id, r.min_ns, r.median_ns, r.mean_ns, r.max_ns
            ));
        }
        let _ = std::fs::create_dir_all("target");
        let _ = std::fs::write("target/criterion-mini.json", out);
    }
}

/// A named group of benchmarks sharing warm-up/measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);

        // Warm-up: run single iterations until the warm-up budget is spent,
        // tracking the observed per-iteration time.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(0);
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter += b.elapsed;
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = per_iter.as_secs_f64() / warm_iters as f64;

        // Choose iterations per sample so the measurement budget is split
        // across `sample_size` samples.
        let sample_budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((sample_budget / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = samples_ns[0];
        let max = *samples_ns.last().unwrap();
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

        println!(
            "{full_id:<40} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max),
            samples_ns.len(),
            iters
        );
        self.criterion.results.push(Sampled {
            id: full_id,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            max_ns: max,
        });
        self
    }

    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.persist_results();
        }
    };
}

impl Criterion {
    /// Public hook used by `criterion_main!`.
    pub fn persist_results(&self) {
        self.persist();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("t");
            g.warm_up_time(Duration::from_millis(5));
            g.measurement_time(Duration::from_millis(20));
            g.sample_size(5);
            g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median_ns > 0.0);
    }
}
