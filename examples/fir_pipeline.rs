//! The paper's headline scenario end to end: a FIR filter written in
//! MATLAB, compiled for the `dsp16` ASIP, cycle-profiled against the
//! MATLAB-Coder-like baseline, with the generated C written to disk so
//! you can inspect (or cross-compile) it.
//!
//! Run with: `cargo run --example fir_pipeline`

use matic::{Compiler, Harness, OptLevel};
use matic_benchkit::{benchmark, to_sim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fir = benchmark("fir").expect("fir is in the suite");
    let n = 1024;
    let args = fir.arg_types(n);
    let inputs = fir.inputs(n, 42);

    // Compile both ways.
    let optimized = Compiler::new().compile(fir.source, fir.entry, &args)?;
    let baseline = Compiler::new()
        .opt_level(OptLevel::baseline())
        .compile(fir.source, fir.entry, &args)?;

    // Simulate on the virtual ASIP.
    let sim_inputs: Vec<_> = inputs.iter().map(to_sim).collect();
    let run_o = optimized.simulate(sim_inputs.clone())?;
    let run_b = baseline.simulate(sim_inputs)?;

    println!("FIR, N = {n}, 64 taps, target dsp16 (8-lane SIMD + MAC)");
    println!("  baseline : {:>9} cycles", run_b.cycles.total);
    println!("  proposed : {:>9} cycles", run_o.cycles.total);
    println!(
        "  speedup  : {:.2}x",
        run_b.cycles.total as f64 / run_o.cycles.total as f64
    );
    println!();
    println!("cycle breakdown (proposed):");
    print!("{}", run_o.cycles);

    // Write the compilable C artifacts next to the target directory.
    let dir = std::path::Path::new("target/fir_generated");
    let main_src = Harness.main_source(
        optimized
            .mir
            .function(&optimized.entry)
            .expect("entry exists"),
        &inputs,
        1,
    )?;
    let path = matic_codegen::write_module(dir, &optimized.c, Some(&main_src))?;
    println!();
    println!("generated C written to {}", path.display());
    println!("build it with: cc -std=c99 -O2 {} -lm", path.display());
    Ok(())
}
