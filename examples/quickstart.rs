//! Quickstart: compile a MATLAB function to ANSI C with ASIP intrinsics,
//! inspect what the compiler recognized, and estimate cycles.
//!
//! Run with: `cargo run --example quickstart`

use matic::{arg, Compiler, OptLevel, SimVal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny DSP kernel: windowed energy of a signal.
    let src = r#"
function e = energy(x, w)
% Windowed energy: e = sum((x .* w) .* (x .* w))
p = x .* w;
e = sum(p .* p);
end
"#;

    // Entry signature: two real vectors of 256 samples.
    let args = [arg::vector(256), arg::vector(256)];

    // 1. Compile with the full pipeline for the paper's dsp16 ASIP.
    let compiled = Compiler::new().compile(src, "energy", &args)?;

    println!("=== What the vectorizer recognized ===");
    println!("{:#?}\n", compiled.report);

    println!("=== MIR after optimization ===");
    println!("{}", compiled.mir_dump());

    println!("=== Generated C (kernel body) ===");
    for line in compiled
        .c
        .source
        .lines()
        .skip_while(|l| !l.contains("void mt_energy(const"))
        .take(25)
    {
        println!("{line}");
    }
    println!();

    // 2. Estimate cycles on the virtual ASIP — optimized vs. baseline.
    let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin()).collect();
    let w: Vec<f64> = (0..256)
        .map(|i| 0.54 - 0.46 * (i as f64 * 0.0245).cos())
        .collect();
    let inputs = vec![SimVal::row(&x), SimVal::row(&w)];

    let baseline = Compiler::new()
        .opt_level(OptLevel::baseline())
        .compile(src, "energy", &args)?;

    let opt_run = compiled.simulate(inputs.clone())?;
    let base_run = baseline.simulate(inputs)?;

    println!("=== Cycle estimate on dsp16 ===");
    println!(
        "baseline (MATLAB-Coder-like): {:>8} cycles",
        base_run.cycles.total
    );
    println!(
        "proposed (custom instrs):     {:>8} cycles",
        opt_run.cycles.total
    );
    println!(
        "speedup: {:.2}x",
        base_run.cycles.total as f64 / opt_run.cycles.total as f64
    );
    let a = opt_run.outputs[0].as_cx()?.re;
    let b = base_run.outputs[0].as_cx()?.re;
    println!("energy = {a:.6} (backends agree: {})", (a - b).abs() < 1e-9);
    Ok(())
}
