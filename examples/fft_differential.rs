//! Differential-testing walkthrough: the FFT benchmark executed by all
//! three engines the project provides —
//!
//! 1. the reference **interpreter** (the numerical oracle),
//! 2. the **virtual ASIP** running compiled MIR cycle-accurately,
//! 3. the **generated C**, compiled with the host C compiler and run,
//!
//! and cross-checked to 1e-9. This is exactly the methodology the test
//! suite uses to trust every cycle number it reports.
//!
//! Run with: `cargo run --example fft_differential`

use matic::{CValue, Compiler, Harness};
use matic_benchkit::{benchmark, outputs_close, sim_to_cvalue, to_sim};
use std::process::Command;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fft = benchmark("fft").expect("fft is in the suite");
    let n = 256;
    let inputs = fft.inputs(n, 7);

    // Engine 1: the interpreter.
    let oracle = &fft.reference_outputs(&inputs).map_err(io_err)?[0];
    println!("interpreter: {} complex bins", oracle.numel());

    // Engine 2: compiled MIR on the virtual ASIP.
    let compiled = Compiler::new().compile(fft.source, fft.entry, &fft.arg_types(n))?;
    let sim = compiled.simulate(inputs.iter().map(to_sim).collect())?;
    let sim_out = sim_to_cvalue(&sim.outputs[0]);
    outputs_close(&sim_out, oracle, 1e-9).map_err(io_err)?;
    println!(
        "virtual ASIP: matches oracle, {} cycles ({} instructions)",
        sim.cycles.total, sim.cycles.instructions
    );

    // Engine 3: generated C through the host compiler (skipped without cc).
    let cc_found = Command::new("cc").arg("--version").output().is_ok();
    if !cc_found {
        println!("host C compiler not found — skipping engine 3");
        return Ok(());
    }
    let entry = compiled.mir.function(&compiled.entry).expect("entry");
    let main_src = Harness.main_source(entry, &inputs, 1)?;
    let dir = std::path::Path::new("target/fft_differential");
    let c_path = matic_codegen::write_module(dir, &compiled.c, Some(&main_src))?;
    let exe = dir.join("fft");
    let build = Command::new("cc")
        .args(["-std=c99", "-O2", "-w", "-o"])
        .arg(&exe)
        .arg(&c_path)
        .arg("-lm")
        .output()?;
    if !build.status.success() {
        return Err(io_err(String::from_utf8_lossy(&build.stderr).to_string()).into());
    }
    let run = Command::new(&exe).output()?;
    let c_out = &CValue::parse_outputs(&String::from_utf8_lossy(&run.stdout)).map_err(io_err)?[0];
    outputs_close(c_out, oracle, 1e-9).map_err(io_err)?;
    println!("generated C (host-compiled): matches oracle");
    println!("\nall three engines agree on a {n}-point FFT.");
    Ok(())
}

fn io_err(m: String) -> std::io::Error {
    std::io::Error::other(m)
}
