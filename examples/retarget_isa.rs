//! Retargeting walkthrough — the paper's central claim in action.
//!
//! The target processor is *data*: this example writes an ISA description
//! to JSON, edits it (as a user adding support for their own ASIP would),
//! reloads it, and recompiles the same MATLAB source for four different
//! machines, comparing cycles.
//!
//! Run with: `cargo run --example retarget_isa`

use matic::{arg, Compiler, Features, IsaSpec, OpClass, SimVal};

const KERNEL: &str = r#"
function y = mixdown(x, w, g)
% Complex mix + real gain: y = g * (x .* conj(w))
y = g * (x .* conj(w));
end
"#;

fn cycles_on(spec: IsaSpec, src: &str) -> Result<u64, Box<dyn std::error::Error>> {
    let args = [arg::cx_vector(512), arg::cx_vector(512), arg::scalar()];
    let compiled = Compiler::new()
        .target(spec)
        .compile(src, "mixdown", &args)?;
    let x: Vec<(f64, f64)> = (0..512)
        .map(|i| ((i as f64).sin(), (i as f64).cos()))
        .collect();
    let w: Vec<(f64, f64)> = (0..512).map(|i| ((i as f64 * 0.3).cos(), 0.1)).collect();
    let out = compiled.simulate(vec![
        SimVal::cx_row(&x),
        SimVal::cx_row(&w),
        SimVal::scalar(0.5),
    ])?;
    Ok(out.cycles.total)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Export the reference target as JSON — the parameterized ISA
    //    description users edit to describe their own processor.
    let dsp16 = IsaSpec::dsp16();
    let json_path = std::path::Path::new("target/dsp16.json");
    std::fs::create_dir_all("target")?;
    std::fs::write(json_path, dsp16.to_json())?;
    println!("ISA description written to {}", json_path.display());

    // 2. Reload and derive a custom machine from it: 4 lanes, pricier
    //    multiplies, different intrinsic prefix.
    let mut custom = IsaSpec::from_json(&std::fs::read_to_string(json_path)?)?;
    custom.name = "my_asip".to_string();
    custom.vector_width = 4;
    custom.intrinsic_prefix = "__my".to_string();
    custom.costs.set_cost(OpClass::VectorMul, 3);
    custom.validate()?;

    // 3. Same source, four machines.
    let targets = vec![
        IsaSpec::scalar_baseline(),
        IsaSpec::with_features(Features {
            simd: false,
            complex: true,
            mac: true,
        }),
        custom.clone(),
        dsp16,
    ];

    println!("\n{:<22} {:>10}  note", "target", "cycles");
    println!("{}", "-".repeat(56));
    let mut scalar_cycles = None;
    for spec in targets {
        let name = spec.name.clone();
        let note = spec.description.clone();
        let c = cycles_on(spec, KERNEL)?;
        if scalar_cycles.is_none() {
            scalar_cycles = Some(c);
        }
        let s = scalar_cycles.expect("set") as f64 / c as f64;
        println!("{name:<22} {c:>10}  ({s:.2}x)  {note}");
    }

    // 4. Show that the custom prefix really lands in the generated C.
    let compiled = Compiler::new().target(custom).compile(
        KERNEL,
        "mixdown",
        &[arg::cx_vector(512), arg::cx_vector(512), arg::scalar()],
    )?;
    let line = compiled
        .c
        .source
        .lines()
        .find(|l| l.contains("__my_"))
        .unwrap_or("(no intrinsic line found)");
    println!(
        "\ngenerated C uses the custom intrinsic prefix:\n  {}",
        line.trim()
    );
    Ok(())
}
