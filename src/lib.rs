//! Umbrella library: re-exports the matic compiler facade for integration tests.
pub use matic::*;
