function y = fft_r2(x)
% In-place iterative radix-2 decimation-in-time FFT; length(x) must be a
% power of two.
n = length(x);
y = x;
% Bit-reversal permutation.
j = 1;
for i = 1:n-1
    if i < j
        tmp = y(j);
        y(j) = y(i);
        y(i) = tmp;
    end
    k = n / 2;
    while k < j
        j = j - k;
        k = k / 2;
    end
    j = j + k;
end
% Twiddle table, computed once: wtab(k) = exp(-2*pi*1i*(k-1)/n).
halfn = n / 2;
wtab = exp(1i * ((0:halfn-1) * (-2 * pi / n)));
% Butterfly passes over whole slices (vectorized MATLAB style).
len = 2;
while len <= n
    half = len / 2;
    stride = n / len;
    w = wtab(1:stride:halfn);
    s = 1;
    while s <= n
        u = y(s:s+half-1);
        v = y(s+half:s+len-1) .* w;
        y(s:s+half-1) = u + v;
        y(s+half:s+len-1) = u - v;
        s = s + len;
    end
    len = len * 2;
end
end
