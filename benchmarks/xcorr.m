function r = xcorr_k(x, y, maxlag)
% r(lag + maxlag + 1) = sum_t x(t + lag) * y(t)
n = length(x);
r = zeros(1, 2 * maxlag + 1);
for lag = -maxlag:maxlag
    acc = 0;
    lo = max(1, 1 - lag);
    hi = min(n, n - lag);
    for t = lo:hi
        acc = acc + x(t + lag) * y(t);
    end
    r(lag + maxlag + 1) = acc;
end
end
