function y = iir(x, b, a)
% Direct-form IIR: a(1)*y(k) = sum b(t) x(k-t+1) - sum a(t) y(k-t+1)
n = length(x);
nb = length(b);
na = length(a);
ga = -a;
y = zeros(1, n);
for k = 1:n
    acc = 0;
    hb = min(k, nb);
    for t = 1:hb
        acc = acc + b(t) * x(k - t + 1);
    end
    ha = min(k, na);
    for t = 2:ha
        acc = acc + ga(t) * y(k - t + 1);
    end
    y(k) = acc / a(1);
end
end
