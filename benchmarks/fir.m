function y = fir(x, h)
% FIR filter: y(k) = sum_t h(t) * x(k - t + 1)
n = length(x);
m = length(h);
y = zeros(1, n);
for k = 1:n
    acc = 0;
    hi = min(k, m);
    for t = 1:hi
        acc = acc + h(t) * x(k - t + 1);
    end
    y(k) = acc;
end
end
