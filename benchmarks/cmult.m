function y = cmult(x, w)
% Point-wise complex mix: y = x .* w
y = x .* w;
end
