function c = matmul(a, b)
% c = a * b via row-by-column dot products.
[n, m] = size(a);
[m2, p] = size(b);
c = zeros(n, p);
for i = 1:n
    ra = a(i, :);
    for j = 1:p
        cb = b(:, j);
        c(i, j) = sum(ra .* cb');
    end
end
end
