//! The decode stage: structured MIR → linear pre-resolved instruction
//! streams.
//!
//! The tree-walking executor re-dispatches on nested `Stmt` enums and
//! re-derives control flow (loop trip counts, break/continue propagation
//! through `Flow` values) on every visit. Decoding flattens each
//! [`MirFunction`] once into a flat `Vec<DInst>` where all control flow is
//! explicit instruction offsets: `If` becomes a conditional branch with a
//! pre-resolved `if_false` target, `For`/`While` become a setup instruction
//! plus a back-edge, and `break`/`continue`/`return` become direct jumps.
//! Destination scalar-ness (`scalar_dst`) is pre-computed from the
//! function's type table so the hot loop never consults it.
//!
//! The decoded form is execution-equivalent to the tree walk *by
//! construction*: every instruction charges the same cycles and burns the
//! same fuel in the same order as `Exec::exec_stmt` would (there is a
//! differential test pinning this across the whole benchmark suite). One
//! deliberate divergence: a `break`/`continue` nested inside a `While`
//! condition block (`cond_defs`) targets the enclosing loop here, whereas
//! the tree walker silently discards that flow — MIR lowering never emits
//! control flow inside `cond_defs`, so the case is unreachable from real
//! programs.

use matic_frontend::span::Span;
use matic_mir::{Index, MirFunction, MirProgram, Operand, Rvalue, Stmt, VarId, VectorOp};
use std::collections::HashMap;

/// One pre-decoded instruction. Payload-bearing variants reuse the MIR
/// `Rvalue`/`Operand` types directly (they are already flat data); control
/// variants carry resolved instruction offsets into the owning function's
/// code stream.
#[derive(Debug, Clone, PartialEq)]
pub enum DInst {
    /// `dst = rv`, with the destination's register representation
    /// (scalar vs. array) pre-resolved from the type table.
    Def {
        dst: VarId,
        scalar_dst: bool,
        rv: Rvalue,
        span: Span,
    },
    /// Indexed store into an array variable.
    Store {
        array: VarId,
        indices: Vec<Index>,
        value: Operand,
        span: Span,
    },
    /// Multi-output call (user function or multi-output builtin).
    CallMulti {
        dsts: Vec<Option<VarId>>,
        func: String,
        args: Vec<Operand>,
        user: bool,
        span: Span,
    },
    /// Side effect (`disp`, `fprintf`, `error`, …).
    Effect {
        name: String,
        args: Vec<Operand>,
        span: Span,
    },
    /// Recognized data-parallel operation.
    VectorOp(VectorOp),
    /// Conditional branch: falls through when `cond` is truthy, else jumps
    /// to `if_false`. `burn` is set for `If` statements (which consume fuel
    /// at statement entry); a `While` condition test does not (its fuel is
    /// burned by [`DInst::WhileIter`]). `exit_loop` marks a `While` test,
    /// whose false edge also pops the loop frame.
    Branch {
        cond: Operand,
        if_false: u32,
        burn: bool,
        exit_loop: bool,
        span: Span,
    },
    /// Unconditional jump (loop back-edges, if/else joins). Free at
    /// runtime: the tree walker has no corresponding charge.
    Jump { target: u32, span: Span },
    /// `For` loop entry: evaluates bounds, computes the trip count and
    /// pushes a loop frame. The next instruction is the [`DInst::ForNext`]
    /// heading the loop.
    ForSetup {
        var: VarId,
        start: Operand,
        step: Operand,
        stop: Operand,
        span: Span,
    },
    /// `For` loop head: either starts the next iteration (burn fuel,
    /// charge induction-update + branch, set the loop variable) or pops
    /// the frame and jumps to `end`.
    ForNext { end: u32, span: Span },
    /// `While` loop entry: burns statement-entry fuel and pushes a frame.
    WhileEnter { span: Span },
    /// `While` iteration head: burns per-iteration fuel before the
    /// condition block runs.
    WhileIter { span: Span },
    /// `break`: pops the innermost loop frame and jumps past the loop.
    Break { target: u32, span: Span },
    /// `continue`: jumps to the innermost loop's iteration head.
    Continue { target: u32, span: Span },
    /// `return` (also `break`/`continue` outside any loop, which end the
    /// function in the tree walker).
    Return { span: Span },
}

impl DInst {
    /// The source span the instruction was decoded from. Control
    /// instructions inherit the span of their originating statement (an
    /// `if`/`for`/`while` header, or the `break`/`continue`/`return`
    /// itself); synthesized joins and back-edges use the enclosing
    /// construct's header span.
    pub fn span(&self) -> Span {
        match self {
            DInst::Def { span, .. }
            | DInst::Store { span, .. }
            | DInst::CallMulti { span, .. }
            | DInst::Effect { span, .. }
            | DInst::Branch { span, .. }
            | DInst::Jump { span, .. }
            | DInst::ForSetup { span, .. }
            | DInst::ForNext { span, .. }
            | DInst::WhileEnter { span }
            | DInst::WhileIter { span }
            | DInst::Break { span, .. }
            | DInst::Continue { span, .. }
            | DInst::Return { span } => *span,
            DInst::VectorOp(vop) => vop.span,
        }
    }
}

/// One function's decoded instruction stream, parallel to
/// `MirProgram::functions` by index.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFunction {
    pub code: Vec<DInst>,
}

/// A whole program decoded for linear execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedProgram {
    /// Decoded bodies, index-parallel to the MIR function list.
    pub funcs: Vec<DecodedFunction>,
    index: HashMap<String, usize>,
}

impl DecodedProgram {
    /// Index of a function by name (for call dispatch and entry lookup).
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }
}

/// Decodes every function of `mir`. Pure translation — no execution, no
/// cost model involvement (costs are resolved by the machine's flat cost
/// table at execution time).
pub fn decode_program(mir: &MirProgram) -> DecodedProgram {
    let index = mir
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();
    let funcs = mir.functions.iter().map(decode_function).collect();
    DecodedProgram { funcs, index }
}

fn decode_function(f: &MirFunction) -> DecodedFunction {
    let mut d = FnDecoder {
        f,
        code: Vec::with_capacity(f.stmt_count()),
        loops: Vec::new(),
    };
    d.emit_block(&f.body);
    debug_assert!(d.loops.is_empty());
    DecodedFunction { code: d.code }
}

/// Loop context during decoding: where `continue` goes, and which emitted
/// instructions need their loop-exit target patched once it is known.
struct LoopCtx {
    continue_pc: u32,
    exit_fixups: Vec<usize>,
}

struct FnDecoder<'a> {
    f: &'a MirFunction,
    code: Vec<DInst>,
    loops: Vec<LoopCtx>,
}

impl FnDecoder<'_> {
    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.emit_stmt(s);
        }
    }

    fn emit_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Def { dst, rv, span } => {
                self.code.push(DInst::Def {
                    dst: *dst,
                    scalar_dst: self.f.var_ty(*dst).shape.is_scalar(),
                    rv: rv.clone(),
                    span: *span,
                });
            }
            Stmt::Store {
                array,
                indices,
                value,
                span,
            } => {
                self.code.push(DInst::Store {
                    array: *array,
                    indices: indices.clone(),
                    value: *value,
                    span: *span,
                });
            }
            Stmt::CallMulti {
                dsts,
                func,
                args,
                user,
                span,
            } => {
                self.code.push(DInst::CallMulti {
                    dsts: dsts.clone(),
                    func: func.clone(),
                    args: args.clone(),
                    user: *user,
                    span: *span,
                });
            }
            Stmt::Effect { name, args, span } => {
                self.code.push(DInst::Effect {
                    name: name.clone(),
                    args: args.clone(),
                    span: *span,
                });
            }
            Stmt::VectorOp(vop) => self.code.push(DInst::VectorOp(vop.clone())),
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                let branch_at = self.code.len();
                self.code.push(DInst::Branch {
                    cond: *cond,
                    if_false: 0,
                    burn: true,
                    exit_loop: false,
                    span: *span,
                });
                self.emit_block(then_body);
                if else_body.is_empty() {
                    let join = self.pc();
                    self.patch_branch(branch_at, join);
                } else {
                    let jump_at = self.code.len();
                    self.code.push(DInst::Jump {
                        target: 0,
                        span: *span,
                    });
                    let else_start = self.pc();
                    self.patch_branch(branch_at, else_start);
                    self.emit_block(else_body);
                    let join = self.pc();
                    self.code[jump_at] = DInst::Jump {
                        target: join,
                        span: *span,
                    };
                }
            }
            Stmt::For {
                var,
                start,
                step,
                stop,
                body,
                span,
            } => {
                self.code.push(DInst::ForSetup {
                    var: *var,
                    start: *start,
                    step: *step,
                    stop: *stop,
                    span: *span,
                });
                let head = self.pc();
                let for_next_at = self.code.len();
                self.code.push(DInst::ForNext {
                    end: 0,
                    span: *span,
                });
                self.loops.push(LoopCtx {
                    continue_pc: head,
                    exit_fixups: vec![for_next_at],
                });
                self.emit_block(body);
                self.code.push(DInst::Jump {
                    target: head,
                    span: *span,
                });
                self.finish_loop();
            }
            Stmt::While {
                cond_defs,
                cond,
                body,
                span,
            } => {
                self.code.push(DInst::WhileEnter { span: *span });
                let head = self.pc();
                self.code.push(DInst::WhileIter { span: *span });
                self.loops.push(LoopCtx {
                    continue_pc: head,
                    exit_fixups: Vec::new(),
                });
                self.emit_block(cond_defs);
                let test_at = self.code.len();
                self.code.push(DInst::Branch {
                    cond: *cond,
                    if_false: 0,
                    burn: false,
                    exit_loop: true,
                    span: *span,
                });
                self.loops
                    .last_mut()
                    .expect("while ctx on stack")
                    .exit_fixups
                    .push(test_at);
                self.emit_block(body);
                self.code.push(DInst::Jump {
                    target: head,
                    span: *span,
                });
                self.finish_loop();
            }
            Stmt::Break(span) => match self.loops.last_mut() {
                Some(ctx) => {
                    ctx.exit_fixups.push(self.code.len());
                    self.code.push(DInst::Break {
                        target: 0,
                        span: *span,
                    });
                }
                // Outside a loop the tree walker's Break flow propagates
                // out of the function body: function end.
                None => self.code.push(DInst::Return { span: *span }),
            },
            Stmt::Continue(span) => match self.loops.last() {
                Some(ctx) => self.code.push(DInst::Continue {
                    target: ctx.continue_pc,
                    span: *span,
                }),
                None => self.code.push(DInst::Return { span: *span }),
            },
            Stmt::Return(span) => self.code.push(DInst::Return { span: *span }),
        }
    }

    fn patch_branch(&mut self, at: usize, to: u32) {
        if let DInst::Branch { if_false, .. } = &mut self.code[at] {
            *if_false = to;
        }
    }

    /// Pops the current loop context and resolves every exit-target fixup
    /// (the `ForNext`/`While`-test exit edge and all `break`s) to the
    /// instruction after the loop.
    fn finish_loop(&mut self) {
        let exit = self.pc();
        let ctx = self.loops.pop().expect("loop ctx on stack");
        for at in ctx.exit_fixups {
            match &mut self.code[at] {
                DInst::ForNext { end, .. } => *end = exit,
                DInst::Branch { if_false, .. } => *if_false = exit,
                DInst::Break { target, .. } => *target = exit,
                other => unreachable!("bad loop fixup target {other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_src(src: &str, entry: &str, tys: &[matic_sema::Ty]) -> (MirProgram, DecodedProgram) {
        let (program, diags) = matic_frontend::parse(src);
        assert!(!diags.has_errors(), "{diags:?}");
        let analysis = matic_sema::analyze(&program, entry, tys);
        let (mir, _) = matic_mir::lower_program(&program, &analysis);
        let decoded = decode_program(&mir);
        (mir, decoded)
    }

    fn scalar_ty() -> matic_sema::Ty {
        matic_sema::Ty::double_scalar()
    }

    #[test]
    fn straight_line_code_has_no_control_instructions() {
        let (mir, decoded) = decode_src(
            "function y = f(x)\ny = x * 2 + 1;\nend",
            "f",
            &[scalar_ty()],
        );
        let idx = decoded.func_index("f").unwrap();
        assert_eq!(decoded.funcs.len(), mir.functions.len());
        assert!(decoded.funcs[idx]
            .code
            .iter()
            .all(|i| matches!(i, DInst::Def { .. } | DInst::Return { .. })));
    }

    #[test]
    fn loops_resolve_to_back_edges_within_bounds() {
        let (_, decoded) = decode_src(
            "function s = f(n)\ns = 0;\nfor k = 1:n\n if k > 2\n  s = s + k;\n end\nend\nwhile s > 100\n s = s - 1;\nend\nend",
            "f",
            &[scalar_ty()],
        );
        let code = &decoded.funcs[decoded.func_index("f").unwrap()].code;
        let len = code.len() as u32;
        let mut saw_for = false;
        let mut saw_while = false;
        for inst in code {
            match inst {
                DInst::ForNext { end, .. } => {
                    saw_for = true;
                    assert!(*end <= len);
                }
                DInst::Branch { if_false, .. } => assert!(*if_false <= len),
                DInst::Jump { target, .. } => assert!(*target < len),
                DInst::WhileEnter { .. } => saw_while = true,
                _ => {}
            }
        }
        assert!(saw_for && saw_while);
    }

    #[test]
    fn break_and_continue_target_the_innermost_loop() {
        let (_, decoded) = decode_src(
            "function s = f(n)\ns = 0;\nfor i = 1:n\n for j = 1:n\n  if j > i\n   break\n  end\n  if j == i\n   continue\n  end\n  s = s + 1;\n end\nend\nend",
            "f",
            &[scalar_ty()],
        );
        let code = &decoded.funcs[decoded.func_index("f").unwrap()].code;
        // Collect ForNext positions: inner loop is the second one.
        let heads: Vec<usize> = code
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, DInst::ForNext { .. }))
            .map(|(p, _)| p)
            .collect();
        assert_eq!(heads.len(), 2);
        let (outer_head, inner_head) = (heads[0], heads[1]);
        let DInst::ForNext { end: inner_end, .. } = code[inner_head] else {
            unreachable!()
        };
        for inst in code {
            if let DInst::Break { target, .. } = inst {
                assert_eq!(*target, inner_end, "break exits the inner loop");
            }
            if let DInst::Continue { target, .. } = inst {
                assert_eq!(
                    *target as usize, inner_head,
                    "continue re-enters inner head"
                );
                assert_ne!(*target as usize, outer_head);
            }
        }
    }
}
