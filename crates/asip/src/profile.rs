//! Per-source-span cycle attribution — the engine behind `matic --profile`.
//!
//! Both simulator engines track the span of the statement or decoded
//! instruction currently executing and funnel every cycle charge through
//! [`Profile::record`], so attribution is bit-identical between the tree
//! walker and the pre-decoded linear engine, and enabling profiling never
//! perturbs the cycle totals themselves (the differential suite pins
//! this). Rendering aggregates spans to source lines through a
//! [`SourceMap`]; the JSON form is the stable `matic-profile-v1` schema
//! consumed by `crates/bench` and CI.

use matic_frontend::span::{SourceMap, Span};
use matic_isa::json::Json;
use matic_isa::OpClass;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Schema identifier stamped into every `--profile-json` document.
pub const PROFILE_SCHEMA: &str = "matic-profile-v1";

/// Cycle counters accumulated against one source span (or one source
/// line, after aggregation).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanCounters {
    /// Cycles charged while this span was executing.
    pub cycles: u64,
    /// Primitive machine operations issued.
    pub instructions: u64,
    /// Cycles per [`OpClass`], indexed by `op as usize`.
    pub by_class: [u64; OpClass::COUNT],
    /// Useful elements processed by SIMD issues attributed here.
    pub lane_elems: u64,
    /// Lane slots occupied by those issues (`words × vector_width`);
    /// `lane_elems / lane_slots` is the vector-lane utilization.
    pub lane_slots: u64,
}

impl SpanCounters {
    fn absorb(&mut self, other: &SpanCounters) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        for (a, b) in self.by_class.iter_mut().zip(other.by_class.iter()) {
            *a += *b;
        }
        self.lane_elems += other.lane_elems;
        self.lane_slots += other.lane_slots;
    }

    /// Vector-lane utilization in `[0, 1]`, or `None` if no SIMD issue
    /// was attributed here.
    pub fn lane_utilization(&self) -> Option<f64> {
        if self.lane_slots == 0 {
            None
        } else {
            Some(self.lane_elems as f64 / self.lane_slots as f64)
        }
    }

    /// Op classes with non-zero cycles, hottest first.
    pub fn top_classes(&self) -> Vec<(OpClass, u64)> {
        let mut v: Vec<(OpClass, u64)> = OpClass::ALL
            .iter()
            .map(|&op| (op, self.by_class[op as usize]))
            .filter(|&(_, c)| c > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Per-span cycle attribution for one simulated run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    /// Raw counters keyed by source span. Synthesized operations with no
    /// source location accumulate under [`Span::dummy`].
    pub spans: HashMap<Span, SpanCounters>,
}

impl Profile {
    pub(crate) fn record(&mut self, span: Span, class: OpClass, cycles: u64, count: u64) {
        let e = self.spans.entry(span).or_default();
        e.cycles += cycles;
        e.instructions += count;
        e.by_class[class as usize] += cycles;
    }

    pub(crate) fn record_lanes(&mut self, span: Span, elems: u64, slots: u64) {
        let e = self.spans.entry(span).or_default();
        e.lane_elems += elems;
        e.lane_slots += slots;
    }

    /// Total cycles across all spans (equals the run's cycle total).
    pub fn total_cycles(&self) -> u64 {
        self.spans.values().map(|c| c.cycles).sum()
    }

    /// Aggregates span counters to 1-based source lines (keyed by each
    /// span's start offset), sorted by line number. Spans with no source
    /// location ([`Span::dummy`]) aggregate under line 0.
    pub fn lines(&self, map: &SourceMap) -> Vec<(u32, SpanCounters)> {
        let mut by_line: BTreeMap<u32, SpanCounters> = BTreeMap::new();
        for (span, counters) in &self.spans {
            let line = if span.is_empty() && span.start == 0 {
                0
            } else {
                map.line_col(span.start).line
            };
            by_line.entry(line).or_default().absorb(counters);
        }
        by_line.into_iter().collect()
    }

    /// The human-readable hot-spot report printed by `matic --profile`.
    pub fn render_text(&self, map: &SourceMap, entry: &str) -> String {
        let total = self.total_cycles();
        let instrs: u64 = self.spans.values().map(|c| c.instructions).sum();
        let src_lines: Vec<&str> = map.source().lines().collect();
        let mut lines = self.lines(map);
        lines.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));

        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {entry} — {total} cycles, {instrs} instructions"
        );
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>7} {:>6}  {:28} source",
            "line", "cycles", "%", "lanes", "op classes"
        );
        for (line, c) in &lines {
            let pct = if total == 0 {
                0.0
            } else {
                100.0 * c.cycles as f64 / total as f64
            };
            let lanes = match c.lane_utilization() {
                Some(u) => format!("{:.0}%", 100.0 * u),
                None => "-".to_string(),
            };
            let classes = c
                .top_classes()
                .into_iter()
                .take(3)
                .map(|(op, cy)| format!("{op} {cy}"))
                .collect::<Vec<_>>()
                .join(", ");
            let source = if *line == 0 {
                "<no source location>"
            } else {
                src_lines
                    .get(*line as usize - 1)
                    .map(|s| s.trim())
                    .unwrap_or("")
            };
            let _ = writeln!(
                out,
                "{:>6} {:>12} {:>6.1}% {:>6}  {:28} {}",
                line, c.cycles, pct, lanes, classes, source
            );
        }
        out
    }

    /// The stable `matic-profile-v1` JSON document written by
    /// `matic --profile-json`.
    pub fn to_json(&self, map: &SourceMap, entry: &str, target: &str) -> Json {
        let total = self.total_cycles();
        let instrs: u64 = self.spans.values().map(|c| c.instructions).sum();
        let src_lines: Vec<&str> = map.source().lines().collect();
        let lines = self
            .lines(map)
            .into_iter()
            .map(|(line, c)| {
                let by_class = c
                    .top_classes()
                    .into_iter()
                    .map(|(op, cy)| (op.snake_name().to_string(), Json::Num(cy as f64)))
                    .collect();
                let source = if line == 0 {
                    String::new()
                } else {
                    src_lines
                        .get(line as usize - 1)
                        .map(|s| s.trim().to_string())
                        .unwrap_or_default()
                };
                Json::Obj(vec![
                    ("line".to_string(), Json::Num(line as f64)),
                    ("source".to_string(), Json::Str(source)),
                    ("cycles".to_string(), Json::Num(c.cycles as f64)),
                    (
                        "fraction".to_string(),
                        Json::Num(if total == 0 {
                            0.0
                        } else {
                            c.cycles as f64 / total as f64
                        }),
                    ),
                    ("instructions".to_string(), Json::Num(c.instructions as f64)),
                    ("by_class".to_string(), Json::Obj(by_class)),
                    ("lane_elems".to_string(), Json::Num(c.lane_elems as f64)),
                    ("lane_slots".to_string(), Json::Num(c.lane_slots as f64)),
                    (
                        "lane_utilization".to_string(),
                        match c.lane_utilization() {
                            Some(u) => Json::Num(u),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(PROFILE_SCHEMA.to_string())),
            ("entry".to_string(), Json::Str(entry.to_string())),
            ("target".to_string(), Json::Str(target.to_string())),
            ("total_cycles".to_string(), Json::Num(total as f64)),
            ("total_instructions".to_string(), Json::Num(instrs as f64)),
            ("lines".to_string(), Json::Arr(lines)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_span_and_class() {
        let mut p = Profile::default();
        let a = Span::new(5, 9);
        p.record(a, OpClass::ScalarMul, 6, 3);
        p.record(a, OpClass::ScalarMul, 2, 1);
        p.record(a, OpClass::Load, 4, 4);
        let c = &p.spans[&a];
        assert_eq!(c.cycles, 12);
        assert_eq!(c.instructions, 8);
        assert_eq!(c.by_class[OpClass::ScalarMul as usize], 8);
        assert_eq!(c.by_class[OpClass::Load as usize], 4);
        assert_eq!(p.total_cycles(), 12);
    }

    #[test]
    fn lines_aggregate_spans_on_same_line() {
        let map = SourceMap::new("a = 1; b = 2;\nc = 3;");
        let mut p = Profile::default();
        p.record(Span::new(0, 6), OpClass::ScalarAlu, 1, 1);
        p.record(Span::new(7, 13), OpClass::ScalarAlu, 2, 2);
        p.record(Span::new(14, 20), OpClass::ScalarAlu, 5, 1);
        p.record(Span::dummy(), OpClass::Call, 1, 1);
        let lines = p.lines(&map);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].0, 0); // synthesized
        let mut by_class = [0u64; OpClass::COUNT];
        by_class[OpClass::ScalarAlu as usize] = 3;
        assert_eq!(
            lines[1],
            (
                1,
                SpanCounters {
                    cycles: 3,
                    instructions: 3,
                    by_class,
                    ..SpanCounters::default()
                }
            )
        );
        assert_eq!(lines[2].0, 2);
        assert_eq!(lines[2].1.cycles, 5);
    }

    #[test]
    fn lane_utilization_ratio() {
        let mut c = SpanCounters::default();
        assert_eq!(c.lane_utilization(), None);
        c.lane_elems = 6;
        c.lane_slots = 8;
        assert_eq!(c.lane_utilization(), Some(0.75));
    }

    #[test]
    fn json_document_carries_schema_and_lines() {
        let map = SourceMap::new("x = y * y;");
        let mut p = Profile::default();
        p.record(Span::new(0, 10), OpClass::ScalarMul, 2, 1);
        let doc = p.to_json(&map, "f", "dsp16");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(PROFILE_SCHEMA)
        );
        assert_eq!(doc.get("entry").and_then(Json::as_str), Some("f"));
        let Some(Json::Arr(lines)) = doc.get("lines") else {
            panic!("lines missing");
        };
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0].get("source").and_then(Json::as_str),
            Some("x = y * y;")
        );
        let by_class = lines[0].get("by_class").expect("by_class");
        assert!(matches!(by_class.get("scalar_mul"), Some(Json::Num(n)) if *n == 2.0));
    }

    #[test]
    fn text_report_sorts_hottest_first() {
        let map = SourceMap::new("cold();\nhot();");
        let mut p = Profile::default();
        p.record(Span::new(0, 7), OpClass::ScalarAlu, 1, 1);
        p.record(Span::new(8, 14), OpClass::ScalarMul, 99, 1);
        let text = p.render_text(&map, "f");
        let hot_at = text.find("hot();").expect("hot line shown");
        let cold_at = text.find("cold();").expect("cold line shown");
        assert!(hot_at < cold_at, "hottest line first:\n{text}");
        assert!(text.contains("99.0%"), "percentage column:\n{text}");
    }
}
