//! # matic-asip
//!
//! A virtual ASIP for the matic compiler's evaluation: cycle-level
//! execution of compiler MIR under a parameterized instruction cost
//! model ([`matic_isa::IsaSpec`]).
//!
//! The DATE'16 paper measured its generated code on a proprietary ASIP
//! and its vendor toolchain; this crate is the open substitute. It
//! executes the exact MIR the C backend emits from — same fixed-array
//! semantics, same intrinsic-vs-scalar-fallback decisions — and charges
//! cycles per primitive machine operation, so running baseline MIR and
//! vectorized MIR through the same machine reproduces the paper's
//! cycle-count comparison while also producing real numerical outputs
//! that the test suite checks against the reference interpreter.
//!
//! # Examples
//!
//! ```
//! use matic_asip::{AsipMachine, SimVal};
//! use matic_isa::IsaSpec;
//! use matic_sema::{analyze, Ty, Class, Shape, Dim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (program, _) = matic_frontend::parse(
//!     "function s = dotp(a, b)\ns = sum(a .* b);\nend",
//! );
//! let v = Ty::new(Class::Double, Shape::row(Dim::Known(4)));
//! let analysis = analyze(&program, "dotp", &[v, v]);
//! let (mut mir, _) = matic_mir::lower_program(&program, &analysis);
//! matic_mir::optimize_program(&mut mir);
//! matic_vectorize::vectorize_program(&mut mir);
//!
//! let machine = AsipMachine::new(IsaSpec::dsp16());
//! let out = machine.run(&mir, "dotp", vec![
//!     SimVal::row(&[1.0, 2.0, 3.0, 4.0]),
//!     SimVal::row(&[1.0, 1.0, 1.0, 1.0]),
//! ])?;
//! assert_eq!(out.outputs[0].as_cx()?.re, 10.0);
//! assert!(out.cycles.total > 0);
//! # Ok(())
//! # }
//! ```

pub mod decode;
pub mod profile;
pub mod report;
pub mod sim;

pub use decode::{decode_program, DecodedProgram};
pub use profile::{Profile, SpanCounters, PROFILE_SCHEMA};
pub use report::CycleReport;
pub use sim::{
    fuse_program, AsipMachine, Engine, NativeProgram, SimError, SimErrorKind, SimOutcome, SimVal,
    Simulator,
};
