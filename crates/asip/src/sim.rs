//! Cycle-level execution of MIR on the virtual ASIP.
//!
//! The simulator interprets the *same* MIR the C backend emits from, with
//! the semantics of the generated C (fixed-size arrays, no growth), and
//! charges cycles per primitive machine operation according to the
//! target's parameterized cost model — instruction-level cost attribution
//! on compiler IR, the standard early design-space-exploration technique.
//! Running the baseline MIR and the vectorized MIR through the same
//! machine reproduces the paper's measurement: cycles of
//! MATLAB-Coder-style code vs. cycles of custom-instruction code.

use crate::decode::{decode_program, DInst, DecodedFunction, DecodedProgram};
use crate::profile::Profile;
use crate::report::CycleReport;
use matic_frontend::ast::{BinOp, UnOp};
use matic_frontend::span::Span;
use matic_interp::{Cx, Matrix};
use matic_isa::{IsaSpec, OpClass};
use matic_mir::{
    AllocKind, Index, MirFunction, MirProgram, Operand, ReduceKind, Rvalue, Stmt, VarId, VecKind,
    VecRef, VectorOp,
};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A simulated runtime value: scalar register or memory-resident array.
#[derive(Debug, Clone, PartialEq)]
pub enum SimVal {
    /// Scalar register (real values have `im == 0`).
    Scalar(Cx),
    /// Array in data memory.
    Arr(Matrix),
}

impl SimVal {
    /// A real scalar.
    pub fn scalar(v: f64) -> SimVal {
        SimVal::Scalar(Cx::real(v))
    }

    /// A real row-vector array.
    pub fn row(values: &[f64]) -> SimVal {
        SimVal::Arr(Matrix::row_from_f64(values))
    }

    /// A complex row-vector array from `(re, im)` pairs.
    pub fn cx_row(pairs: &[(f64, f64)]) -> SimVal {
        SimVal::Arr(Matrix::row(
            pairs.iter().map(|&(r, i)| Cx::new(r, i)).collect(),
        ))
    }

    /// The scalar payload, broadcasting 1×1 arrays.
    pub fn as_cx(&self) -> Result<Cx, String> {
        match self {
            SimVal::Scalar(z) => Ok(*z),
            SimVal::Arr(m) => m.as_scalar(),
        }
    }

    /// The array payload (scalars become 1×1).
    pub fn into_matrix(self) -> Matrix {
        match self {
            SimVal::Scalar(z) => Matrix::scalar(z),
            SimVal::Arr(m) => m,
        }
    }

    /// A reference view of the array payload, if this is an array.
    pub fn as_matrix(&self) -> Option<&Matrix> {
        match self {
            SimVal::Arr(m) => Some(m),
            SimVal::Scalar(_) => None,
        }
    }
}

/// Coarse classification of a simulation failure (shared with the
/// reference interpreter so differential checks can compare outcomes).
pub use matic_interp::ErrorKind as SimErrorKind;

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Description.
    pub message: String,
    /// Source location of the failing operation.
    pub span: Span,
    /// Coarse failure class (fuel, bounds, other trap).
    pub kind: SimErrorKind,
}

impl SimError {
    fn new(message: impl Into<String>, span: Span) -> SimError {
        let message = message.into();
        let kind = matic_interp::classify_message(&message);
        SimError {
            message,
            span,
            kind,
        }
    }

    /// The fuel-exhaustion error raised when the statement budget runs
    /// out.
    pub fn fuel_exhausted(span: Span) -> SimError {
        SimError {
            message: "simulation fuel exhausted".to_string(),
            span,
            kind: SimErrorKind::FuelExhausted,
        }
    }

    /// Whether this failure is the fuel budget running out.
    pub fn is_fuel_exhausted(&self) -> bool {
        self.kind == SimErrorKind::FuelExhausted
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asip sim: {} at {}", self.message, self.span)
    }
}

impl std::error::Error for SimError {}

/// Result of one simulated kernel invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Entry-function outputs, in order.
    pub outputs: Vec<SimVal>,
    /// Cycle accounting.
    pub cycles: CycleReport,
    /// Text printed by `fprintf`/`disp`.
    pub printed: String,
    /// Per-source-span cycle attribution; `Some` only when the machine ran
    /// with [`AsipMachine::with_profiling`] enabled.
    pub profile: Option<Profile>,
}

/// Per-class cycle costs and availability, pre-resolved from an
/// [`IsaSpec`] into flat arrays indexed by `OpClass as usize`. The hot
/// execution loop charges cycles through this table instead of walking the
/// spec's `BTreeMap` cost model on every operation.
#[derive(Debug, Clone)]
struct CostTable {
    cost: [u32; OpClass::COUNT],
    supports: [bool; OpClass::COUNT],
}

impl CostTable {
    fn new(spec: &IsaSpec) -> CostTable {
        let mut cost = [0u32; OpClass::COUNT];
        let mut supports = [false; OpClass::COUNT];
        for &op in OpClass::ALL {
            cost[op as usize] = spec.cost(op);
            supports[op as usize] = spec.supports(op);
        }
        CostTable { cost, supports }
    }
}

/// The virtual ASIP.
#[derive(Debug, Clone)]
pub struct AsipMachine {
    spec: Arc<IsaSpec>,
    costs: CostTable,
    /// Whether vector operations may use the target's custom instructions
    /// (mirrors the C backend's `use_intrinsics`).
    use_intrinsics: bool,
    /// Statement budget per `run`.
    fuel: u64,
    /// Whether runs accumulate per-span cycle attribution.
    profiling: bool,
}

impl AsipMachine {
    /// A machine implementing `spec`.
    pub fn new(spec: IsaSpec) -> AsipMachine {
        AsipMachine::from_shared(Arc::new(spec))
    }

    /// A machine implementing an already-shared `spec` (avoids cloning the
    /// spec when many machines target the same ISA).
    pub fn from_shared(spec: Arc<IsaSpec>) -> AsipMachine {
        let costs = CostTable::new(&spec);
        AsipMachine {
            spec,
            costs,
            use_intrinsics: true,
            fuel: 2_000_000_000,
            profiling: false,
        }
    }

    /// Disables custom-instruction issue (forces scalar expansion).
    pub fn without_intrinsics(mut self) -> AsipMachine {
        self.use_intrinsics = false;
        self
    }

    /// Caps the number of executed statements (default 2·10⁹); exceeding
    /// it raises a "fuel exhausted" error instead of hanging on
    /// non-terminating programs.
    pub fn with_fuel(mut self, fuel: u64) -> AsipMachine {
        self.fuel = fuel;
        self
    }

    /// Enables per-source-span cycle attribution: [`SimOutcome::profile`]
    /// becomes `Some` on subsequent runs. Profiling never changes cycle
    /// totals — both engines charge identically with it on or off.
    pub fn with_profiling(mut self, on: bool) -> AsipMachine {
        self.profiling = on;
        self
    }

    /// The implemented ISA.
    pub fn spec(&self) -> &IsaSpec {
        &self.spec
    }

    /// Runs `entry` of `mir` with `inputs`, returning outputs + cycles.
    ///
    /// Decodes the program into its linear form first and executes on the
    /// pre-decoded engine. For repeated invocations of the same program,
    /// [`AsipMachine::load`] amortizes the decode across runs.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for arity mismatches, out-of-bounds
    /// accesses, or constructs the machine cannot execute.
    pub fn run(
        &self,
        mir: &MirProgram,
        entry: &str,
        inputs: Vec<SimVal>,
    ) -> Result<SimOutcome, SimError> {
        let decoded = decode_program(mir);
        self.run_decoded(mir, &decoded, entry, inputs)
    }

    /// Runs `entry` on the original tree-walking engine (no decode stage).
    ///
    /// Kept as the reference semantics: the differential test suite checks
    /// that [`AsipMachine::run`] produces bit-identical outputs and cycle
    /// reports against this path.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AsipMachine::run`].
    pub fn run_interpreted(
        &self,
        mir: &MirProgram,
        entry: &str,
        inputs: Vec<SimVal>,
    ) -> Result<SimOutcome, SimError> {
        let func = mir
            .function(entry)
            .ok_or_else(|| SimError::new(format!("entry `{entry}` not found"), Span::dummy()))?;
        let mut exec = Exec::new(self, mir, None);
        let outputs = exec.call(func, inputs)?;
        Ok(exec.finish(outputs))
    }

    /// Pre-decodes `mir` and returns a reusable simulator bound to
    /// `entry`. Repeated [`Simulator::run`] calls skip the decode and spec
    /// setup entirely.
    pub fn load<'m>(self, mir: &'m MirProgram, entry: &str) -> Simulator<'m> {
        let decoded = Arc::new(decode_program(mir));
        self.load_decoded(mir, decoded, entry)
    }

    /// Like [`AsipMachine::load`] but reuses an already-decoded program
    /// (e.g. a compilation pipeline's cache).
    pub fn load_decoded<'m>(
        self,
        mir: &'m MirProgram,
        decoded: Arc<DecodedProgram>,
        entry: &str,
    ) -> Simulator<'m> {
        let entry_idx = decoded.func_index(entry);
        Simulator {
            machine: self,
            mir,
            decoded,
            native: OnceLock::new(),
            engine: Engine::default(),
            entry: entry.to_string(),
            entry_idx,
        }
    }

    pub(crate) fn run_decoded(
        &self,
        mir: &MirProgram,
        decoded: &DecodedProgram,
        entry: &str,
        inputs: Vec<SimVal>,
    ) -> Result<SimOutcome, SimError> {
        let idx = decoded
            .func_index(entry)
            .ok_or_else(|| SimError::new(format!("entry `{entry}` not found"), Span::dummy()))?;
        self.run_decoded_at(mir, decoded, idx, inputs)
    }

    pub(crate) fn run_decoded_at(
        &self,
        mir: &MirProgram,
        decoded: &DecodedProgram,
        idx: usize,
        inputs: Vec<SimVal>,
    ) -> Result<SimOutcome, SimError> {
        let mut exec = Exec::new(self, mir, Some(decoded));
        let outputs = exec.call_decoded(&mir.functions[idx], &decoded.funcs[idx], inputs)?;
        Ok(exec.finish(outputs))
    }

    pub(crate) fn run_native_at(
        &self,
        mir: &MirProgram,
        decoded: &DecodedProgram,
        native: &NativeProgram,
        idx: usize,
        inputs: Vec<SimVal>,
    ) -> Result<SimOutcome, SimError> {
        let mut exec = Exec::new(self, mir, Some(decoded));
        exec.native = Some(native);
        let outputs = exec.call_native(&mir.functions[idx], &native.funcs[idx], inputs)?;
        Ok(exec.finish(outputs))
    }
}

/// A machine with a program already decoded and an entry point resolved —
/// the reusable-run API. Construction (via [`AsipMachine::load`]) pays for
/// the decode once; each [`Simulator::run`] then only allocates the
/// per-call environment.
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    machine: AsipMachine,
    mir: &'m MirProgram,
    decoded: Arc<DecodedProgram>,
    /// Fused form for the native engine, built lazily on first native run
    /// (or seeded via [`Simulator::with_native`] by a pipeline cache).
    native: OnceLock<Arc<NativeProgram>>,
    engine: Engine,
    entry: String,
    /// Entry function index, resolved once at load time so repeated runs
    /// skip the by-name lookup (`None` when the entry does not exist; the
    /// error surfaces on `run`).
    entry_idx: Option<usize>,
}

impl Simulator<'_> {
    /// Runs the loaded entry function with `inputs` on the selected
    /// [`Engine`] (default [`Engine::Native`]). All engines are bit-exact;
    /// they differ only in speed.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AsipMachine::run`].
    pub fn run(&self, inputs: Vec<SimVal>) -> Result<SimOutcome, SimError> {
        if matches!(self.engine, Engine::Tree) {
            return self.machine.run_interpreted(self.mir, &self.entry, inputs);
        }
        let idx = self.entry_idx.ok_or_else(|| {
            SimError::new(format!("entry `{}` not found", self.entry), Span::dummy())
        })?;
        match self.engine {
            Engine::Tree => unreachable!(),
            Engine::Linear => self
                .machine
                .run_decoded_at(self.mir, &self.decoded, idx, inputs),
            Engine::Native => {
                let native = self
                    .native
                    .get_or_init(|| Arc::new(fuse_program(self.mir, &self.decoded)));
                self.machine
                    .run_native_at(self.mir, &self.decoded, native, idx, inputs)
            }
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &AsipMachine {
        &self.machine
    }

    /// Selects which execution engine [`Simulator::run`] uses.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Seeds the fused program cache (e.g. from a compilation pipeline
    /// that shares one [`NativeProgram`] across many simulators). The
    /// program must have been built by [`fuse_program`] from the same
    /// decoded program this simulator runs.
    pub fn with_native(self, native: Arc<NativeProgram>) -> Self {
        let _ = self.native.set(native);
        self
    }

    /// Caps the statement budget per [`Simulator::run`] (see
    /// [`AsipMachine::with_fuel`]).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.machine.fuel = fuel;
        self
    }

    /// Enables per-span cycle attribution (see
    /// [`AsipMachine::with_profiling`]).
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.machine.profiling = on;
        self
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

struct Exec<'a> {
    machine: &'a AsipMachine,
    mir: &'a MirProgram,
    /// `Some` when running on the pre-decoded engine; `None` on the
    /// tree-walking reference path. Callees dispatch through the same
    /// engine as their caller.
    decoded: Option<&'a DecodedProgram>,
    /// `Some` when running on the fused direct-threaded engine (implies
    /// `decoded` is also `Some`, for name lookup).
    native: Option<&'a NativeProgram>,
    // Cycle accounting as flat accumulators (array indexed by
    // `OpClass as usize`); folded into a `CycleReport` once at the end of
    // the run. `touched` marks classes that were charged at least once —
    // including zero-count charges — so the final report's per-class map
    // matches what per-charge `BTreeMap` insertion would have produced.
    total: u64,
    instructions: u64,
    by_class: [u64; OpClass::COUNT],
    touched: u32,
    printed: String,
    fuel: u64,
    depth: u32,
    /// Span of the statement/instruction currently being charged; every
    /// dispatch sets it before any `charge` call, so the profile hook in
    /// `charge` attributes to the right source location on both engines.
    cur_span: Span,
    /// `Some` when the machine was built `with_profiling(true)`.
    profile: Option<Profile>,
}

type Env = Vec<Option<SimVal>>;

impl<'a> Exec<'a> {
    fn new(
        machine: &'a AsipMachine,
        mir: &'a MirProgram,
        decoded: Option<&'a DecodedProgram>,
    ) -> Exec<'a> {
        Exec {
            machine,
            mir,
            decoded,
            native: None,
            total: 0,
            instructions: 0,
            by_class: [0; OpClass::COUNT],
            touched: 0,
            printed: String::new(),
            fuel: machine.fuel,
            depth: 0,
            cur_span: Span::dummy(),
            profile: machine.profiling.then(Profile::default),
        }
    }

    fn finish(self, outputs: Vec<SimVal>) -> SimOutcome {
        let mut cycles = CycleReport::new();
        cycles.total = self.total;
        cycles.instructions = self.instructions;
        for &op in OpClass::ALL {
            if self.touched & (1 << op as usize) != 0 {
                cycles.by_class.insert(op, self.by_class[op as usize]);
            }
        }
        SimOutcome {
            outputs,
            cycles,
            printed: self.printed,
            profile: self.profile,
        }
    }

    fn spec(&self) -> &IsaSpec {
        &self.machine.spec
    }

    fn supports(&self, class: OpClass) -> bool {
        self.machine.costs.supports[class as usize]
    }

    #[inline(always)]
    fn charge(&mut self, class: OpClass, count: u64) {
        let c = self.machine.costs.cost[class as usize] as u64 * count;
        self.total += c;
        self.instructions += count;
        self.by_class[class as usize] += c;
        self.touched |= 1 << class as usize;
        if self.profile.is_some() {
            self.charge_profile(class, c, count);
        }
    }

    /// The profiling half of [`Exec::charge`], kept out of line so the
    /// accumulator updates inline into every handler.
    #[inline(never)]
    fn charge_profile(&mut self, class: OpClass, cycles: u64, count: u64) {
        if let Some(p) = &mut self.profile {
            p.record(self.cur_span, class, cycles, count);
        }
    }

    /// Records SIMD lane occupancy for the current span: `elems` useful
    /// elements processed in `slots` issued lane slots.
    fn note_lanes(&mut self, elems: u64, slots: u64) {
        if let Some(p) = &mut self.profile {
            p.record_lanes(self.cur_span, elems, slots);
        }
    }

    #[inline(always)]
    fn burn(&mut self, span: Span) -> Result<(), SimError> {
        if self.fuel == 0 {
            return Err(SimError::fuel_exhausted(span));
        }
        self.fuel -= 1;
        Ok(())
    }

    // ---- complex-arithmetic cost helpers ---------------------------------

    fn cx_add_cost(&mut self, count: u64) {
        if self.machine.use_intrinsics && self.supports(OpClass::ComplexAdd) {
            self.charge(OpClass::ComplexAdd, count);
        } else {
            self.charge(OpClass::ScalarAlu, 2 * count);
        }
    }

    fn cx_mul_cost(&mut self, count: u64) {
        if self.machine.use_intrinsics && self.supports(OpClass::ComplexMul) {
            self.charge(OpClass::ComplexMul, count);
        } else {
            self.charge(OpClass::ScalarMul, 4 * count);
            self.charge(OpClass::ScalarAlu, 2 * count);
        }
    }

    fn cx_mac_cost(&mut self, count: u64) {
        if self.machine.use_intrinsics && self.supports(OpClass::ComplexMac) {
            self.charge(OpClass::ComplexMac, count);
        } else {
            self.cx_mul_cost(count);
            self.cx_add_cost(count);
        }
    }

    fn cx_div_cost(&mut self, count: u64) {
        self.charge(OpClass::ScalarMul, 6 * count);
        self.charge(OpClass::ScalarAlu, 3 * count);
        self.charge(OpClass::ScalarDiv, 2 * count);
    }

    fn scalar_binop_cost(&mut self, op: BinOp, complex: bool) {
        if complex {
            match op {
                BinOp::Add | BinOp::Sub => self.cx_add_cost(1),
                BinOp::ElemMul | BinOp::MatMul => self.cx_mul_cost(1),
                BinOp::ElemDiv | BinOp::MatDiv | BinOp::ElemLeftDiv | BinOp::MatLeftDiv => {
                    self.cx_div_cost(1)
                }
                BinOp::ElemPow | BinOp::MatPow => self.charge(OpClass::ScalarTrans, 2),
                _ => self.charge(OpClass::ScalarAlu, 2),
            }
        } else {
            match op {
                BinOp::ElemMul | BinOp::MatMul => self.charge(OpClass::ScalarMul, 1),
                BinOp::ElemDiv | BinOp::MatDiv | BinOp::ElemLeftDiv | BinOp::MatLeftDiv => {
                    self.charge(OpClass::ScalarDiv, 1)
                }
                BinOp::ElemPow | BinOp::MatPow => self.charge(OpClass::ScalarTrans, 1),
                _ => self.charge(OpClass::ScalarAlu, 1),
            }
        }
    }

    // ---- function calls ---------------------------------------------------

    fn call(&mut self, func: &MirFunction, inputs: Vec<SimVal>) -> Result<Vec<SimVal>, SimError> {
        if self.depth > 128 {
            return Err(SimError::new("call depth exceeded", Span::dummy()));
        }
        if inputs.len() != func.params.len() {
            return Err(SimError::new(
                format!(
                    "`{}` expects {} inputs, got {}",
                    func.name,
                    func.params.len(),
                    inputs.len()
                ),
                Span::dummy(),
            ));
        }
        self.depth += 1;
        self.charge(OpClass::Call, 1);
        let mut env: Env = vec![None; func.vars.len()];
        for (&p, val) in func.params.iter().zip(inputs) {
            // Coerce per the register's representation.
            let coerced = if func.var_ty(p).shape.is_scalar() {
                SimVal::Scalar(val.as_cx().map_err(|m| SimError::new(m, Span::dummy()))?)
            } else {
                SimVal::Arr(val.into_matrix())
            };
            env[p.0 as usize] = Some(coerced);
        }
        self.exec_block(func, &func.body, &mut env)?;
        let mut outs = Vec::new();
        for &o in &func.outputs {
            outs.push(env[o.0 as usize].clone().ok_or_else(|| {
                SimError::new(
                    format!("output `{}` never assigned", func.var(o).name),
                    Span::dummy(),
                )
            })?);
        }
        self.depth -= 1;
        Ok(outs)
    }

    /// Calls a function by name through whichever engine this execution
    /// runs on, borrowing the callee from the program (the seed
    /// implementation cloned the whole `MirFunction` per call).
    fn call_by_name(
        &mut self,
        name: &str,
        inputs: Vec<SimVal>,
        span: Span,
    ) -> Result<Vec<SimVal>, SimError> {
        match self.decoded {
            Some(decoded) => {
                let idx = decoded
                    .func_index(name)
                    .ok_or_else(|| SimError::new(format!("call to unknown `{name}`"), span))?;
                let mir = self.mir;
                match self.native {
                    Some(native) => {
                        self.call_native(&mir.functions[idx], &native.funcs[idx], inputs)
                    }
                    None => self.call_decoded(&mir.functions[idx], &decoded.funcs[idx], inputs),
                }
            }
            None => {
                let mir = self.mir;
                let callee = mir
                    .function(name)
                    .ok_or_else(|| SimError::new(format!("call to unknown `{name}`"), span))?;
                self.call(callee, inputs)
            }
        }
    }

    fn exec_block(
        &mut self,
        f: &MirFunction,
        stmts: &[Stmt],
        env: &mut Env,
    ) -> Result<Flow, SimError> {
        for s in stmts {
            match self.exec_stmt(f, s, env)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    // ---- value access -------------------------------------------------------

    #[inline]
    fn get(&self, f: &MirFunction, env: &Env, v: VarId, span: Span) -> Result<SimVal, SimError> {
        env[v.0 as usize]
            .clone()
            .ok_or_else(|| SimError::new(format!("read of unset `{}`", f.var(v).name), span))
    }

    #[inline]
    fn operand(
        &self,
        f: &MirFunction,
        env: &Env,
        op: Operand,
        span: Span,
    ) -> Result<SimVal, SimError> {
        match op {
            Operand::Const(v) => Ok(SimVal::Scalar(Cx::real(v))),
            Operand::ConstC(re, im) => Ok(SimVal::Scalar(Cx::new(re, im))),
            Operand::Var(v) => self.get(f, env, v, span),
        }
    }

    #[inline]
    fn scalar_of(
        &self,
        f: &MirFunction,
        env: &Env,
        op: Operand,
        span: Span,
    ) -> Result<Cx, SimError> {
        self.operand(f, env, op, span)?
            .as_cx()
            .map_err(|m| SimError::new(m, span))
    }

    #[inline]
    fn real_of(
        &self,
        f: &MirFunction,
        env: &Env,
        op: Operand,
        span: Span,
    ) -> Result<f64, SimError> {
        let z = self.scalar_of(f, env, op, span)?;
        Ok(z.re)
    }

    #[inline]
    fn index0(&self, f: &MirFunction, env: &Env, op: Operand, span: Span) -> Result<i64, SimError> {
        Ok(self.real_of(f, env, op, span)? as i64 - 1)
    }

    fn set(&self, env: &mut Env, v: VarId, val: SimVal) {
        env[v.0 as usize] = Some(val);
    }

    /// Takes `v` out of the environment for in-place mutation; the caller
    /// must `set` it back. Where `get` would clone (and force a
    /// copy-on-write duplication of the payload on the next write), this
    /// leaves the mutator holding the only reference, so indexed stores
    /// update arrays in place.
    fn take_val(
        &self,
        f: &MirFunction,
        env: &mut Env,
        v: VarId,
        span: Span,
    ) -> Result<SimVal, SimError> {
        env[v.0 as usize]
            .take()
            .ok_or_else(|| SimError::new(format!("read of unset `{}`", f.var(v).name), span))
    }

    // ---- statements -----------------------------------------------------------

    fn exec_stmt(&mut self, f: &MirFunction, stmt: &Stmt, env: &mut Env) -> Result<Flow, SimError> {
        self.burn(Span::dummy())?;
        self.cur_span = stmt.span();
        match stmt {
            Stmt::Def { dst, rv, span } => {
                let val = self.eval_rvalue(f, env, *dst, rv, *span)?;
                // Coerce to the register representation.
                let val = if f.var_ty(*dst).shape.is_scalar() {
                    match val {
                        SimVal::Arr(m) if m.is_scalar() => SimVal::Scalar(m.lin(0)),
                        other => other,
                    }
                } else {
                    match val {
                        SimVal::Scalar(z) => SimVal::Arr(Matrix::scalar(z)),
                        other => other,
                    }
                };
                self.set(env, *dst, val);
                Ok(Flow::Normal)
            }
            Stmt::Store {
                array,
                indices,
                value,
                span,
            } => {
                self.exec_store(f, env, *array, indices, *value, *span)?;
                Ok(Flow::Normal)
            }
            Stmt::CallMulti {
                dsts,
                func,
                args,
                user,
                span,
            } => {
                self.exec_call_multi(f, env, dsts, func, args, *user, *span)?;
                Ok(Flow::Normal)
            }
            Stmt::Effect { name, args, span } => {
                self.exec_effect(f, env, name, args, *span)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.charge(OpClass::Branch, 1);
                let c = self.truthy(f, env, *cond)?;
                if c {
                    self.exec_block(f, then_body, env)
                } else {
                    self.exec_block(f, else_body, env)
                }
            }
            Stmt::For {
                var,
                start,
                step,
                stop,
                body,
                ..
            } => {
                let loop_span = self.cur_span;
                let span = Span::dummy();
                let s = self.real_of(f, env, *start, span)?;
                let st = self.real_of(f, env, *step, span)?;
                let e = self.real_of(f, env, *stop, span)?;
                let n = if st == 0.0 {
                    0
                } else {
                    (((e - s) / st + 1e-10).floor() as i64 + 1).max(0)
                };
                for k in 0..n {
                    self.burn(span)?;
                    // Body statements moved `cur_span`; the per-iteration
                    // control charges belong to the loop header line.
                    self.cur_span = loop_span;
                    // Loop control: induction update + branch.
                    self.charge(OpClass::ScalarAlu, 1);
                    self.charge(OpClass::Branch, 1);
                    self.set(env, *var, SimVal::scalar(s + st * k as f64));
                    match self.exec_block(f, body, env)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Continue | Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While {
                cond_defs,
                cond,
                body,
                ..
            } => {
                let loop_span = self.cur_span;
                loop {
                    self.burn(Span::dummy())?;
                    self.exec_block(f, cond_defs, env)?;
                    self.cur_span = loop_span;
                    self.charge(OpClass::Branch, 1);
                    if !self.truthy(f, env, *cond)? {
                        break;
                    }
                    match self.exec_block(f, body, env)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Continue | Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Return(_) => Ok(Flow::Return),
            Stmt::VectorOp(vop) => {
                self.exec_vector_op(f, env, vop)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn truthy(&self, f: &MirFunction, env: &Env, op: Operand) -> Result<bool, SimError> {
        match self.operand(f, env, op, Span::dummy())? {
            SimVal::Scalar(z) => Ok(z.re != 0.0 || z.im != 0.0),
            SimVal::Arr(m) => Ok(m.as_bool()),
        }
    }
}

include!("sim_linear.rs");
include!("sim_part2.rs");
include!("sim_part3.rs");
include!("fuse.rs");
include!("sim_native.rs");
