// Superinstruction fusion — included from sim.rs.
//
// Pre-compiles a `DecodedProgram` into the native engine's direct-threaded
// form: every instruction becomes an `NStep` whose `run` field is a plain
// Rust fn pointer chosen once here, and maximal straight-line runs of
// `Def`/`Store` instructions are fused into a single `Super` step holding a
// flat list of micro-ops (each again a pre-selected fn pointer with its
// operand slots resolved). The dispatch loop in sim_native.rs is then just
// `pc = (step.run)(...)` — no instruction-enum match on the hot path, and
// no span bookkeeping unless profiling is on.
//
// Fusion is a pure representation change: micro-ops burn fuel, charge
// cycles, and raise errors in exactly the order the linear engine's
// per-`DInst` handlers would, so outcomes stay bit-identical (pinned by
// tests/engine_differential.rs and the pipeline fuzzer).

/// Which simulator implementation executes a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The original tree-walking interpreter over structured MIR — the
    /// reference semantics.
    Tree,
    /// The pre-decoded linear engine (flat `DInst` stream + explicit pc).
    Linear,
    /// The fused direct-threaded engine (superinstructions + fn-pointer
    /// dispatch) — fastest; the default.
    #[default]
    Native,
}

impl Engine {
    /// All engines, in oracle-to-fastest order.
    pub const ALL: [Engine; 3] = [Engine::Tree, Engine::Linear, Engine::Native];

    /// The CLI name (`tree`, `linear`, `native`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Tree => "tree",
            Engine::Linear => "linear",
            Engine::Native => "native",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "tree" => Ok(Engine::Tree),
            "linear" => Ok(Engine::Linear),
            "native" => Ok(Engine::Native),
            other => Err(format!(
                "unknown engine `{other}` (expected tree, linear, or native)"
            )),
        }
    }
}

/// A decoded program pre-compiled for the direct-threaded native engine.
///
/// Functions are index-parallel with the source [`MirProgram`] /
/// [`DecodedProgram`]; build one with [`fuse_program`] and run it through
/// [`Simulator`] (engine [`Engine::Native`]). The structure is immutable
/// and target-independent, so one fused program can be shared across
/// threads and retargeted to many candidate ISAs.
pub struct NativeProgram {
    pub(crate) funcs: Vec<NativeFunction>,
}

impl fmt::Debug for NativeProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeProgram")
            .field("funcs", &self.funcs.len())
            .finish()
    }
}

/// One function's flat step table.
pub(crate) struct NativeFunction {
    steps: Vec<NStep>,
}

/// Handler signature for one native step: executes, then returns the next
/// step index (`u32::MAX` to leave the function).
type StepFn = for<'a> fn(
    &mut Exec<'a>,
    &MirFunction,
    &mut Env,
    &mut Vec<Frame>,
    &NStep,
    u32,
) -> Result<u32, SimError>;

/// One direct-threaded step: a pre-selected handler plus its payload.
struct NStep {
    run: StepFn,
    data: NData,
}

/// Step payloads (control flow and non-fusable statements).
enum NData {
    /// A fused straight-line run of `Def`/`Store` instructions.
    Super(Vec<Micro>),
    /// Conditional branch; the fuel burn and loop-exit behavior are baked
    /// into the handler selected at fuse time.
    Branch {
        cond: Operand,
        if_false: u32,
        exit_loop: bool,
        span: Span,
    },
    Jump {
        target: u32,
    },
    ForSetup {
        var: VarId,
        start: Operand,
        step: Operand,
        stop: Operand,
    },
    ForNext {
        end: u32,
        span: Span,
    },
    Loop {
        target: u32,
    },
    CallMulti {
        dsts: Vec<Option<VarId>>,
        func: String,
        args: Vec<Operand>,
        user: bool,
        span: Span,
    },
    Effect {
        name: String,
        args: Vec<Operand>,
        span: Span,
    },
    Vector(VectorOp),
    None,
}

/// Handler signature for one micro-op inside a superinstruction.
type MicroFn =
    for<'a> fn(&mut Exec<'a>, &MirFunction, &mut Env, &MicroData) -> Result<(), SimError>;

/// One fused micro-op: pre-selected handler + pre-resolved operand slots.
struct Micro {
    run: MicroFn,
    data: MicroData,
}

/// Micro-op payloads. The specialized forms carry exactly the slots their
/// fast path needs; when a runtime shape disagrees with the specialization
/// (e.g. a scalar-typed register holding a 1×1 array's worth of gather
/// indices) the handler falls back to the generic `Exec` path, which
/// re-derives the identical charges and errors.
enum MicroData {
    /// `dst = a <op> b`, specialized for scalar operands. `class` and
    /// `evalf` are the cost class and compute fn for *real* scalar
    /// operands, pre-selected from `op` at fuse time; complex operands
    /// take the generic cost path (still keyed on `op`).
    Bin {
        op: BinOp,
        class: OpClass,
        evalf: fn(Cx, Cx) -> Cx,
        a: Operand,
        b: Operand,
        dst: VarId,
        scalar_dst: bool,
        span: Span,
    },
    /// `dst = a` (register copy).
    Copy {
        a: Operand,
        dst: VarId,
        scalar_dst: bool,
        span: Span,
    },
    /// `dst = <op> a`, specialized for a scalar operand.
    Un {
        op: UnOp,
        a: Operand,
        dst: VarId,
        scalar_dst: bool,
        span: Span,
    },
    /// `dst = arr(idx)`, specialized for a scalar subscript.
    Load1 {
        arr: VarId,
        idx: Operand,
        dst: VarId,
        scalar_dst: bool,
        span: Span,
    },
    /// `dst = arr(r, c)`, specialized for scalar subscripts.
    Load2 {
        arr: VarId,
        r: Operand,
        c: Operand,
        dst: VarId,
        scalar_dst: bool,
        span: Span,
    },
    /// `arr(idx) = value`, specialized for scalar subscript and value.
    Store1 {
        arr: VarId,
        idx: Operand,
        value: Operand,
        span: Span,
    },
    /// `arr(r, c) = value`, specialized for scalar subscripts and value.
    Store2 {
        arr: VarId,
        r: Operand,
        c: Operand,
        value: Operand,
        span: Span,
    },
    /// `dst = arr(sel)` for a single slice-like subscript (`Range`/`Full`).
    SliceLoadLin {
        arr: VarId,
        sel: AxisSel,
        dst: VarId,
        scalar_dst: bool,
        span: Span,
    },
    /// `dst = arr(rsel, csel)` where at least one axis is slice-like.
    SliceLoad2 {
        arr: VarId,
        rsel: AxisSel,
        csel: AxisSel,
        dst: VarId,
        scalar_dst: bool,
        span: Span,
    },
    /// `arr(sel) = value` for a single slice-like subscript.
    SliceStoreLin {
        arr: VarId,
        sel: AxisSel,
        value: Operand,
        span: Span,
    },
    /// `arr(rsel, csel) = value` where at least one axis is slice-like.
    SliceStore2 {
        arr: VarId,
        rsel: AxisSel,
        csel: AxisSel,
        value: Operand,
        span: Span,
    },
    /// A compiled straight-line run of scalar micro-ops executed with
    /// intermediate values held in a local temp stack instead of the
    /// environment (see [`ChainData`]).
    Chain(Box<ChainData>),
    /// Any other `Def` — runs through `Exec::eval_rvalue`.
    Def {
        dst: VarId,
        scalar_dst: bool,
        rv: Rvalue,
        span: Span,
    },
    /// Any other `Store` — runs through `Exec::exec_store`.
    Store {
        array: VarId,
        indices: Vec<Index>,
        value: Operand,
        span: Span,
    },
}

/// Longest run of micro-ops one chain may compile (bounds the runtime
/// temp stack, which lives on the Rust stack).
pub(crate) const CHAIN_MAX: usize = 48;

/// A scalar chain: a run of consecutive `Bin`/`Un`/`Copy`/`Load1`/`Load2`/
/// `Store1`/`Store2` micro-ops compiled into a flat op list whose
/// intermediate results live in a fixed temp stack. Environment reads that
/// refer to values defined earlier in the chain are rewritten to temp
/// reads at fuse time, and environment writes of values never read outside
/// the chain are elided entirely (the run aborts on error and outputs are
/// read only at function exit, so intermediate register state is
/// unobservable).
///
/// The fast path runs only when profiling is off, fuel covers the whole
/// chain, and every guard on the *initial* environment holds (external
/// scalar operands are scalars, load/store bases are arrays). Guards are
/// checked before any side effect, so a miss falls back to the original
/// micro sequence with bit-identical fuel, cycles, and errors.
pub(crate) struct ChainData {
    ops: Vec<ChainOp>,
    /// Shape guards on the initial environment, deduplicated.
    guards: Vec<Guard>,
    /// The original micro sequence (profiling / low fuel / guard miss).
    fallback: Vec<Micro>,
    /// Per-class charge *counts* for the whole chain when every `Bin`
    /// input is real (the only runtime-dependent cost). Cycle costs stay
    /// machine-side, so `charge(class, count)` with these aggregates is
    /// bit-identical to the per-op charge sequence; a complex value or a
    /// mid-chain error deoptimizes to exact per-op accounting.
    real_counts: [u16; OpClass::COUNT],
}

/// A pre-resolved source of one chain op.
#[derive(Clone, Copy)]
enum CSrc {
    Const(Cx),
    /// Environment slot, guarded to hold a scalar at chain entry.
    Env(u32),
    /// Temp stack slot written by an earlier op of the same chain.
    Tmp(u8),
}

/// Shape precondition on one environment slot at chain entry.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Guard {
    Scalar(u32),
    Arr(u32),
}

/// One chain op. `a`/`b`/`c` are the operand slots its kind uses (see the
/// per-kind comments); unused slots hold `CSrc::Const(0)`.
struct ChainOp {
    kind: CKind,
    a: CSrc,
    b: CSrc,
    /// Third operand (only `Store2`'s stored value).
    c: CSrc,
    /// Environment slot to write the result through to, or `u32::MAX`
    /// when the value is never read outside the chain.
    env_dst: u32,
    scalar_dst: bool,
    span: Span,
}

enum CKind {
    /// `dst = a <op> b`.
    Bin {
        op: BinOp,
        class: OpClass,
        evalf: fn(Cx, Cx) -> Cx,
    },
    /// `dst = <op> a`.
    Un(UnOp),
    /// `dst = a`.
    Copy,
    /// `dst = arr(a)`.
    Load1 { arr: u32 },
    /// `dst = arr(a, b)`.
    Load2 { arr: u32 },
    /// `arr(a) = b`.
    Store1 { arr: u32 },
    /// `arr(a, b) = c`.
    Store2 { arr: u32 },
}

/// One pre-compiled subscript axis of a slice micro-op; mirrors
/// [`Index`], with operands still to be read from the environment at run
/// time.
#[derive(Clone, Copy)]
enum AxisSel {
    /// A single scalar position.
    Pos(Operand),
    /// The whole axis (`:`).
    Full,
    /// `start : step : stop`.
    Range {
        start: Operand,
        step: Operand,
        stop: Operand,
    },
}

impl AxisSel {
    fn of(ix: &Index) -> AxisSel {
        match ix {
            Index::Scalar(op) => AxisSel::Pos(*op),
            Index::Full => AxisSel::Full,
            Index::Range { start, step, stop } => AxisSel::Range {
                start: *start,
                step: *step,
                stop: *stop,
            },
        }
    }
}

/// The real-scalar cost class and compute fn for `op`; paired with the
/// generic complex-cost path in `micro_bin_fast`. `AndAnd`/`OrOr` never
/// come through here (they keep the fully generic handler because their
/// scalar application is an error).
fn bin_kit(op: BinOp) -> (OpClass, fn(Cx, Cx) -> Cx) {
    fn b(c: bool) -> Cx {
        Cx::real(if c { 1.0 } else { 0.0 })
    }
    fn truthy(z: Cx) -> bool {
        z.re != 0.0 || z.im != 0.0
    }
    match op {
        BinOp::Add => (OpClass::ScalarAlu, |a, y| a + y),
        BinOp::Sub => (OpClass::ScalarAlu, |a, y| a - y),
        BinOp::ElemMul | BinOp::MatMul => (OpClass::ScalarMul, |a, y| a * y),
        BinOp::ElemDiv | BinOp::MatDiv => (OpClass::ScalarDiv, |a, y| a / y),
        BinOp::ElemLeftDiv | BinOp::MatLeftDiv => (OpClass::ScalarDiv, |a, y| y / a),
        BinOp::ElemPow | BinOp::MatPow => (OpClass::ScalarTrans, |a, y| a.powc(y)),
        BinOp::Eq => (OpClass::ScalarAlu, |a, y| b(a == y)),
        BinOp::Ne => (OpClass::ScalarAlu, |a, y| b(a != y)),
        BinOp::Lt => (OpClass::ScalarAlu, |a, y| b(a.re < y.re)),
        BinOp::Le => (OpClass::ScalarAlu, |a, y| b(a.re <= y.re)),
        BinOp::Gt => (OpClass::ScalarAlu, |a, y| b(a.re > y.re)),
        BinOp::Ge => (OpClass::ScalarAlu, |a, y| b(a.re >= y.re)),
        BinOp::And => (OpClass::ScalarAlu, |a, y| b(truthy(a) && truthy(y))),
        BinOp::Or => (OpClass::ScalarAlu, |a, y| b(truthy(a) || truthy(y))),
        BinOp::AndAnd | BinOp::OrOr => (OpClass::ScalarAlu, |a, _| a),
    }
}

/// Pre-compiles `decoded` for the native engine. Pure function of the
/// program; the result is target-independent and shareable.
pub fn fuse_program(mir: &MirProgram, decoded: &DecodedProgram) -> NativeProgram {
    NativeProgram {
        funcs: decoded
            .funcs
            .iter()
            .zip(&mir.functions)
            .map(|(d, m)| fuse_function(d, m))
            .collect(),
    }
}

/// Whether `inst` may join a fused straight-line block.
fn fusable(inst: &DInst) -> bool {
    matches!(inst, DInst::Def { .. } | DInst::Store { .. })
}

/// For every variable, the list of pcs whose instruction *reads* it
/// (operand use, subscript, load/store/vector base — stores and vector
/// destinations count as reads because they modify the existing value).
/// Drives dead-write elision in chains: a value read only inside its own
/// chain never needs its environment slot written.
fn collect_reads(code: &[DInst], nvars: usize) -> Vec<Vec<u32>> {
    let mut reads: Vec<Vec<u32>> = vec![Vec::new(); nvars];
    let mark = |v: VarId, pc: usize, reads: &mut Vec<Vec<u32>>| {
        if let Some(list) = reads.get_mut(v.0 as usize) {
            list.push(pc as u32);
        }
    };
    fn op_of(o: Operand) -> Option<VarId> {
        o.as_var()
    }
    for (pc, inst) in code.iter().enumerate() {
        let mut ops: Vec<Operand> = Vec::new();
        let mut vars: Vec<VarId> = Vec::new();
        let idx_ops = |ixs: &[Index], ops: &mut Vec<Operand>| {
            for ix in ixs {
                match ix {
                    Index::Scalar(o) => ops.push(*o),
                    Index::Range { start, step, stop } => {
                        ops.extend([*start, *step, *stop]);
                    }
                    Index::Full => {}
                }
            }
        };
        let vecref = |r: &VecRef, ops: &mut Vec<Operand>, vars: &mut Vec<VarId>| match r {
            VecRef::Slice { array, start, step } => {
                vars.push(*array);
                ops.extend([*start, *step]);
            }
            VecRef::Splat(o) => ops.push(*o),
        };
        match inst {
            DInst::Def { rv, .. } => match rv {
                Rvalue::Use(a) => ops.push(*a),
                Rvalue::Unary { a, .. } | Rvalue::Transpose { a, .. } => ops.push(*a),
                Rvalue::Binary { a, b, .. } => ops.extend([*a, *b]),
                Rvalue::Index { array, indices } => {
                    vars.push(*array);
                    idx_ops(indices, &mut ops);
                }
                Rvalue::Range { start, step, stop } => ops.extend([*start, *step, *stop]),
                Rvalue::Alloc { rows, cols, .. } => ops.extend([*rows, *cols]),
                Rvalue::Builtin { args, .. } | Rvalue::Call { args, .. } => {
                    ops.extend(args.iter().copied());
                }
                Rvalue::MatrixLit { rows } => {
                    for row in rows {
                        ops.extend(row.iter().copied());
                    }
                }
                Rvalue::StrLit(_) => {}
            },
            DInst::Store {
                array,
                indices,
                value,
                ..
            } => {
                vars.push(*array);
                idx_ops(indices, &mut ops);
                ops.push(*value);
            }
            DInst::CallMulti { args, .. } | DInst::Effect { args, .. } => {
                ops.extend(args.iter().copied());
            }
            DInst::VectorOp(vop) => {
                vecref(&vop.dst, &mut ops, &mut vars);
                vecref(&vop.a, &mut ops, &mut vars);
                if let Some(b) = &vop.b {
                    vecref(b, &mut ops, &mut vars);
                }
                ops.push(vop.len);
            }
            DInst::Branch { cond, .. } => ops.push(*cond),
            DInst::ForSetup {
                start, step, stop, ..
            } => ops.extend([*start, *step, *stop]),
            DInst::Jump { .. }
            | DInst::ForNext { .. }
            | DInst::WhileEnter { .. }
            | DInst::WhileIter { .. }
            | DInst::Break { .. }
            | DInst::Continue { .. }
            | DInst::Return { .. } => {}
        }
        for o in ops {
            if let Some(v) = op_of(o) {
                mark(v, pc, &mut reads);
            }
        }
        for v in vars {
            mark(v, pc, &mut reads);
        }
    }
    reads
}

fn fuse_function(dfunc: &DecodedFunction, mfunc: &MirFunction) -> NativeFunction {
    let code = &dfunc.code;
    let reads = collect_reads(code, mfunc.vars.len());

    // Jump targets must land on step boundaries, so a fused run may not
    // continue across one (it may *start* at one).
    let mut is_target = vec![false; code.len() + 1];
    for inst in code {
        match inst {
            DInst::Branch { if_false, .. } => is_target[*if_false as usize] = true,
            DInst::Jump { target, .. }
            | DInst::Break { target, .. }
            | DInst::Continue { target, .. } => is_target[*target as usize] = true,
            DInst::ForNext { end, .. } => is_target[*end as usize] = true,
            _ => {}
        }
    }

    // First pass: build steps with *original* branch targets, recording
    // where each original pc landed.
    let mut steps: Vec<NStep> = Vec::new();
    let mut pc_map = vec![0u32; code.len() + 1];
    let mut pc = 0usize;
    while pc < code.len() {
        pc_map[pc] = steps.len() as u32;
        if fusable(&code[pc]) {
            let mut items: Vec<(u32, Micro)> = Vec::new();
            while pc < code.len() && fusable(&code[pc]) {
                pc_map[pc] = steps.len() as u32;
                items.push((pc as u32, make_micro(&code[pc])));
                pc += 1;
                if is_target[pc] {
                    break;
                }
            }
            steps.push(NStep {
                run: step_super,
                data: NData::Super(build_chains(items, &reads, mfunc)),
            });
        } else {
            steps.push(make_step(&code[pc]));
            pc += 1;
        }
    }
    pc_map[code.len()] = steps.len() as u32;

    // Second pass: remap branch targets into step indices.
    for step in &mut steps {
        match &mut step.data {
            NData::Branch { if_false, .. } => *if_false = pc_map[*if_false as usize],
            NData::Jump { target } | NData::Loop { target } => {
                *target = pc_map[*target as usize]
            }
            NData::ForNext { end, .. } => *end = pc_map[*end as usize],
            _ => {}
        }
    }

    NativeFunction { steps }
}

/// Whether `m` may join a scalar chain (`micro_bin`, kept for `&&`/`||`,
/// may not: its scalar application is an error the chain cannot raise).
fn chainable(m: &Micro) -> bool {
    match &m.data {
        MicroData::Bin { op, .. } => !matches!(op, BinOp::AndAnd | BinOp::OrOr),
        MicroData::Copy { .. }
        | MicroData::Un { .. }
        | MicroData::Load1 { .. }
        | MicroData::Load2 { .. }
        | MicroData::Store1 { .. }
        | MicroData::Store2 { .. } => true,
        _ => false,
    }
}

/// Groups maximal runs of chainable micro-ops in one fused block into
/// [`ChainData`] compounds (length ≥ 2); other micros pass through
/// unchanged.
fn build_chains(items: Vec<(u32, Micro)>, reads: &[Vec<u32>], mfunc: &MirFunction) -> Vec<Micro> {
    let (pcs, micros): (Vec<u32>, Vec<Micro>) = items.into_iter().unzip();
    let mut slots: Vec<Option<Micro>> = micros.into_iter().map(Some).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < slots.len() {
        match compile_chain(&slots, &pcs, i, reads, mfunc) {
            Some((ops, guards, consumed)) => {
                let fallback: Vec<Micro> =
                    (i..i + consumed).map(|k| slots[k].take().unwrap()).collect();
                let real_counts = chain_real_counts(&ops);
                out.push(Micro {
                    run: micro_chain,
                    data: MicroData::Chain(Box::new(ChainData {
                        ops,
                        guards,
                        fallback,
                        real_counts,
                    })),
                });
                i += consumed;
            }
            None => {
                out.push(slots[i].take().unwrap());
                i += 1;
            }
        }
    }
    out
}

/// Aggregates the all-real per-class charge counts of a chain; the exact
/// per-op counterpart lives in `chain_charge_real` (sim_native.rs), which
/// the deoptimized paths replay op by op.
fn chain_real_counts(ops: &[ChainOp]) -> [u16; OpClass::COUNT] {
    let mut counts = [0u16; OpClass::COUNT];
    let mut add = |class: OpClass, n: u16| counts[class as usize] += n;
    for op in ops {
        match &op.kind {
            CKind::Bin { class, .. } => add(*class, 1),
            CKind::Un(_) | CKind::Copy => add(OpClass::ScalarAlu, 1),
            CKind::Load1 { .. } => {
                add(OpClass::ScalarAlu, 1);
                add(OpClass::Load, 1);
            }
            CKind::Load2 { .. } => {
                add(OpClass::ScalarAlu, 2);
                add(OpClass::Load, 1);
            }
            CKind::Store1 { .. } => {
                add(OpClass::ScalarAlu, 1);
                add(OpClass::Store, 1);
            }
            CKind::Store2 { .. } => {
                add(OpClass::ScalarAlu, 2);
                add(OpClass::Store, 1);
            }
        }
    }
    counts
}

/// Compiles the longest chain starting at `start`, or `None` when fewer
/// than two micro-ops chain together (a single op gains nothing).
fn compile_chain(
    slots: &[Option<Micro>],
    pcs: &[u32],
    start: usize,
    reads: &[Vec<u32>],
    mfunc: &MirFunction,
) -> Option<(Vec<ChainOp>, Vec<Guard>, usize)> {
    let mut ops: Vec<ChainOp> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    // Vars defined so far in this chain: (var, temp slot, scalar_dst).
    let mut defined: Vec<(u32, u8, bool)> = Vec::new();
    // Def results, for the elision pass: (op index, var, first-def pc).
    let mut defs: Vec<(usize, u32, u32)> = Vec::new();
    let mut j = start;
    while j < slots.len() && ops.len() < CHAIN_MAX {
        let m = slots[j].as_ref().unwrap();
        if !chainable(m) {
            break;
        }
        // Resolve sources against a scratch guard list so a failed op
        // leaves no spurious guards behind.
        let mut new_guards: Vec<Guard> = Vec::new();
        let mut add_guard = |g: Guard, new_guards: &mut Vec<Guard>| {
            if !guards.contains(&g) && !new_guards.contains(&g) {
                new_guards.push(g);
            }
        };
        let src = |o: Operand,
                   new_guards: &mut Vec<Guard>,
                   add_guard: &mut dyn FnMut(Guard, &mut Vec<Guard>)|
         -> Option<CSrc> {
            match o {
                Operand::Const(v) => Some(CSrc::Const(Cx::real(v))),
                Operand::ConstC(re, im) => Some(CSrc::Const(Cx::new(re, im))),
                Operand::Var(v) => {
                    if let Some(&(_, t, sd)) = defined.iter().find(|d| d.0 == v.0) {
                        // Reads of a non-scalar in-chain def would see a
                        // 1×1 array and take a different charge path;
                        // stop the chain before this op.
                        sd.then_some(CSrc::Tmp(t))
                    } else {
                        add_guard(Guard::Scalar(v.0), new_guards);
                        Some(CSrc::Env(v.0))
                    }
                }
            }
        };
        let base = |arr: VarId,
                    new_guards: &mut Vec<Guard>,
                    add_guard: &mut dyn FnMut(Guard, &mut Vec<Guard>)|
         -> Option<u32> {
            // A base redefined earlier in the chain holds a scalar write;
            // the micro would fall back anyway — stop before this op.
            if defined.iter().any(|d| d.0 == arr.0) {
                return None;
            }
            add_guard(Guard::Arr(arr.0), new_guards);
            Some(arr.0)
        };
        let zero = CSrc::Const(Cx::ZERO);
        // (kind, a, b, c, def as (var, scalar_dst), span) for one resolved op.
        type Compiled = Option<(CKind, CSrc, CSrc, CSrc, Option<(VarId, bool)>, Span)>;
        let compiled: Compiled =
            match &m.data {
                MicroData::Bin {
                    op,
                    class,
                    evalf,
                    a,
                    b,
                    dst,
                    scalar_dst,
                    span,
                } => (|| {
                    let sa = src(*a, &mut new_guards, &mut add_guard)?;
                    let sb = src(*b, &mut new_guards, &mut add_guard)?;
                    Some((
                        CKind::Bin {
                            op: *op,
                            class: *class,
                            evalf: *evalf,
                        },
                        sa,
                        sb,
                        zero,
                        Some((*dst, *scalar_dst)),
                        *span,
                    ))
                })(),
                MicroData::Copy {
                    a,
                    dst,
                    scalar_dst,
                    span,
                } => src(*a, &mut new_guards, &mut add_guard).map(|sa| {
                    (CKind::Copy, sa, zero, zero, Some((*dst, *scalar_dst)), *span)
                }),
                MicroData::Un {
                    op,
                    a,
                    dst,
                    scalar_dst,
                    span,
                } => src(*a, &mut new_guards, &mut add_guard).map(|sa| {
                    (
                        CKind::Un(*op),
                        sa,
                        zero,
                        zero,
                        Some((*dst, *scalar_dst)),
                        *span,
                    )
                }),
                MicroData::Load1 {
                    arr,
                    idx,
                    dst,
                    scalar_dst,
                    span,
                } => (|| {
                    let b = base(*arr, &mut new_guards, &mut add_guard)?;
                    let si = src(*idx, &mut new_guards, &mut add_guard)?;
                    Some((
                        CKind::Load1 { arr: b },
                        si,
                        zero,
                        zero,
                        Some((*dst, *scalar_dst)),
                        *span,
                    ))
                })(),
                MicroData::Load2 {
                    arr,
                    r,
                    c,
                    dst,
                    scalar_dst,
                    span,
                } => (|| {
                    let bb = base(*arr, &mut new_guards, &mut add_guard)?;
                    let sr = src(*r, &mut new_guards, &mut add_guard)?;
                    let sc = src(*c, &mut new_guards, &mut add_guard)?;
                    Some((
                        CKind::Load2 { arr: bb },
                        sr,
                        sc,
                        zero,
                        Some((*dst, *scalar_dst)),
                        *span,
                    ))
                })(),
                MicroData::Store1 {
                    arr,
                    idx,
                    value,
                    span,
                } => (|| {
                    let bb = base(*arr, &mut new_guards, &mut add_guard)?;
                    let si = src(*idx, &mut new_guards, &mut add_guard)?;
                    let sv = src(*value, &mut new_guards, &mut add_guard)?;
                    Some((CKind::Store1 { arr: bb }, si, sv, zero, None, *span))
                })(),
                MicroData::Store2 {
                    arr,
                    r,
                    c,
                    value,
                    span,
                } => (|| {
                    let bb = base(*arr, &mut new_guards, &mut add_guard)?;
                    let sr = src(*r, &mut new_guards, &mut add_guard)?;
                    let sc = src(*c, &mut new_guards, &mut add_guard)?;
                    let sv = src(*value, &mut new_guards, &mut add_guard)?;
                    Some((CKind::Store2 { arr: bb }, sr, sc, sv, None, *span))
                })(),
                _ => unreachable!("non-chainable micro"),
            };
        let Some((kind, a, b, c, def, span)) = compiled else {
            break;
        };
        guards.extend(new_guards);
        let op_idx = ops.len();
        if let Some((dst, scalar_dst)) = def {
            defined.retain(|d| d.0 != dst.0);
            defined.push((dst.0, op_idx as u8, scalar_dst));
            if !defs.iter().any(|d| d.1 == dst.0) {
                defs.push((op_idx, dst.0, pcs[j]));
            } else {
                defs.push((op_idx, dst.0, u32::MAX)); // later def; first-def pc already recorded
            }
        }
        ops.push(ChainOp {
            kind,
            a,
            b,
            c,
            env_dst: def.map_or(u32::MAX, |(d, _)| d.0),
            scalar_dst: def.is_some_and(|(_, sd)| sd),
            span,
        });
        j += 1;
    }
    let consumed = j - start;
    if consumed < 2 {
        return None;
    }
    // Elision pass: a def's environment write is dead when the value can
    // only ever be observed through this chain's temp stack — every read
    // of the var lies inside the chain's pc range *strictly after* its
    // first in-chain def (a read at or before that pc — including the
    // def's own right-hand side — reads the environment and must keep
    // seeing the carried value), and the var is not a function output.
    let (pc_lo, pc_hi) = (pcs[start], pcs[start + consumed - 1]);
    let first_def_pc = |var: u32| -> u32 {
        defs.iter()
            .find(|d| d.1 == var && d.2 != u32::MAX)
            .map_or(u32::MAX, |d| d.2)
    };
    for &(op_idx, var, _) in &defs {
        let fd = first_def_pc(var);
        let dead = fd != u32::MAX
            && !mfunc.outputs.iter().any(|o| o.0 == var)
            && reads
                .get(var as usize)
                .is_some_and(|list| list.iter().all(|&p| p > fd && p >= pc_lo && p <= pc_hi));
        if dead {
            ops[op_idx].env_dst = u32::MAX;
        }
    }
    Some((ops, guards, consumed))
}

/// Lowers one fusable `DInst` to a micro-op, pre-selecting the most
/// specialized handler whose preconditions the *instruction shape* meets;
/// runtime value shapes are re-checked in the handler.
fn make_micro(inst: &DInst) -> Micro {
    match inst {
        DInst::Def {
            dst,
            scalar_dst,
            rv,
            span,
        } => {
            let (dst, scalar_dst, span) = (*dst, *scalar_dst, *span);
            match rv {
                Rvalue::Binary { op, a, b } => {
                    let (class, evalf) = bin_kit(*op);
                    Micro {
                        // Short-circuit ops error on scalars; keep the
                        // generic handler for its exact error path.
                        run: if matches!(op, BinOp::AndAnd | BinOp::OrOr) {
                            micro_bin
                        } else {
                            micro_bin_fast
                        },
                        data: MicroData::Bin {
                            op: *op,
                            class,
                            evalf,
                            a: *a,
                            b: *b,
                            dst,
                            scalar_dst,
                            span,
                        },
                    }
                }
                Rvalue::Use(a) => Micro {
                    run: micro_copy,
                    data: MicroData::Copy {
                        a: *a,
                        dst,
                        scalar_dst,
                        span,
                    },
                },
                Rvalue::Unary { op, a } => Micro {
                    run: micro_un,
                    data: MicroData::Un {
                        op: *op,
                        a: *a,
                        dst,
                        scalar_dst,
                        span,
                    },
                },
                Rvalue::Index { array, indices } => match indices.as_slice() {
                    [Index::Scalar(idx)] => Micro {
                        run: micro_load1,
                        data: MicroData::Load1 {
                            arr: *array,
                            idx: *idx,
                            dst,
                            scalar_dst,
                            span,
                        },
                    },
                    [Index::Scalar(r), Index::Scalar(c)] => Micro {
                        run: micro_load2,
                        data: MicroData::Load2 {
                            arr: *array,
                            r: *r,
                            c: *c,
                            dst,
                            scalar_dst,
                            span,
                        },
                    },
                    [ix @ (Index::Full | Index::Range { .. })] => Micro {
                        run: micro_slice_load_lin,
                        data: MicroData::SliceLoadLin {
                            arr: *array,
                            sel: AxisSel::of(ix),
                            dst,
                            scalar_dst,
                            span,
                        },
                    },
                    [ri, ci] => Micro {
                        run: micro_slice_load_2d,
                        data: MicroData::SliceLoad2 {
                            arr: *array,
                            rsel: AxisSel::of(ri),
                            csel: AxisSel::of(ci),
                            dst,
                            scalar_dst,
                            span,
                        },
                    },
                    _ => Micro {
                        run: micro_def_generic,
                        data: MicroData::Def {
                            dst,
                            scalar_dst,
                            rv: rv.clone(),
                            span,
                        },
                    },
                },
                _ => Micro {
                    run: micro_def_generic,
                    data: MicroData::Def {
                        dst,
                        scalar_dst,
                        rv: rv.clone(),
                        span,
                    },
                },
            }
        }
        DInst::Store {
            array,
            indices,
            value,
            span,
        } => match indices.as_slice() {
            [Index::Scalar(idx)] => Micro {
                run: micro_store1,
                data: MicroData::Store1 {
                    arr: *array,
                    idx: *idx,
                    value: *value,
                    span: *span,
                },
            },
            [Index::Scalar(r), Index::Scalar(c)] => Micro {
                run: micro_store2,
                data: MicroData::Store2 {
                    arr: *array,
                    r: *r,
                    c: *c,
                    value: *value,
                    span: *span,
                },
            },
            [ix @ (Index::Full | Index::Range { .. })] => Micro {
                run: micro_slice_store_lin,
                data: MicroData::SliceStoreLin {
                    arr: *array,
                    sel: AxisSel::of(ix),
                    value: *value,
                    span: *span,
                },
            },
            [ri, ci] => Micro {
                run: micro_slice_store_2d,
                data: MicroData::SliceStore2 {
                    arr: *array,
                    rsel: AxisSel::of(ri),
                    csel: AxisSel::of(ci),
                    value: *value,
                    span: *span,
                },
            },
            _ => Micro {
                run: micro_store_generic,
                data: MicroData::Store {
                    array: *array,
                    indices: indices.clone(),
                    value: *value,
                    span: *span,
                },
            },
        },
        _ => unreachable!("non-fusable instruction in fused run"),
    }
}

/// Lowers one non-fusable `DInst` to a step, baking flags (like a branch's
/// fuel burn) into the handler choice.
fn make_step(inst: &DInst) -> NStep {
    match inst {
        DInst::Branch {
            cond,
            if_false,
            burn,
            exit_loop,
            span,
        } => NStep {
            run: if *burn {
                step_branch_burning
            } else {
                step_branch
            },
            data: NData::Branch {
                cond: *cond,
                if_false: *if_false,
                exit_loop: *exit_loop,
                span: *span,
            },
        },
        DInst::Jump { target, .. } => NStep {
            run: step_jump,
            data: NData::Jump { target: *target },
        },
        DInst::ForSetup {
            var,
            start,
            step,
            stop,
            ..
        } => NStep {
            run: step_for_setup,
            data: NData::ForSetup {
                var: *var,
                start: *start,
                step: *step,
                stop: *stop,
            },
        },
        DInst::ForNext { end, span } => NStep {
            run: step_for_next,
            data: NData::ForNext {
                end: *end,
                span: *span,
            },
        },
        DInst::WhileEnter { .. } => NStep {
            run: step_while_enter,
            data: NData::None,
        },
        DInst::WhileIter { .. } => NStep {
            run: step_while_iter,
            data: NData::None,
        },
        DInst::Break { target, .. } => NStep {
            run: step_break,
            data: NData::Loop { target: *target },
        },
        DInst::Continue { target, .. } => NStep {
            run: step_continue,
            data: NData::Loop { target: *target },
        },
        DInst::Return { .. } => NStep {
            run: step_return,
            data: NData::None,
        },
        DInst::CallMulti {
            dsts,
            func,
            args,
            user,
            span,
        } => NStep {
            run: step_call_multi,
            data: NData::CallMulti {
                dsts: dsts.clone(),
                func: func.clone(),
                args: args.clone(),
                user: *user,
                span: *span,
            },
        },
        DInst::Effect { name, args, span } => NStep {
            run: step_effect,
            data: NData::Effect {
                name: name.clone(),
                args: args.clone(),
                span: *span,
            },
        },
        DInst::VectorOp(vop) => NStep {
            run: step_vector,
            data: NData::Vector(vop.clone()),
        },
        DInst::Def { .. } | DInst::Store { .. } => {
            unreachable!("fusable instruction outside a fused run")
        }
    }
}
