// Builtin evaluation and vector-operation execution — included from sim.rs.

impl<'a> Exec<'a> {
    fn eval_builtin(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        _dst: VarId,
        name: &str,
        args: &[Operand],
        span: Span,
    ) -> Result<SimVal, SimError> {
        // Constants.
        match name {
            "pi" => return Ok(SimVal::scalar(std::f64::consts::PI)),
            "eps" => return Ok(SimVal::scalar(f64::EPSILON)),
            "Inf" | "inf" => return Ok(SimVal::scalar(f64::INFINITY)),
            "NaN" | "nan" => return Ok(SimVal::scalar(f64::NAN)),
            "i" | "j" => return Ok(SimVal::Scalar(Cx::I)),
            _ => {}
        }
        let first = args
            .first()
            .map(|a| self.operand(f, env, *a, span))
            .transpose()?;

        // Shape queries are register/ALU work.
        match name {
            "numel" | "length" | "size" | "isempty" => {
                self.charge(OpClass::ScalarAlu, 1);
                let m = first
                    .ok_or_else(|| SimError::new(format!("{name}: missing argument"), span))?
                    .into_matrix();
                let v = match name {
                    "numel" => m.numel() as f64,
                    "length" => m.length() as f64,
                    "isempty" => {
                        if m.is_empty() {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    "size" => {
                        let d = self.real_of(f, env, args[1], span)? as i64;
                        match d {
                            1 => m.rows() as f64,
                            2 => m.cols() as f64,
                            _ => 1.0,
                        }
                    }
                    _ => unreachable!(),
                };
                return Ok(SimVal::scalar(v));
            }
            _ => {}
        }

        let scalar_args = args.len() <= 2
            && args
                .iter()
                .all(|a| matches!(self.operand(f, env, *a, span), Ok(SimVal::Scalar(_))));

        if scalar_args {
            // Scalar math.
            let x = self.scalar_of(f, env, args[0], span)?;
            let cost = |exec: &mut Self, class: OpClass| exec.charge(class, 1);
            let v: Cx = match name {
                "abs" => {
                    cost(self, OpClass::ScalarAlu);
                    Cx::real(x.abs())
                }
                "sqrt" => {
                    cost(self, OpClass::ScalarSqrt);
                    x.sqrt()
                }
                "exp" => {
                    cost(self, OpClass::ScalarTrans);
                    x.exp()
                }
                "log" => {
                    cost(self, OpClass::ScalarTrans);
                    if x.is_real() && x.re > 0.0 {
                        Cx::real(x.re.ln())
                    } else {
                        x.ln()
                    }
                }
                "log2" => {
                    cost(self, OpClass::ScalarTrans);
                    Cx::real(x.re.log2())
                }
                "log10" => {
                    cost(self, OpClass::ScalarTrans);
                    Cx::real(x.re.log10())
                }
                "sin" => {
                    cost(self, OpClass::ScalarTrans);
                    Cx::real(x.re.sin())
                }
                "cos" => {
                    cost(self, OpClass::ScalarTrans);
                    Cx::real(x.re.cos())
                }
                "tan" => {
                    cost(self, OpClass::ScalarTrans);
                    Cx::real(x.re.tan())
                }
                "asin" => {
                    cost(self, OpClass::ScalarTrans);
                    Cx::real(x.re.asin())
                }
                "acos" => {
                    cost(self, OpClass::ScalarTrans);
                    Cx::real(x.re.acos())
                }
                "atan" => {
                    cost(self, OpClass::ScalarTrans);
                    Cx::real(x.re.atan())
                }
                "atan2" => {
                    cost(self, OpClass::ScalarTrans);
                    let y = self.scalar_of(f, env, args[1], span)?;
                    Cx::real(x.re.atan2(y.re))
                }
                "floor" => {
                    cost(self, OpClass::ScalarAlu);
                    Cx::real(x.re.floor())
                }
                "ceil" => {
                    cost(self, OpClass::ScalarAlu);
                    Cx::real(x.re.ceil())
                }
                "round" => {
                    cost(self, OpClass::ScalarAlu);
                    Cx::real(x.re.round())
                }
                "fix" => {
                    cost(self, OpClass::ScalarAlu);
                    Cx::real(x.re.trunc())
                }
                "sign" => {
                    cost(self, OpClass::ScalarAlu);
                    Cx::real(if x.re > 0.0 {
                        1.0
                    } else if x.re < 0.0 {
                        -1.0
                    } else {
                        0.0
                    })
                }
                "mod" => {
                    self.charge(OpClass::ScalarDiv, 1);
                    let y = self.scalar_of(f, env, args[1], span)?;
                    if y.re == 0.0 {
                        Cx::real(x.re)
                    } else {
                        Cx::real(x.re - (x.re / y.re).floor() * y.re)
                    }
                }
                "rem" => {
                    self.charge(OpClass::ScalarDiv, 1);
                    let y = self.scalar_of(f, env, args[1], span)?;
                    if y.re == 0.0 {
                        Cx::real(f64::NAN)
                    } else {
                        Cx::real(x.re - (x.re / y.re).trunc() * y.re)
                    }
                }
                "real" => {
                    cost(self, OpClass::ScalarAlu);
                    Cx::real(x.re)
                }
                "imag" => {
                    cost(self, OpClass::ScalarAlu);
                    Cx::real(x.im)
                }
                "conj" => {
                    if self.machine.use_intrinsics && self.supports(OpClass::ComplexConj)
                    {
                        self.charge(OpClass::ComplexConj, 1);
                    } else {
                        self.charge(OpClass::ScalarAlu, 1);
                    }
                    x.conj()
                }
                "angle" => {
                    cost(self, OpClass::ScalarTrans);
                    Cx::real(x.arg())
                }
                "min" | "max" if args.len() >= 2 => {
                    cost(self, OpClass::ScalarAlu);
                    let y = self.scalar_of(f, env, args[1], span)?;
                    let better = if name == "min" {
                        x.re < y.re
                    } else {
                        x.re > y.re
                    };
                    if better {
                        x
                    } else {
                        y
                    }
                }
                "min" | "max" | "sum" | "prod" | "mean" => {
                    cost(self, OpClass::ScalarAlu);
                    x
                }
                "norm" => {
                    cost(self, OpClass::ScalarAlu);
                    Cx::real(x.abs())
                }
                "complex" => {
                    cost(self, OpClass::ScalarAlu);
                    let y = self.scalar_of(f, env, args[1], span)?;
                    Cx::new(x.re, y.re)
                }
                "isreal" => Cx::real(if x.is_real() { 1.0 } else { 0.0 }),
                "isscalar" => Cx::real(1.0),
                other => {
                    return Err(SimError::new(
                        format!("scalar builtin `{other}` unsupported in simulation"),
                        span,
                    ))
                }
            };
            return Ok(SimVal::Scalar(v));
        }

        // Array builtins.
        let m = first
            .ok_or_else(|| SimError::new(format!("{name}: missing argument"), span))?
            .into_matrix();
        let n = m.numel() as u64;
        match name {
            "sum" | "mean" => {
                self.charge(OpClass::Load, n);
                self.charge(OpClass::Branch, n);
                if m.is_real() {
                    self.charge(OpClass::ScalarAlu, n);
                } else {
                    self.cx_add_cost(n);
                }
                let mut acc = Cx::ZERO;
                for z in m.data() {
                    acc = acc + *z;
                }
                if name == "mean" {
                    self.charge(OpClass::ScalarDiv, 1);
                    acc = acc / Cx::real(m.numel() as f64);
                }
                Ok(SimVal::Scalar(acc))
            }
            "prod" => {
                self.charge(OpClass::Load, n);
                self.charge(OpClass::Branch, n);
                if m.is_real() {
                    self.charge(OpClass::ScalarMul, n);
                } else {
                    self.cx_mul_cost(n);
                }
                let mut acc = Cx::ONE;
                for z in m.data() {
                    acc = acc * *z;
                }
                Ok(SimVal::Scalar(acc))
            }
            "min" | "max" => {
                self.charge(OpClass::Load, n);
                self.charge(OpClass::ScalarAlu, n);
                self.charge(OpClass::Branch, n);
                if m.is_empty() {
                    return Err(SimError::new("min/max of empty array", span));
                }
                let better = |a: f64, b: f64| if name == "min" { a < b } else { a > b };
                let mut best = m.lin(0).re;
                for k in 1..m.numel() {
                    if better(m.lin(k).re, best) {
                        best = m.lin(k).re;
                    }
                }
                Ok(SimVal::scalar(best))
            }
            "dot" => {
                let mb = self.operand(f, env, args[1], span)?.into_matrix();
                if mb.numel() != m.numel() {
                    return Err(SimError::new("dot length mismatch", span));
                }
                self.charge(OpClass::Load, 2 * n);
                self.charge(OpClass::Branch, n);
                let complex = !m.is_real() || !mb.is_real();
                if complex {
                    self.cx_mac_cost(n);
                } else {
                    self.charge(OpClass::ScalarMul, n);
                    self.charge(OpClass::ScalarAlu, n);
                }
                let mut acc = Cx::ZERO;
                for (a, b) in m.data().iter().zip(mb.data()) {
                    acc = acc + a.conj() * *b;
                }
                Ok(SimVal::Scalar(acc))
            }
            "norm" => {
                self.charge(OpClass::Load, n);
                self.charge(OpClass::ScalarMul, 2 * n);
                self.charge(OpClass::ScalarAlu, n);
                self.charge(OpClass::Branch, n);
                self.charge(OpClass::ScalarSqrt, 1);
                let s: f64 = m.data().iter().map(|z| z.abs() * z.abs()).sum();
                Ok(SimVal::scalar(s.sqrt()))
            }
            "abs" | "sqrt" | "exp" | "log" | "sin" | "cos" | "floor" | "ceil" | "round"
            | "fix" | "sign" | "real" | "imag" | "conj" | "angle" => {
                self.charge(OpClass::Load, n);
                self.charge(OpClass::Store, n);
                self.charge(OpClass::Branch, n);
                match name {
                    "sqrt" => self.charge(OpClass::ScalarSqrt, n),
                    "exp" | "log" | "sin" | "cos" | "angle" => {
                        self.charge(OpClass::ScalarTrans, n)
                    }
                    "conj" => {
                        if self.machine.use_intrinsics
                            && self.supports(OpClass::ComplexConj)
                        {
                            self.charge(OpClass::ComplexConj, n);
                        } else {
                            self.charge(OpClass::ScalarAlu, n);
                        }
                    }
                    _ => self.charge(OpClass::ScalarAlu, n),
                }
                let out = m.map(|z| match name {
                    "abs" => Cx::real(z.abs()),
                    "sqrt" => z.sqrt(),
                    "exp" => z.exp(),
                    "log" => {
                        if z.is_real() && z.re > 0.0 {
                            Cx::real(z.re.ln())
                        } else {
                            z.ln()
                        }
                    }
                    "sin" => Cx::real(z.re.sin()),
                    "cos" => Cx::real(z.re.cos()),
                    "floor" => Cx::real(z.re.floor()),
                    "ceil" => Cx::real(z.re.ceil()),
                    "round" => Cx::real(z.re.round()),
                    "fix" => Cx::real(z.re.trunc()),
                    "sign" => Cx::real(if z.re > 0.0 {
                        1.0
                    } else if z.re < 0.0 {
                        -1.0
                    } else {
                        0.0
                    }),
                    "real" => Cx::real(z.re),
                    "imag" => Cx::real(z.im),
                    "conj" => z.conj(),
                    "angle" => Cx::real(z.arg()),
                    _ => unreachable!(),
                });
                Ok(SimVal::Arr(out))
            }
            "linspace" => {
                let a = self.real_of(f, env, args[0], span)?;
                let b = self.real_of(f, env, args[1], span)?;
                let count = if args.len() > 2 {
                    self.real_of(f, env, args[2], span)? as usize
                } else {
                    100
                };
                self.charge(OpClass::ScalarAlu, count as u64);
                self.charge(OpClass::Store, count as u64);
                let mut data = Vec::with_capacity(count);
                for k in 0..count {
                    let v = if count == 1 {
                        b
                    } else {
                        a + (b - a) * k as f64 / (count - 1) as f64
                    };
                    data.push(Cx::real(v));
                }
                Ok(SimVal::Arr(Matrix::new(1, count, data)))
            }
            "complex" => {
                let mb = self.operand(f, env, args[1], span)?.into_matrix();
                self.charge(OpClass::Load, 2 * n);
                self.charge(OpClass::Store, n);
                let out = m
                    .zip(&mb, |a, b| Cx::new(a.re, b.re))
                    .map_err(|e| SimError::new(e, span))?;
                Ok(SimVal::Arr(out))
            }
            other => Err(SimError::new(
                format!("array builtin `{other}` unsupported in simulation"),
                span,
            )),
        }
    }

    // ---- vector operations --------------------------------------------------

    fn read_lanes(
        &mut self,
        f: &MirFunction,
        env: &Env,
        r: &VecRef,
        len: usize,
        span: Span,
    ) -> Result<Vec<Cx>, SimError> {
        match r {
            VecRef::Splat(op) => {
                let z = self.scalar_of(f, env, *op, span)?;
                Ok(vec![z; len])
            }
            VecRef::Slice { array, start, step } => {
                let base = self.get(f, env, *array, span)?.into_matrix();
                let s = self.real_of(f, env, *start, span)? as i64 - 1;
                let st = self.real_of(f, env, *step, span)? as i64;
                let mut out = Vec::with_capacity(len);
                for k in 0..len as i64 {
                    let p = s + st * k;
                    let z = *base
                        .data()
                        .get(p.max(0) as usize)
                        .filter(|_| p >= 0)
                        .ok_or_else(|| {
                            SimError::new(
                                format!("vector lane {} out of bounds", p + 1),
                                span,
                            )
                        })?;
                    out.push(z);
                }
                Ok(out)
            }
        }
    }

    fn write_lanes(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        r: &VecRef,
        values: &[Cx],
        span: Span,
    ) -> Result<(), SimError> {
        let VecRef::Slice { array, start, step } = r else {
            return Err(SimError::new("vector store needs a slice", span));
        };
        // Take (not clone) the destination: lane writes go through
        // `data_mut`, and a cloned handle would pay a full copy-on-write
        // duplication per vector op. `start`/`step` are scalar operands,
        // never the destination array itself.
        let mut base = self.take_val(f, env, *array, span)?.into_matrix();
        let s = self.real_of(f, env, *start, span)? as i64 - 1;
        let st = self.real_of(f, env, *step, span)? as i64;
        for (k, z) in values.iter().enumerate() {
            let p = s + st * k as i64;
            let total = base.numel();
            let slot = base
                .data_mut()
                .get_mut(p.max(0) as usize)
                .filter(|_| p >= 0)
                .ok_or_else(|| {
                    SimError::new(
                        format!("vector store lane {} out of bounds ({total})", p + 1),
                        span,
                    )
                })?;
            *slot = *z;
        }
        self.set(env, *array, SimVal::Arr(base));
        Ok(())
    }

    /// Charges the cost of one vector operation under the target's
    /// capabilities, mirroring the C backend's intrinsic-vs-fallback
    /// decision. Returns nothing; semantics are computed separately.
    fn charge_vector_op(&mut self, vop: &VectorOp, len: u64, inputs: u64, has_store: bool) {
        let w = self.spec().vector_width.max(1) as u64;
        let simd_ok = self.machine.use_intrinsics && self.spec().features.simd && w > 1;
        let class = match (&vop.kind, vop.complex) {
            (VecKind::Map(BinOp::ElemMul | BinOp::MatMul), false) => OpClass::VectorMul,
            (VecKind::Map(BinOp::ElemDiv | BinOp::MatDiv), false) => OpClass::VectorDiv,
            (VecKind::Map(_), false) => OpClass::VectorAlu,
            (VecKind::Map(BinOp::ElemMul | BinOp::MatMul), true) => OpClass::VComplexMul,
            (VecKind::Map(_), true) => OpClass::VComplexAdd,
            (VecKind::MapUnary(_), false) => OpClass::VectorAlu,
            (VecKind::MapUnary(_), true) => OpClass::VComplexAdd,
            (VecKind::MapBuiltin(n), _) if n == "sqrt" => OpClass::VectorDiv,
            (VecKind::MapBuiltin(_), false) => OpClass::VectorAlu,
            (VecKind::MapBuiltin(_), true) => OpClass::VComplexAdd,
            (VecKind::Mac, false) => OpClass::VectorMac,
            (VecKind::Mac, true) => OpClass::VComplexMac,
            (VecKind::Reduce(_), false) => OpClass::VectorRedAdd,
            (VecKind::Reduce(_), true) => OpClass::VectorRedAdd,
            (VecKind::Copy, _) => OpClass::VectorLoad,
        };
        if simd_ok && self.supports(class) {
            // Whole SIMD words per issue, plus vector load/store traffic.
            let words = len.div_ceil(w);
            self.note_lanes(len, words * w);
            self.charge(OpClass::VectorLoad, words * inputs);
            self.charge(class, words);
            if has_store {
                self.charge(OpClass::VectorStore, words);
            }
            self.charge(OpClass::Branch, words);
            return;
        }
        // Scalar-expansion (or complex-instruction) loop.
        self.charge(OpClass::Load, len * inputs);
        self.charge(OpClass::Branch, len);
        if has_store {
            self.charge(OpClass::Store, len);
        }
        match (&vop.kind, vop.complex) {
            (VecKind::Map(BinOp::ElemMul | BinOp::MatMul), true) => self.cx_mul_cost(len),
            (VecKind::Map(BinOp::ElemDiv | BinOp::MatDiv), true) => self.cx_div_cost(len),
            (VecKind::Map(_), true) => self.cx_add_cost(len),
            (VecKind::Map(BinOp::ElemMul | BinOp::MatMul), false) => {
                self.charge(OpClass::ScalarMul, len)
            }
            (VecKind::Map(BinOp::ElemDiv | BinOp::MatDiv), false) => {
                self.charge(OpClass::ScalarDiv, len)
            }
            (VecKind::Map(_), false) => self.charge(OpClass::ScalarAlu, len),
            (VecKind::MapUnary(_), true) => self.cx_add_cost(len),
            (VecKind::MapUnary(_), false) => self.charge(OpClass::ScalarAlu, len),
            (VecKind::MapBuiltin(n), _) if n == "sqrt" => {
                self.charge(OpClass::ScalarSqrt, len)
            }
            (VecKind::MapBuiltin(n), true) if n == "conj" => {
                if self.machine.use_intrinsics && self.supports(OpClass::ComplexConj) {
                    self.charge(OpClass::ComplexConj, len);
                } else {
                    self.charge(OpClass::ScalarAlu, len);
                }
            }
            (VecKind::MapBuiltin(_), _) => self.charge(OpClass::ScalarAlu, len),
            (VecKind::Mac, true) => self.cx_mac_cost(len),
            (VecKind::Mac, false) => {
                self.charge(OpClass::ScalarMul, len);
                self.charge(OpClass::ScalarAlu, len);
            }
            (VecKind::Reduce(ReduceKind::Prod), true) => self.cx_mul_cost(len),
            (VecKind::Reduce(ReduceKind::Prod), false) => {
                self.charge(OpClass::ScalarMul, len)
            }
            (VecKind::Reduce(_), true) => self.cx_add_cost(len),
            (VecKind::Reduce(_), false) => self.charge(OpClass::ScalarAlu, len),
            (VecKind::Copy, _) => {}
        }
    }

    fn exec_vector_op(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        vop: &VectorOp,
    ) -> Result<(), SimError> {
        let span = vop.span;
        let len_f = self.real_of(f, env, vop.len, span)?;
        let len = if len_f > 0.0 { len_f as usize } else { 0 };
        let inputs = 1 + u64::from(vop.b.is_some());
        let is_store = !matches!(vop.kind, VecKind::Mac | VecKind::Reduce(_));
        self.charge_vector_op(vop, len as u64, inputs, is_store);
        if len == 0 {
            return Ok(());
        }
        self.vector_op_lanes(f, env, vop, len)
    }

    /// Lane semantics of one vector op, with charges already applied (the
    /// native engine calls this directly when its allocation-free fast
    /// path does not apply).
    fn vector_op_lanes(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        vop: &VectorOp,
        len: usize,
    ) -> Result<(), SimError> {
        let span = vop.span;
        let a = self.read_lanes(f, env, &vop.a, len, span)?;
        let b = match &vop.b {
            Some(r) => Some(self.read_lanes(f, env, r, len, span)?),
            None => None,
        };

        match &vop.kind {
            VecKind::Mac | VecKind::Reduce(_) => {
                let VecRef::Splat(Operand::Var(acc_var)) = vop.dst else {
                    return Err(SimError::new(
                        "reduction destination must be a register",
                        span,
                    ));
                };
                let mut acc = self
                    .get(f, env, acc_var, span)?
                    .as_cx()
                    .map_err(|m| SimError::new(m, span))?;
                match &vop.kind {
                    VecKind::Mac => {
                        let b = b.as_ref().expect("MAC has two inputs");
                        for k in 0..len {
                            acc = acc + a[k] * b[k];
                        }
                    }
                    VecKind::Reduce(ReduceKind::Sum) => {
                        for z in &a {
                            acc = acc + *z;
                        }
                    }
                    VecKind::Reduce(ReduceKind::Prod) => {
                        for z in &a {
                            acc = acc * *z;
                        }
                    }
                    VecKind::Reduce(ReduceKind::Min) => {
                        for z in &a {
                            if z.re < acc.re {
                                acc = *z;
                            }
                        }
                    }
                    VecKind::Reduce(ReduceKind::Max) => {
                        for z in &a {
                            if z.re > acc.re {
                                acc = *z;
                            }
                        }
                    }
                    _ => unreachable!(),
                }
                self.set(env, acc_var, SimVal::Scalar(acc));
                Ok(())
            }
            kind => {
                let out: Vec<Cx> = match kind {
                    VecKind::Map(op) => {
                        let b = b.as_ref().expect("binary map has two inputs");
                        let mut out = Vec::with_capacity(len);
                        for k in 0..len {
                            let z = apply_binop_scalar(*op, a[k], b[k])
                                .map_err(|m| SimError::new(m, span))?;
                            out.push(z);
                        }
                        out
                    }
                    VecKind::MapUnary(op) => a.iter().map(|&z| apply_unop(*op, z)).collect(),
                    VecKind::MapBuiltin(name) => {
                        let mut out = Vec::with_capacity(len);
                        for &z in &a {
                            out.push(match name.as_str() {
                                "abs" => Cx::real(z.abs()),
                                "conj" => z.conj(),
                                "sqrt" => z.sqrt(),
                                "real" => Cx::real(z.re),
                                "imag" => Cx::real(z.im),
                                "floor" => Cx::real(z.re.floor()),
                                "ceil" => Cx::real(z.re.ceil()),
                                "round" => Cx::real(z.re.round()),
                                other => {
                                    return Err(SimError::new(
                                        format!("lane builtin `{other}`"),
                                        span,
                                    ))
                                }
                            });
                        }
                        out
                    }
                    VecKind::Copy => a,
                    _ => unreachable!(),
                };
                self.write_lanes(f, env, &vop.dst, &out, span)
            }
        }
    }
}
