// The pre-decoded linear execution engine — included from sim.rs.
//
// Runs a `DecodedFunction`'s flat instruction stream with an explicit
// program counter and a stack of loop frames, instead of recursing over
// structured `Stmt` trees. Fuel burns and cycle charges are sequenced
// exactly as the tree walker's `exec_stmt` would produce them; the
// differential tests pin this bit-for-bit.

/// Runtime state of one active loop in a decoded function.
enum Frame {
    /// A `for` loop: bounds evaluated once at `ForSetup`, `k` counts
    /// completed iterations.
    For {
        var: VarId,
        s: f64,
        st: f64,
        n: i64,
        k: i64,
    },
    /// A `while` loop (no per-loop state; the frame exists so `break`
    /// unwinds uniformly).
    While,
}

impl<'a> Exec<'a> {
    /// Calls `f` through its decoded body — same prologue/epilogue as the
    /// tree walker's `call` (depth guard, arity check, `Call` charge,
    /// parameter coercion, output collection).
    fn call_decoded(
        &mut self,
        f: &'a MirFunction,
        dfunc: &'a DecodedFunction,
        inputs: Vec<SimVal>,
    ) -> Result<Vec<SimVal>, SimError> {
        if self.depth > 128 {
            return Err(SimError::new("call depth exceeded", Span::dummy()));
        }
        if inputs.len() != f.params.len() {
            return Err(SimError::new(
                format!(
                    "`{}` expects {} inputs, got {}",
                    f.name,
                    f.params.len(),
                    inputs.len()
                ),
                Span::dummy(),
            ));
        }
        self.depth += 1;
        self.charge(OpClass::Call, 1);
        let mut env: Env = vec![None; f.vars.len()];
        for (&p, val) in f.params.iter().zip(inputs) {
            // Coerce per the register's representation.
            let coerced = if f.var_ty(p).shape.is_scalar() {
                SimVal::Scalar(val.as_cx().map_err(|m| SimError::new(m, Span::dummy()))?)
            } else {
                SimVal::Arr(val.into_matrix())
            };
            env[p.0 as usize] = Some(coerced);
        }
        self.exec_linear(f, dfunc, &mut env)?;
        let mut outs = Vec::new();
        for &o in &f.outputs {
            outs.push(env[o.0 as usize].clone().ok_or_else(|| {
                SimError::new(
                    format!("output `{}` never assigned", f.var(o).name),
                    Span::dummy(),
                )
            })?);
        }
        self.depth -= 1;
        Ok(outs)
    }

    fn exec_linear(
        &mut self,
        f: &MirFunction,
        dfunc: &DecodedFunction,
        env: &mut Env,
    ) -> Result<(), SimError> {
        let code = &dfunc.code;
        let mut pc = 0usize;
        let mut frames: Vec<Frame> = Vec::new();
        while let Some(inst) = code.get(pc) {
            match inst {
                DInst::Def {
                    dst,
                    scalar_dst,
                    rv,
                    span,
                } => {
                    self.burn(Span::dummy())?;
                    self.cur_span = *span;
                    let val = self.eval_rvalue(f, env, *dst, rv, *span)?;
                    // Coerce to the register representation.
                    let val = if *scalar_dst {
                        match val {
                            SimVal::Arr(m) if m.is_scalar() => SimVal::Scalar(m.lin(0)),
                            other => other,
                        }
                    } else {
                        match val {
                            SimVal::Scalar(z) => SimVal::Arr(Matrix::scalar(z)),
                            other => other,
                        }
                    };
                    self.set(env, *dst, val);
                    pc += 1;
                }
                DInst::Store {
                    array,
                    indices,
                    value,
                    span,
                } => {
                    self.burn(Span::dummy())?;
                    self.cur_span = *span;
                    self.exec_store(f, env, *array, indices, *value, *span)?;
                    pc += 1;
                }
                DInst::CallMulti {
                    dsts,
                    func,
                    args,
                    user,
                    span,
                } => {
                    self.burn(Span::dummy())?;
                    self.cur_span = *span;
                    self.exec_call_multi(f, env, dsts, func, args, *user, *span)?;
                    pc += 1;
                }
                DInst::Effect { name, args, span } => {
                    self.burn(Span::dummy())?;
                    self.cur_span = *span;
                    self.exec_effect(f, env, name, args, *span)?;
                    pc += 1;
                }
                DInst::VectorOp(vop) => {
                    self.burn(Span::dummy())?;
                    self.cur_span = vop.span;
                    self.exec_vector_op(f, env, vop)?;
                    pc += 1;
                }
                DInst::Branch {
                    cond,
                    if_false,
                    burn,
                    exit_loop,
                    span,
                } => {
                    if *burn {
                        self.burn(Span::dummy())?;
                    }
                    self.cur_span = *span;
                    self.charge(OpClass::Branch, 1);
                    if self.truthy(f, env, *cond)? {
                        pc += 1;
                    } else {
                        if *exit_loop {
                            frames.pop();
                        }
                        pc = *if_false as usize;
                    }
                }
                DInst::Jump { target, .. } => pc = *target as usize,
                DInst::ForSetup {
                    var,
                    start,
                    step,
                    stop,
                    ..
                } => {
                    self.burn(Span::dummy())?;
                    let span = Span::dummy();
                    let s = self.real_of(f, env, *start, span)?;
                    let st = self.real_of(f, env, *step, span)?;
                    let e = self.real_of(f, env, *stop, span)?;
                    let n = if st == 0.0 {
                        0
                    } else {
                        (((e - s) / st + 1e-10).floor() as i64 + 1).max(0)
                    };
                    frames.push(Frame::For {
                        var: *var,
                        s,
                        st,
                        n,
                        k: 0,
                    });
                    pc += 1;
                }
                DInst::ForNext { end, span } => {
                    let Some(Frame::For { var, s, st, n, k }) = frames.last_mut() else {
                        unreachable!("ForNext without a for frame");
                    };
                    if *k >= *n {
                        frames.pop();
                        pc = *end as usize;
                    } else {
                        let (var, value) = (*var, *s + *st * *k as f64);
                        *k += 1;
                        self.burn(Span::dummy())?;
                        self.cur_span = *span;
                        // Loop control: induction update + branch.
                        self.charge(OpClass::ScalarAlu, 1);
                        self.charge(OpClass::Branch, 1);
                        self.set(env, var, SimVal::scalar(value));
                        pc += 1;
                    }
                }
                DInst::WhileEnter { .. } => {
                    self.burn(Span::dummy())?;
                    frames.push(Frame::While);
                    pc += 1;
                }
                DInst::WhileIter { .. } => {
                    self.burn(Span::dummy())?;
                    pc += 1;
                }
                DInst::Break { target, .. } => {
                    self.burn(Span::dummy())?;
                    frames.pop();
                    pc = *target as usize;
                }
                DInst::Continue { target, .. } => {
                    self.burn(Span::dummy())?;
                    pc = *target as usize;
                }
                DInst::Return { .. } => {
                    self.burn(Span::dummy())?;
                    break;
                }
            }
        }
        Ok(())
    }
}
