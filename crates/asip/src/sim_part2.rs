// Continuation of `Exec` — included from sim.rs.

impl<'a> Exec<'a> {
    // ---- rvalues -----------------------------------------------------------

    fn eval_rvalue(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        dst: VarId,
        rv: &Rvalue,
        span: Span,
    ) -> Result<SimVal, SimError> {
        match rv {
            Rvalue::Use(op) => {
                let v = self.operand(f, env, *op, span)?;
                match &v {
                    SimVal::Scalar(_) => self.charge(OpClass::ScalarAlu, 1),
                    SimVal::Arr(m) => {
                        // Value-semantics copy through memory.
                        let n = m.numel() as u64;
                        self.charge(OpClass::Load, n);
                        self.charge(OpClass::Store, n);
                    }
                }
                Ok(v)
            }
            Rvalue::Unary { op, a } => {
                let v = self.operand(f, env, *a, span)?;
                match v {
                    SimVal::Scalar(z) => {
                        self.charge(OpClass::ScalarAlu, 1);
                        Ok(SimVal::Scalar(apply_unop(*op, z)))
                    }
                    SimVal::Arr(m) => {
                        let n = m.numel() as u64;
                        self.charge(OpClass::Load, n);
                        self.charge(OpClass::ScalarAlu, n);
                        self.charge(OpClass::Store, n);
                        self.charge(OpClass::Branch, n);
                        Ok(SimVal::Arr(m.map(|z| apply_unop(*op, z))))
                    }
                }
            }
            Rvalue::Binary { op, a, b } => self.eval_binary(f, env, *op, *a, *b, span),
            Rvalue::Transpose { a, conjugate } => {
                let v = self.operand(f, env, *a, span)?;
                match v {
                    SimVal::Scalar(z) => {
                        self.charge(OpClass::ScalarAlu, 1);
                        Ok(SimVal::Scalar(if *conjugate { z.conj() } else { z }))
                    }
                    SimVal::Arr(m) => {
                        let n = m.numel() as u64;
                        self.charge(OpClass::Load, n);
                        self.charge(OpClass::Store, n);
                        if *conjugate && !m.is_real() {
                            self.charge(OpClass::ScalarAlu, n);
                        }
                        Ok(SimVal::Arr(m.transpose(*conjugate)))
                    }
                }
            }
            Rvalue::Index { array, indices } => self.eval_index(f, env, *array, indices, span),
            Rvalue::Range { start, step, stop } => {
                let s = self.real_of(f, env, *start, span)?;
                let st = self.real_of(f, env, *step, span)?;
                let e = self.real_of(f, env, *stop, span)?;
                let m = Matrix::range(s, st, e);
                let n = m.numel() as u64;
                self.charge(OpClass::ScalarAlu, n);
                self.charge(OpClass::Store, n);
                self.charge(OpClass::Branch, n);
                Ok(SimVal::Arr(m))
            }
            Rvalue::Alloc { kind, rows, cols } => {
                let r = self.real_of(f, env, *rows, span)?.max(0.0) as usize;
                let c = self.real_of(f, env, *cols, span)?.max(0.0) as usize;
                let n = (r * c) as u64;
                // Zero-fill: a SIMD machine memsets one word per issue.
                let w = self.spec().vector_width.max(1) as u64;
                if self.machine.use_intrinsics
                    && self.spec().features.simd
                    && w > 1
                {
                    self.charge(OpClass::VectorStore, n.div_ceil(w));
                } else {
                    self.charge(OpClass::Store, n);
                }
                let m = match kind {
                    AllocKind::Zeros => Matrix::zeros(r, c),
                    AllocKind::Ones => Matrix::ones(r, c),
                    AllocKind::Eye => Matrix::eye(r, c),
                };
                Ok(SimVal::Arr(m))
            }
            Rvalue::Builtin { name, args } => self.eval_builtin(f, env, dst, name, args, span),
            Rvalue::Call { func, args } => {
                let mut inputs = Vec::new();
                for a in args {
                    inputs.push(self.operand(f, env, *a, span)?);
                }
                let mut outs = self.call_by_name(func, inputs, span)?;
                if outs.is_empty() {
                    return Err(SimError::new(
                        format!("`{func}` returns nothing but a value was expected"),
                        span,
                    ));
                }
                Ok(outs.swap_remove(0))
            }
            Rvalue::MatrixLit { rows } => {
                if rows.is_empty() {
                    return Ok(SimVal::Arr(Matrix::empty()));
                }
                let nrows = rows.len();
                let ncols = rows[0].len();
                let mut m = Matrix::zeros(nrows, ncols);
                for (r, row) in rows.iter().enumerate() {
                    if row.len() != ncols {
                        return Err(SimError::new("ragged matrix literal", span));
                    }
                    for (c, op) in row.iter().enumerate() {
                        let z = self.scalar_of(f, env, *op, span)?;
                        *m.at_mut(r, c) = z;
                    }
                }
                self.charge(OpClass::Store, (nrows * ncols) as u64);
                Ok(SimVal::Arr(m))
            }
            Rvalue::StrLit(s) => Ok(SimVal::Arr(Matrix::row(
                s.chars().map(|c| Cx::real(c as u32 as f64)).collect(),
            ))),
        }
    }

    fn eval_binary(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        op: BinOp,
        a: Operand,
        b: Operand,
        span: Span,
    ) -> Result<SimVal, SimError> {
        let va = self.operand(f, env, a, span)?;
        let vb = self.operand(f, env, b, span)?;
        match (va, vb) {
            (SimVal::Scalar(x), SimVal::Scalar(y)) => {
                let complex = !x.is_real() || !y.is_real();
                self.scalar_binop_cost(op, complex);
                let z = apply_binop_scalar(op, x, y).map_err(|m| SimError::new(m, span))?;
                Ok(SimVal::Scalar(z))
            }
            (va, vb) => {
                // Element-wise (or matmul) on arrays.
                let ma = va.into_matrix();
                let mb = vb.into_matrix();
                let complex = !ma.is_real() || !mb.is_real();
                if op == BinOp::MatMul && !ma.is_scalar() && !mb.is_scalar() {
                    let out = ma.matmul(&mb).map_err(|m| SimError::new(m, span))?;
                    let flops = (ma.rows() * ma.cols() * mb.cols()) as u64;
                    self.charge(OpClass::Load, 2 * flops);
                    if complex {
                        self.cx_mul_cost(flops);
                        self.cx_add_cost(flops);
                    } else {
                        self.charge(OpClass::ScalarMul, flops);
                        self.charge(OpClass::ScalarAlu, flops);
                    }
                    self.charge(OpClass::Store, out.numel() as u64);
                    self.charge(OpClass::Branch, flops);
                    return Ok(SimVal::Arr(out));
                }
                let n = ma.numel().max(mb.numel()) as u64;
                self.charge(OpClass::Load, 2 * n);
                if complex {
                    match op {
                        BinOp::ElemMul | BinOp::MatMul => self.cx_mul_cost(n),
                        BinOp::Add | BinOp::Sub => self.cx_add_cost(n),
                        BinOp::ElemDiv | BinOp::MatDiv => self.cx_div_cost(n),
                        _ => self.charge(OpClass::ScalarAlu, 2 * n),
                    }
                } else {
                    match op {
                        BinOp::ElemMul | BinOp::MatMul => self.charge(OpClass::ScalarMul, n),
                        BinOp::ElemDiv | BinOp::MatDiv | BinOp::ElemLeftDiv
                        | BinOp::MatLeftDiv => self.charge(OpClass::ScalarDiv, n),
                        BinOp::ElemPow | BinOp::MatPow => self.charge(OpClass::ScalarTrans, n),
                        _ => self.charge(OpClass::ScalarAlu, n),
                    }
                }
                self.charge(OpClass::Store, n);
                self.charge(OpClass::Branch, n);
                let out = matic_interp::apply_binop(op, &ma, &mb)
                    .map_err(|m| SimError::new(m, span))?;
                Ok(SimVal::Arr(out))
            }
        }
    }

    fn eval_index(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        array: VarId,
        indices: &[Index],
        span: Span,
    ) -> Result<SimVal, SimError> {
        let base = match self.get(f, env, array, span)? {
            SimVal::Arr(m) => m,
            SimVal::Scalar(z) => Matrix::scalar(z),
        };
        match indices {
            [Index::Scalar(op)] => {
                // Evaluate the subscript once and branch on its shape
                // (the guard-plus-`index0` form evaluated it twice).
                let iv = self.operand(f, env, *op, span)?;
                match iv {
                    SimVal::Scalar(z) => {
                        let k = z.re as i64 - 1;
                        self.charge(OpClass::ScalarAlu, 1);
                        self.charge(OpClass::Load, 1);
                        let z = *base
                            .data()
                            .get(k.max(0) as usize)
                            .filter(|_| k >= 0)
                            .ok_or_else(|| {
                                SimError::new(
                                    format!("index {} out of bounds ({})", k + 1, base.numel()),
                                    span,
                                )
                            })?;
                        Ok(SimVal::Scalar(z))
                    }
                    SimVal::Arr(idx) => {
                        // Gather.
                        let n = idx.numel() as u64;
                        self.charge(OpClass::Load, 2 * n);
                        self.charge(OpClass::Store, n);
                        self.charge(OpClass::Branch, n);
                        let out = base
                            .index_linear(&idx)
                            .map_err(|m| SimError::new(m, span))?;
                        Ok(SimVal::Arr(out))
                    }
                }
            }
            [Index::Scalar(r), Index::Scalar(c)] => {
                let vr = self.operand(f, env, *r, span)?;
                let vc = self.operand(f, env, *c, span)?;
                let (SimVal::Scalar(zr), SimVal::Scalar(zc)) = (vr, vc) else {
                    return self.eval_index_slices(f, env, &base, indices, span);
                };
                let (r0, c0) = (zr.re as i64 - 1, zc.re as i64 - 1);
                self.charge(OpClass::ScalarAlu, 2);
                self.charge(OpClass::Load, 1);
                if r0 < 0 || c0 < 0 || r0 as usize >= base.rows() || c0 as usize >= base.cols() {
                    return Err(SimError::new(
                        format!("index ({}, {}) out of bounds", r0 + 1, c0 + 1),
                        span,
                    ));
                }
                Ok(SimVal::Scalar(base.at(r0 as usize, c0 as usize)))
            }
            _ => self.eval_index_slices(f, env, &base, indices, span),
        }
    }

    /// The general slice/gather subscript forms of [`Exec::eval_index`].
    fn eval_index_slices(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        base: &Matrix,
        indices: &[Index],
        span: Span,
    ) -> Result<SimVal, SimError> {
        // Slices: evaluate via positions like the C backend loops.
        let (positions, rows, cols) = self.slice_positions(f, env, base, indices, span)?;
        let n = positions.len() as u64;
        self.charge(OpClass::Load, n);
        self.charge(OpClass::Store, n);
        self.charge(OpClass::Branch, n);
        let mut data = Vec::with_capacity(positions.len());
        for p in &positions {
            data.push(*base.data().get(*p).ok_or_else(|| {
                SimError::new(format!("slice index {} out of bounds", p + 1), span)
            })?);
        }
        Ok(SimVal::Arr(Matrix::new(rows, cols, data)))
    }

    /// Resolves slice-like subscripts into 0-based linear positions plus
    /// the result shape, mirroring the C backend's loops.
    fn slice_positions(
        &mut self,
        f: &MirFunction,
        env: &Env,
        base: &Matrix,
        indices: &[Index],
        span: Span,
    ) -> Result<(Vec<usize>, usize, usize), SimError> {
        let range_list = |s: f64, st: f64, e: f64| -> Vec<i64> {
            if st == 0.0 {
                return Vec::new();
            }
            let n = (((e - s) / st + 1e-10).floor() as i64 + 1).max(0);
            (0..n).map(|k| (s + st * k as f64) as i64 - 1).collect()
        };
        match indices {
            [Index::Range { start, step, stop }] => {
                let s = self.real_of(f, env, *start, span)?;
                let st = self.real_of(f, env, *step, span)?;
                let e = self.real_of(f, env, *stop, span)?;
                let list = range_list(s, st, e);
                let n = list.len();
                let mut out = Vec::with_capacity(n);
                for k in list {
                    if k < 0 {
                        return Err(SimError::new("index must be positive", span));
                    }
                    out.push(k as usize);
                }
                Ok((out, 1, n))
            }
            [Index::Full] => {
                let n = base.numel();
                Ok(((0..n).collect(), n, 1))
            }
            [ri, ci] => {
                let rlist: Vec<i64> = match ri {
                    Index::Scalar(op) => vec![self.index0(f, env, *op, span)?],
                    Index::Full => (0..base.rows() as i64).collect(),
                    Index::Range { start, step, stop } => {
                        let s = self.real_of(f, env, *start, span)?;
                        let st = self.real_of(f, env, *step, span)?;
                        let e = self.real_of(f, env, *stop, span)?;
                        range_list(s, st, e)
                    }
                };
                let clist: Vec<i64> = match ci {
                    Index::Scalar(op) => vec![self.index0(f, env, *op, span)?],
                    Index::Full => (0..base.cols() as i64).collect(),
                    Index::Range { start, step, stop } => {
                        let s = self.real_of(f, env, *start, span)?;
                        let st = self.real_of(f, env, *step, span)?;
                        let e = self.real_of(f, env, *stop, span)?;
                        range_list(s, st, e)
                    }
                };
                let mut out = Vec::with_capacity(rlist.len() * clist.len());
                for &c in &clist {
                    for &r in &rlist {
                        if r < 0 || c < 0 {
                            return Err(SimError::new("index must be positive", span));
                        }
                        out.push(c as usize * base.rows() + r as usize);
                    }
                }
                Ok((out, rlist.len(), clist.len()))
            }
            _ => Err(SimError::new("unsupported subscript form", span)),
        }
    }

    fn exec_store(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        array: VarId,
        indices: &[Index],
        value: Operand,
        span: Span,
    ) -> Result<(), SimError> {
        let val = self.operand(f, env, value, span)?;
        // Take (not clone) the destination so the writes below mutate the
        // array in place instead of forcing a copy-on-write duplication.
        // MIR lowering materializes index operands into temps first, so
        // nothing below reads `array` while it is out of the environment.
        let mut base = match self.take_val(f, env, array, span)? {
            SimVal::Arr(m) => m,
            SimVal::Scalar(z) => Matrix::scalar(z),
        };
        match indices {
            // Evaluate each subscript once and branch on its shape (the
            // guard-plus-`index0` form evaluated them twice per store).
            [Index::Scalar(op)] => match self.operand(f, env, *op, span)? {
                SimVal::Scalar(z) => {
                    let k = z.re as i64 - 1;
                    self.charge(OpClass::ScalarAlu, 1);
                    self.charge(OpClass::Store, 1);
                    let n = base.numel();
                    if k < 0 || k as usize >= n {
                        return Err(SimError::new(
                            format!("store index {} out of bounds ({n})", k + 1),
                            span,
                        ));
                    }
                    base.data_mut()[k as usize] =
                        val.as_cx().map_err(|m| SimError::new(m, span))?;
                }
                SimVal::Arr(_) => self.store_slices(f, env, &mut base, indices, &val, span)?,
            },
            [Index::Scalar(r), Index::Scalar(c)] => {
                let vr = self.operand(f, env, *r, span)?;
                let vc = self.operand(f, env, *c, span)?;
                if let (SimVal::Scalar(zr), SimVal::Scalar(zc)) = (&vr, &vc) {
                    let (r0, c0) = (zr.re as i64 - 1, zc.re as i64 - 1);
                    self.charge(OpClass::ScalarAlu, 2);
                    self.charge(OpClass::Store, 1);
                    if r0 < 0
                        || c0 < 0
                        || r0 as usize >= base.rows()
                        || c0 as usize >= base.cols()
                    {
                        return Err(SimError::new("2-D store out of bounds", span));
                    }
                    let z = val.as_cx().map_err(|m| SimError::new(m, span))?;
                    *base.at_mut(r0 as usize, c0 as usize) = z;
                } else {
                    self.store_slices(f, env, &mut base, indices, &val, span)?;
                }
            }
            _ => self.store_slices(f, env, &mut base, indices, &val, span)?,
        }
        self.set(env, array, SimVal::Arr(base));
        Ok(())
    }

    /// The general slice/gather subscript forms of [`Exec::exec_store`].
    fn store_slices(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        base: &mut Matrix,
        indices: &[Index],
        val: &SimVal,
        span: Span,
    ) -> Result<(), SimError> {
        let (positions, ..) = self.slice_positions(f, env, base, indices, span)?;
        let n = positions.len() as u64;
        self.charge(OpClass::Store, n);
        self.charge(OpClass::Branch, n);
        match val {
            SimVal::Scalar(z) => {
                for p in &positions {
                    let total = base.numel();
                    let slot = base.data_mut().get_mut(*p).ok_or_else(|| {
                        SimError::new(
                            format!("store slice {} out of bounds ({total})", p + 1),
                            span,
                        )
                    })?;
                    *slot = *z;
                }
            }
            SimVal::Arr(src) => {
                self.charge(OpClass::Load, n);
                if src.numel() != positions.len() {
                    return Err(SimError::new("store size mismatch", span));
                }
                for (k, p) in positions.iter().enumerate() {
                    let total = base.numel();
                    let z = src.lin(k);
                    let slot = base.data_mut().get_mut(*p).ok_or_else(|| {
                        SimError::new(
                            format!("store slice {} out of bounds ({total})", p + 1),
                            span,
                        )
                    })?;
                    *slot = z;
                }
            }
        }
        Ok(())
    }

    // One parameter per field of the `Stmt::CallMulti` form it executes.
    #[allow(clippy::too_many_arguments)]
    fn exec_call_multi(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        dsts: &[Option<VarId>],
        func: &str,
        args: &[Operand],
        user: bool,
        span: Span,
    ) -> Result<(), SimError> {
        if user {
            let mut inputs = Vec::new();
            for a in args {
                inputs.push(self.operand(f, env, *a, span)?);
            }
            let outs = self.call_by_name(func, inputs, span)?;
            for (d, v) in dsts.iter().zip(outs) {
                if let Some(d) = d {
                    self.set(env, *d, v);
                }
            }
            return Ok(());
        }
        match func {
            "size" => {
                let m = self.operand(f, env, args[0], span)?.into_matrix();
                self.charge(OpClass::ScalarAlu, 2);
                if let Some(Some(d)) = dsts.first() {
                    self.set(env, *d, SimVal::scalar(m.rows() as f64));
                }
                if let Some(Some(d)) = dsts.get(1) {
                    self.set(env, *d, SimVal::scalar(m.cols() as f64));
                }
                Ok(())
            }
            "min" | "max" => {
                let m = self.operand(f, env, args[0], span)?.into_matrix();
                if m.is_empty() {
                    return Err(SimError::new("min/max of empty array", span));
                }
                let n = m.numel() as u64;
                self.charge(OpClass::Load, n);
                self.charge(OpClass::ScalarAlu, n);
                self.charge(OpClass::Branch, n);
                let better = |a: f64, b: f64| if func == "min" { a < b } else { a > b };
                let mut best = m.lin(0).re;
                let mut bi = 0usize;
                for k in 1..m.numel() {
                    if better(m.lin(k).re, best) {
                        best = m.lin(k).re;
                        bi = k;
                    }
                }
                if let Some(Some(d)) = dsts.first() {
                    self.set(env, *d, SimVal::scalar(best));
                }
                if let Some(Some(d)) = dsts.get(1) {
                    self.set(env, *d, SimVal::scalar((bi + 1) as f64));
                }
                Ok(())
            }
            other => Err(SimError::new(
                format!("multi-output builtin `{other}` unsupported"),
                span,
            )),
        }
    }

    fn exec_effect(
        &mut self,
        f: &MirFunction,
        env: &mut Env,
        name: &str,
        args: &[Operand],
        span: Span,
    ) -> Result<(), SimError> {
        match name {
            "rng" => Ok(()),
            "disp" => {
                match args.first() {
                    Some(op) => {
                        let v = self.operand(f, env, *op, span)?;
                        match v {
                            SimVal::Scalar(z) => {
                                self.printed.push_str(&format!("{z}\n"));
                            }
                            SimVal::Arr(m) => {
                                for z in m.data() {
                                    self.printed.push_str(&format!("{z} "));
                                }
                                self.printed.push('\n');
                            }
                        }
                    }
                    None => self.printed.push('\n'),
                }
                Ok(())
            }
            "fprintf" => {
                // Approximate: print remaining args space-separated.
                for a in &args[1..] {
                    let z = self.scalar_of(f, env, *a, span)?;
                    self.printed.push_str(&format!("{z} "));
                }
                self.printed.push('\n');
                Ok(())
            }
            "error" => {
                // Decode the message (char codes) for the diagnostic.
                let msg = match args.first() {
                    Some(op) => {
                        let m = self.operand(f, env, *op, span)?.into_matrix();
                        m.data()
                            .iter()
                            .map(|z| char::from_u32(z.re as u32).unwrap_or('?'))
                            .collect::<String>()
                    }
                    None => "error() raised".to_string(),
                };
                Err(SimError::new(msg, span))
            }
            other => Err(SimError::new(format!("effect `{other}` unsupported"), span)),
        }
    }
}

fn apply_unop(op: UnOp, z: Cx) -> Cx {
    match op {
        UnOp::Neg => -z,
        UnOp::Plus => z,
        UnOp::Not => Cx::real(if z.re == 0.0 && z.im == 0.0 { 1.0 } else { 0.0 }),
    }
}

/// Scalar fast path of [`matic_interp::apply_binop`]: identical semantics
/// on 1×1 operands without building temporary matrices. This runs once
/// per scalar ALU statement and once per lane inside vector maps, so it
/// must stay allocation-free.
fn apply_binop_scalar(op: BinOp, a: Cx, b: Cx) -> Result<Cx, String> {
    let logical = |c: bool| Cx::real(if c { 1.0 } else { 0.0 });
    let truthy = |z: Cx| z.re != 0.0 || z.im != 0.0;
    Ok(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::ElemMul | BinOp::MatMul => a * b,
        BinOp::ElemDiv | BinOp::MatDiv => a / b,
        BinOp::ElemLeftDiv | BinOp::MatLeftDiv => b / a,
        BinOp::ElemPow | BinOp::MatPow => a.powc(b),
        BinOp::Eq => logical(a == b),
        BinOp::Ne => logical(a != b),
        BinOp::Lt => logical(a.re < b.re),
        BinOp::Le => logical(a.re <= b.re),
        BinOp::Gt => logical(a.re > b.re),
        BinOp::Ge => logical(a.re >= b.re),
        BinOp::And => logical(truthy(a) && truthy(b)),
        BinOp::Or => logical(truthy(a) || truthy(b)),
        BinOp::AndAnd | BinOp::OrOr => {
            return Err("short-circuit operator applied to matrices".to_string())
        }
    })
}
