// The fused direct-threaded execution engine — included from sim.rs.
//
// Executes the `NativeProgram` form built by fuse.rs: a flat table of
// steps, each a pre-selected fn pointer, with straight-line `Def`/`Store`
// runs collapsed into superinstructions of micro-ops. The dispatch loop is
// `pc = (step.run)(...)` — no instruction-enum match — and micro-ops with
// scalar-specialized fast paths skip the generic `Rvalue` machinery
// entirely, falling back to it whenever a runtime value shape disagrees
// with the specialization.
//
// Bit-exactness contract: every handler burns fuel, charges cycles, and
// raises errors in exactly the order the linear engine's handlers in
// sim_linear.rs would. `cur_span` is only ever read by the profiler, so
// handlers skip the span bookkeeping entirely when profiling is off.

impl<'a> Exec<'a> {
    /// Calls `f` through its fused body — same prologue/epilogue as
    /// `call_decoded`.
    fn call_native(
        &mut self,
        f: &'a MirFunction,
        nfunc: &'a NativeFunction,
        inputs: Vec<SimVal>,
    ) -> Result<Vec<SimVal>, SimError> {
        if self.depth > 128 {
            return Err(SimError::new("call depth exceeded", Span::dummy()));
        }
        if inputs.len() != f.params.len() {
            return Err(SimError::new(
                format!(
                    "`{}` expects {} inputs, got {}",
                    f.name,
                    f.params.len(),
                    inputs.len()
                ),
                Span::dummy(),
            ));
        }
        self.depth += 1;
        self.charge(OpClass::Call, 1);
        let mut env: Env = vec![None; f.vars.len()];
        for (&p, val) in f.params.iter().zip(inputs) {
            // Coerce per the register's representation.
            let coerced = if f.var_ty(p).shape.is_scalar() {
                SimVal::Scalar(val.as_cx().map_err(|m| SimError::new(m, Span::dummy()))?)
            } else {
                SimVal::Arr(val.into_matrix())
            };
            env[p.0 as usize] = Some(coerced);
        }
        self.exec_native(f, nfunc, &mut env)?;
        let mut outs = Vec::new();
        for &o in &f.outputs {
            outs.push(env[o.0 as usize].clone().ok_or_else(|| {
                SimError::new(
                    format!("output `{}` never assigned", f.var(o).name),
                    Span::dummy(),
                )
            })?);
        }
        self.depth -= 1;
        Ok(outs)
    }

    fn exec_native(
        &mut self,
        f: &MirFunction,
        nfunc: &NativeFunction,
        env: &mut Env,
    ) -> Result<(), SimError> {
        let steps = &nfunc.steps;
        let mut frames: Vec<Frame> = Vec::new();
        let mut pc = 0u32;
        while let Some(step) = steps.get(pc as usize) {
            pc = (step.run)(self, f, env, &mut frames, step, pc)?;
        }
        Ok(())
    }
}

// ---- shared fast-path helpers ---------------------------------------------

#[cold]
fn unset_err(f: &MirFunction, v: VarId, span: Span) -> SimError {
    SimError::new(format!("read of unset `{}`", f.var(v).name), span)
}

/// Fetches an operand if it resolves to a scalar right now: `Ok(Some)` on a
/// scalar, `Ok(None)` when the value is array-shaped (caller falls back to
/// the generic path), `Err(v)` when the register is unset.
#[inline(always)]
fn slot_scalar(env: &Env, op: Operand) -> Result<Option<Cx>, VarId> {
    match op {
        Operand::Const(v) => Ok(Some(Cx::real(v))),
        Operand::ConstC(re, im) => Ok(Some(Cx::new(re, im))),
        Operand::Var(v) => match &env[v.0 as usize] {
            Some(SimVal::Scalar(z)) => Ok(Some(*z)),
            Some(SimVal::Arr(_)) => Ok(None),
            None => Err(v),
        },
    }
}

/// The `Def` epilogue: coerce to the destination register's representation
/// and write the slot (same as the linear engine's `DInst::Def` arm).
#[inline(always)]
fn def_finish(env: &mut Env, dst: VarId, scalar_dst: bool, val: SimVal) {
    let val = if scalar_dst {
        match val {
            SimVal::Arr(m) if m.is_scalar() => SimVal::Scalar(m.lin(0)),
            other => other,
        }
    } else {
        match val {
            SimVal::Scalar(z) => SimVal::Arr(Matrix::scalar(z)),
            other => other,
        }
    };
    env[dst.0 as usize] = Some(val);
}

// ---- micro-op handlers ----------------------------------------------------

fn micro_bin(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Bin {
        op,
        a,
        b,
        dst,
        scalar_dst,
        span,
        ..
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    let x = match slot_scalar(env, *a) {
        Ok(Some(z)) => Some(z),
        Ok(None) => None,
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    let y = match slot_scalar(env, *b) {
        Ok(Some(z)) => Some(z),
        Ok(None) => None,
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    let (Some(x), Some(y)) = (x, y) else {
        // Array operand: the generic path re-fetches (no side effects) and
        // handles element-wise/matmul semantics.
        let val = exec.eval_binary(f, env, *op, *a, *b, *span)?;
        def_finish(env, *dst, *scalar_dst, val);
        return Ok(());
    };
    let complex = !x.is_real() || !y.is_real();
    exec.scalar_binop_cost(*op, complex);
    let z = apply_binop_scalar(*op, x, y).map_err(|m| SimError::new(m, *span))?;
    env[dst.0 as usize] = Some(if *scalar_dst {
        SimVal::Scalar(z)
    } else {
        SimVal::Arr(Matrix::scalar(z))
    });
    Ok(())
}

/// `micro_bin` with the real-operand cost class and the compute fn
/// pre-selected at fuse time (every op except `&&`/`||`, whose scalar
/// application errors through `apply_binop_scalar`).
fn micro_bin_fast(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Bin {
        op,
        class,
        evalf,
        a,
        b,
        dst,
        scalar_dst,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    match (slot_scalar(env, *a), slot_scalar(env, *b)) {
        (Ok(Some(x)), Ok(Some(y))) => {
            if x.is_real() && y.is_real() {
                exec.charge(*class, 1);
            } else {
                exec.scalar_binop_cost(*op, true);
            }
            let z = evalf(x, y);
            env[dst.0 as usize] = Some(if *scalar_dst {
                SimVal::Scalar(z)
            } else {
                SimVal::Arr(Matrix::scalar(z))
            });
            Ok(())
        }
        (Err(v), _) | (_, Err(v)) => Err(unset_err(f, v, *span)),
        _ => {
            // Array operand: the generic path re-fetches (no side effects)
            // and handles element-wise/matmul semantics.
            let val = exec.eval_binary(f, env, *op, *a, *b, *span)?;
            def_finish(env, *dst, *scalar_dst, val);
            Ok(())
        }
    }
}

fn micro_copy(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Copy {
        a,
        dst,
        scalar_dst,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    match slot_scalar(env, *a) {
        Ok(Some(z)) => {
            exec.charge(OpClass::ScalarAlu, 1);
            def_finish(env, *dst, *scalar_dst, SimVal::Scalar(z));
        }
        Ok(None) => {
            // Value-semantics copy through memory (Rc clone at runtime).
            let Operand::Var(v) = *a else { unreachable!() };
            let n = match &env[v.0 as usize] {
                Some(SimVal::Arr(m)) => m.numel() as u64,
                _ => unreachable!(),
            };
            exec.charge(OpClass::Load, n);
            exec.charge(OpClass::Store, n);
            let val = env[v.0 as usize].clone().unwrap();
            def_finish(env, *dst, *scalar_dst, val);
        }
        Err(v) => return Err(unset_err(f, v, *span)),
    }
    Ok(())
}

fn micro_un(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Un {
        op,
        a,
        dst,
        scalar_dst,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    match slot_scalar(env, *a) {
        Ok(Some(z)) => {
            exec.charge(OpClass::ScalarAlu, 1);
            def_finish(env, *dst, *scalar_dst, SimVal::Scalar(apply_unop(*op, z)));
        }
        Ok(None) => {
            let rv = Rvalue::Unary { op: *op, a: *a };
            let val = exec.eval_rvalue(f, env, *dst, &rv, *span)?;
            def_finish(env, *dst, *scalar_dst, val);
        }
        Err(v) => return Err(unset_err(f, v, *span)),
    }
    Ok(())
}

fn micro_load1(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Load1 {
        arr,
        idx,
        dst,
        scalar_dst,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    let fallback = |exec: &mut Exec<'_>, env: &mut Env| -> Result<(), SimError> {
        let val = exec.eval_index(f, env, *arr, &[Index::Scalar(*idx)], *span)?;
        def_finish(env, *dst, *scalar_dst, val);
        Ok(())
    };
    // The generic path reads the base register first, so its unset error
    // precedes any subscript error.
    match &env[arr.0 as usize] {
        Some(SimVal::Arr(_)) => {}
        Some(SimVal::Scalar(_)) => return fallback(exec, env),
        None => return Err(unset_err(f, *arr, *span)),
    }
    let z = match slot_scalar(env, *idx) {
        Ok(Some(z)) => z,
        Ok(None) => return fallback(exec, env), // gather subscript
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    let k = z.re as i64 - 1;
    let (elem, numel) = match &env[arr.0 as usize] {
        Some(SimVal::Arr(m)) => (
            m.data().get(k.max(0) as usize).copied().filter(|_| k >= 0),
            m.numel(),
        ),
        _ => unreachable!(),
    };
    exec.charge(OpClass::ScalarAlu, 1);
    exec.charge(OpClass::Load, 1);
    let z = elem.ok_or_else(|| {
        SimError::new(format!("index {} out of bounds ({})", k + 1, numel), *span)
    })?;
    def_finish(env, *dst, *scalar_dst, SimVal::Scalar(z));
    Ok(())
}

fn micro_load2(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Load2 {
        arr,
        r,
        c,
        dst,
        scalar_dst,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    let fallback = |exec: &mut Exec<'_>, env: &mut Env| -> Result<(), SimError> {
        let val = exec.eval_index(f, env, *arr, &[Index::Scalar(*r), Index::Scalar(*c)], *span)?;
        def_finish(env, *dst, *scalar_dst, val);
        Ok(())
    };
    match &env[arr.0 as usize] {
        Some(SimVal::Arr(_)) => {}
        Some(SimVal::Scalar(_)) => return fallback(exec, env),
        None => return Err(unset_err(f, *arr, *span)),
    }
    let zr = match slot_scalar(env, *r) {
        Ok(Some(z)) => z,
        Ok(None) => return fallback(exec, env),
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    let zc = match slot_scalar(env, *c) {
        Ok(Some(z)) => z,
        Ok(None) => return fallback(exec, env),
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    let (r0, c0) = (zr.re as i64 - 1, zc.re as i64 - 1);
    let elem = match &env[arr.0 as usize] {
        Some(SimVal::Arr(m)) => {
            let ok = r0 >= 0 && c0 >= 0 && (r0 as usize) < m.rows() && (c0 as usize) < m.cols();
            ok.then(|| m.at(r0 as usize, c0 as usize))
        }
        _ => unreachable!(),
    };
    exec.charge(OpClass::ScalarAlu, 2);
    exec.charge(OpClass::Load, 1);
    let z = elem.ok_or_else(|| {
        SimError::new(
            format!("index ({}, {}) out of bounds", r0 + 1, c0 + 1),
            *span,
        )
    })?;
    def_finish(env, *dst, *scalar_dst, SimVal::Scalar(z));
    Ok(())
}

fn micro_store1(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Store1 {
        arr,
        idx,
        value,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    let fallback = |exec: &mut Exec<'_>, env: &mut Env| -> Result<(), SimError> {
        exec.exec_store(f, env, *arr, &[Index::Scalar(*idx)], *value, *span)
    };
    // Generic order: value fetch, then destination take, then subscript.
    let zval = match slot_scalar(env, *value) {
        Ok(Some(z)) => z,
        Ok(None) => return fallback(exec, env), // array value (as_cx may broadcast)
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    match &env[arr.0 as usize] {
        Some(SimVal::Arr(_)) => {}
        Some(SimVal::Scalar(_)) => return fallback(exec, env),
        None => return Err(unset_err(f, *arr, *span)),
    }
    let zi = match slot_scalar(env, *idx) {
        Ok(Some(z)) => z,
        Ok(None) => return fallback(exec, env),
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    let k = z_index(zi);
    exec.charge(OpClass::ScalarAlu, 1);
    exec.charge(OpClass::Store, 1);
    let Some(SimVal::Arr(m)) = &mut env[arr.0 as usize] else {
        unreachable!()
    };
    let n = m.numel();
    if k < 0 || k as usize >= n {
        return Err(SimError::new(
            format!("store index {} out of bounds ({n})", k + 1),
            *span,
        ));
    }
    m.data_mut()[k as usize] = zval;
    Ok(())
}

#[inline(always)]
fn z_index(z: Cx) -> i64 {
    z.re as i64 - 1
}

fn micro_store2(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Store2 {
        arr,
        r,
        c,
        value,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    let fallback = |exec: &mut Exec<'_>, env: &mut Env| -> Result<(), SimError> {
        exec.exec_store(
            f,
            env,
            *arr,
            &[Index::Scalar(*r), Index::Scalar(*c)],
            *value,
            *span,
        )
    };
    let zval = match slot_scalar(env, *value) {
        Ok(Some(z)) => z,
        Ok(None) => return fallback(exec, env),
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    match &env[arr.0 as usize] {
        Some(SimVal::Arr(_)) => {}
        Some(SimVal::Scalar(_)) => return fallback(exec, env),
        None => return Err(unset_err(f, *arr, *span)),
    }
    let zr = match slot_scalar(env, *r) {
        Ok(Some(z)) => z,
        Ok(None) => return fallback(exec, env),
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    let zc = match slot_scalar(env, *c) {
        Ok(Some(z)) => z,
        Ok(None) => return fallback(exec, env),
        Err(v) => return Err(unset_err(f, v, *span)),
    };
    let (r0, c0) = (z_index(zr), z_index(zc));
    exec.charge(OpClass::ScalarAlu, 2);
    exec.charge(OpClass::Store, 1);
    let Some(SimVal::Arr(m)) = &mut env[arr.0 as usize] else {
        unreachable!()
    };
    if r0 < 0 || c0 < 0 || r0 as usize >= m.rows() || c0 as usize >= m.cols() {
        return Err(SimError::new("2-D store out of bounds", *span));
    }
    *m.at_mut(r0 as usize, c0 as usize) = zval;
    Ok(())
}

/// Executes a compiled scalar chain (see [`ChainData`]): one dispatch and
/// one fuel check for the whole run, intermediates in a stack-local temp
/// array, environment writes only where a value escapes the chain. Falls
/// back to the original micro sequence whenever profiling is on, fuel may
/// run out mid-chain, or a shape guard fails — before any side effect, so
/// the fallback replays from a clean slate.
fn micro_chain(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Chain(ch) = data else {
        unreachable!()
    };
    let n = ch.ops.len() as u64;
    if exec.profile.is_some() || exec.fuel < n {
        return run_chain_fallback(exec, f, env, &ch.fallback);
    }
    for g in &ch.guards {
        let ok = match g {
            Guard::Scalar(s) => matches!(&env[*s as usize], Some(SimVal::Scalar(_))),
            Guard::Arr(s) => matches!(&env[*s as usize], Some(SimVal::Arr(_))),
        };
        if !ok {
            return run_chain_fallback(exec, f, env, &ch.fallback);
        }
    }
    // Every chained micro burns exactly one fuel; with `fuel >= n`
    // exhaustion cannot occur mid-chain, so the per-op burns collapse to
    // one subtraction (errors abort the run, leaving fuel unobservable).
    exec.fuel -= n;
    chain_run_fast(exec, env, ch)
}

/// Optimistic chain pass: computes values with cycle charges deferred.
/// Valid while every `Bin` input is real — the only value-dependent cost —
/// so on success the whole chain's accounting collapses to one batched
/// `charge` per touched class from the precomputed `real_counts`
/// (bit-identical: `charge(c, k1 + k2)` ≡ `charge(c, k1); charge(c, k2)`,
/// and charge order within a chain is invisible with profiling off). The
/// first complex input deoptimizes: settle the all-real prefix's charges
/// exactly, then finish per-op in `chain_run_exact`.
#[inline(never)]
fn chain_run_fast(exec: &mut Exec<'_>, env: &mut Env, ch: &ChainData) -> Result<(), SimError> {
    let ops: &[ChainOp] = &ch.ops;
    let mut tmps = [Cx::ZERO; CHAIN_MAX];
    let mut deopt = ops.len();
    'fast: for (i, op) in ops.iter().enumerate() {
        let z = match &op.kind {
            CKind::Bin { evalf, .. } => {
                let x = rd(op.a, &tmps, env);
                let y = rd(op.b, &tmps, env);
                if !(x.is_real() && y.is_real()) {
                    deopt = i;
                    break 'fast;
                }
                evalf(x, y)
            }
            CKind::Un(uop) => apply_unop(*uop, rd(op.a, &tmps, env)),
            CKind::Copy => rd(op.a, &tmps, env),
            CKind::Load1 { arr } => {
                let k = rd(op.a, &tmps, env).re as i64 - 1;
                let (elem, numel) = match &env[*arr as usize] {
                    Some(SimVal::Arr(m)) => (
                        m.data().get(k.max(0) as usize).copied().filter(|_| k >= 0),
                        m.numel(),
                    ),
                    _ => unreachable!("guarded array slot"),
                };
                match elem {
                    Some(z) => z,
                    None => return chain_oob(exec, ops, i, load1_oob(k, numel, op.span)),
                }
            }
            CKind::Load2 { arr } => {
                let r0 = rd(op.a, &tmps, env).re as i64 - 1;
                let c0 = rd(op.b, &tmps, env).re as i64 - 1;
                let elem = match &env[*arr as usize] {
                    Some(SimVal::Arr(m)) => {
                        let ok = r0 >= 0
                            && c0 >= 0
                            && (r0 as usize) < m.rows()
                            && (c0 as usize) < m.cols();
                        ok.then(|| m.at(r0 as usize, c0 as usize))
                    }
                    _ => unreachable!("guarded array slot"),
                };
                match elem {
                    Some(z) => z,
                    None => return chain_oob(exec, ops, i, load2_oob(r0, c0, op.span)),
                }
            }
            CKind::Store1 { arr } => {
                let k = z_index(rd(op.a, &tmps, env));
                let zval = rd(op.b, &tmps, env);
                let Some(SimVal::Arr(m)) = &mut env[*arr as usize] else {
                    unreachable!("guarded array slot")
                };
                let total = m.numel();
                if k < 0 || k as usize >= total {
                    return chain_oob(exec, ops, i, store1_oob(k, total, op.span));
                }
                m.data_mut()[k as usize] = zval;
                continue 'fast;
            }
            CKind::Store2 { arr } => {
                let r0 = z_index(rd(op.a, &tmps, env));
                let c0 = z_index(rd(op.b, &tmps, env));
                let zval = rd(op.c, &tmps, env);
                let Some(SimVal::Arr(m)) = &mut env[*arr as usize] else {
                    unreachable!("guarded array slot")
                };
                if r0 < 0 || c0 < 0 || r0 as usize >= m.rows() || c0 as usize >= m.cols() {
                    return chain_oob(
                        exec,
                        ops,
                        i,
                        SimError::new("2-D store out of bounds", op.span),
                    );
                }
                *m.at_mut(r0 as usize, c0 as usize) = zval;
                continue 'fast;
            }
        };
        tmps[i] = z;
        if op.env_dst != u32::MAX {
            env[op.env_dst as usize] = Some(if op.scalar_dst {
                SimVal::Scalar(z)
            } else {
                SimVal::Arr(Matrix::scalar(z))
            });
        }
    }
    if deopt == ops.len() {
        for &class in OpClass::ALL {
            let cnt = ch.real_counts[class as usize];
            if cnt != 0 {
                exec.charge(class, cnt as u64);
            }
        }
        return Ok(());
    }
    // Deoptimized tail: ops[..deopt] completed with all-real charges
    // pending; settle them, then run the rest with exact accounting.
    for op in &ops[..deopt] {
        chain_charge_real(exec, op);
    }
    chain_run_exact(exec, env, ops, deopt, &mut tmps)
}

/// Reads one chain source: an immediate, a temp produced earlier in the
/// chain, or a guarded scalar environment slot.
#[inline(always)]
fn rd(s: CSrc, tmps: &[Cx; CHAIN_MAX], env: &Env) -> Cx {
    match s {
        CSrc::Const(z) => z,
        CSrc::Tmp(t) => tmps[t as usize],
        CSrc::Env(slot) => match &env[slot as usize] {
            Some(SimVal::Scalar(z)) => *z,
            _ => unreachable!("guarded scalar slot"),
        },
    }
}

#[cold]
fn load1_oob(k: i64, numel: usize, span: Span) -> SimError {
    SimError::new(format!("index {} out of bounds ({})", k + 1, numel), span)
}

#[cold]
fn load2_oob(r0: i64, c0: i64, span: Span) -> SimError {
    SimError::new(
        format!("index ({}, {}) out of bounds", r0 + 1, c0 + 1),
        span,
    )
}

#[cold]
fn store1_oob(k: i64, total: usize, span: Span) -> SimError {
    SimError::new(format!("store index {} out of bounds ({total})", k + 1), span)
}

/// Error exit from the optimistic pass at op `i`: settles the deferred
/// all-real charges for `ops[..i]` plus the failing op's own charges
/// (which the micro issues before raising the bounds error), then
/// propagates the error.
#[cold]
fn chain_oob(
    exec: &mut Exec<'_>,
    ops: &[ChainOp],
    i: usize,
    err: SimError,
) -> Result<(), SimError> {
    for op in &ops[..=i] {
        chain_charge_real(exec, op);
    }
    Err(err)
}

/// The exact per-op charge sequence of one chain op with real inputs;
/// must mirror `chain_real_counts` (fuse.rs) and the micro handlers.
fn chain_charge_real(exec: &mut Exec<'_>, op: &ChainOp) {
    match &op.kind {
        CKind::Bin { class, .. } => exec.charge(*class, 1),
        CKind::Un(_) | CKind::Copy => exec.charge(OpClass::ScalarAlu, 1),
        CKind::Load1 { .. } => {
            exec.charge(OpClass::ScalarAlu, 1);
            exec.charge(OpClass::Load, 1);
        }
        CKind::Load2 { .. } => {
            exec.charge(OpClass::ScalarAlu, 2);
            exec.charge(OpClass::Load, 1);
        }
        CKind::Store1 { .. } => {
            exec.charge(OpClass::ScalarAlu, 1);
            exec.charge(OpClass::Store, 1);
        }
        CKind::Store2 { .. } => {
            exec.charge(OpClass::ScalarAlu, 2);
            exec.charge(OpClass::Store, 1);
        }
    }
}

/// Finishes a chain from op `start` with exact per-op accounting (the
/// deoptimized path, taken once a complex value appears). Fuel for the
/// whole chain was already subtracted.
#[inline(never)]
fn chain_run_exact(
    exec: &mut Exec<'_>,
    env: &mut Env,
    ops: &[ChainOp],
    start: usize,
    tmps: &mut [Cx; CHAIN_MAX],
) -> Result<(), SimError> {
    for (i, op) in ops.iter().enumerate().skip(start) {
        let z = match &op.kind {
            CKind::Bin { op: bop, class, evalf } => {
                let x = rd(op.a, tmps, env);
                let y = rd(op.b, tmps, env);
                if x.is_real() && y.is_real() {
                    exec.charge(*class, 1);
                } else {
                    exec.scalar_binop_cost(*bop, true);
                }
                evalf(x, y)
            }
            CKind::Un(uop) => {
                let x = rd(op.a, tmps, env);
                exec.charge(OpClass::ScalarAlu, 1);
                apply_unop(*uop, x)
            }
            CKind::Copy => {
                let x = rd(op.a, tmps, env);
                exec.charge(OpClass::ScalarAlu, 1);
                x
            }
            CKind::Load1 { arr } => {
                let k = rd(op.a, tmps, env).re as i64 - 1;
                let (elem, numel) = match &env[*arr as usize] {
                    Some(SimVal::Arr(m)) => (
                        m.data().get(k.max(0) as usize).copied().filter(|_| k >= 0),
                        m.numel(),
                    ),
                    _ => unreachable!("guarded array slot"),
                };
                exec.charge(OpClass::ScalarAlu, 1);
                exec.charge(OpClass::Load, 1);
                match elem {
                    Some(z) => z,
                    None => return Err(load1_oob(k, numel, op.span)),
                }
            }
            CKind::Load2 { arr } => {
                let r0 = rd(op.a, tmps, env).re as i64 - 1;
                let c0 = rd(op.b, tmps, env).re as i64 - 1;
                let elem = match &env[*arr as usize] {
                    Some(SimVal::Arr(m)) => {
                        let ok = r0 >= 0
                            && c0 >= 0
                            && (r0 as usize) < m.rows()
                            && (c0 as usize) < m.cols();
                        ok.then(|| m.at(r0 as usize, c0 as usize))
                    }
                    _ => unreachable!("guarded array slot"),
                };
                exec.charge(OpClass::ScalarAlu, 2);
                exec.charge(OpClass::Load, 1);
                match elem {
                    Some(z) => z,
                    None => return Err(load2_oob(r0, c0, op.span)),
                }
            }
            CKind::Store1 { arr } => {
                let k = z_index(rd(op.a, tmps, env));
                let zval = rd(op.b, tmps, env);
                exec.charge(OpClass::ScalarAlu, 1);
                exec.charge(OpClass::Store, 1);
                let Some(SimVal::Arr(m)) = &mut env[*arr as usize] else {
                    unreachable!("guarded array slot")
                };
                let total = m.numel();
                if k < 0 || k as usize >= total {
                    return Err(store1_oob(k, total, op.span));
                }
                m.data_mut()[k as usize] = zval;
                continue;
            }
            CKind::Store2 { arr } => {
                let r0 = z_index(rd(op.a, tmps, env));
                let c0 = z_index(rd(op.b, tmps, env));
                let zval = rd(op.c, tmps, env);
                exec.charge(OpClass::ScalarAlu, 2);
                exec.charge(OpClass::Store, 1);
                let Some(SimVal::Arr(m)) = &mut env[*arr as usize] else {
                    unreachable!("guarded array slot")
                };
                if r0 < 0 || c0 < 0 || r0 as usize >= m.rows() || c0 as usize >= m.cols() {
                    return Err(SimError::new("2-D store out of bounds", op.span));
                }
                *m.at_mut(r0 as usize, c0 as usize) = zval;
                continue;
            }
        };
        tmps[i] = z;
        if op.env_dst != u32::MAX {
            env[op.env_dst as usize] = Some(if op.scalar_dst {
                SimVal::Scalar(z)
            } else {
                SimVal::Arr(Matrix::scalar(z))
            });
        }
    }
    Ok(())
}

/// The chain's slow path: replays the original micro sequence.
#[inline(never)]
fn run_chain_fallback(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    micros: &[Micro],
) -> Result<(), SimError> {
    for m in micros {
        (m.run)(exec, f, env, &m.data)?;
    }
    Ok(())
}

fn micro_def_generic(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Def {
        dst,
        scalar_dst,
        rv,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    let val = exec.eval_rvalue(f, env, *dst, rv, *span)?;
    def_finish(env, *dst, *scalar_dst, val);
    Ok(())
}

fn micro_store_generic(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::Store {
        array,
        indices,
        value,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    exec.exec_store(f, env, *array, indices, *value, *span)
}

// ---- step handlers --------------------------------------------------------

fn step_super(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    _frames: &mut Vec<Frame>,
    step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    let NData::Super(micros) = &step.data else {
        unreachable!()
    };
    for m in micros {
        (m.run)(exec, f, env, &m.data)?;
    }
    Ok(pc + 1)
}

fn step_branch_burning(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    frames: &mut Vec<Frame>,
    step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    exec.burn(Span::dummy())?;
    step_branch(exec, f, env, frames, step, pc)
}

fn step_branch(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    frames: &mut Vec<Frame>,
    step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    let NData::Branch {
        cond,
        if_false,
        exit_loop,
        span,
    } = &step.data
    else {
        unreachable!()
    };
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    exec.charge(OpClass::Branch, 1);
    if exec.truthy(f, env, *cond)? {
        Ok(pc + 1)
    } else {
        if *exit_loop {
            frames.pop();
        }
        Ok(*if_false)
    }
}

fn step_jump(
    _exec: &mut Exec<'_>,
    _f: &MirFunction,
    _env: &mut Env,
    _frames: &mut Vec<Frame>,
    step: &NStep,
    _pc: u32,
) -> Result<u32, SimError> {
    let NData::Jump { target } = &step.data else {
        unreachable!()
    };
    Ok(*target)
}

fn step_for_setup(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    frames: &mut Vec<Frame>,
    step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    let NData::ForSetup {
        var,
        start,
        step: st_op,
        stop,
    } = &step.data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    let span = Span::dummy();
    let s = exec.real_of(f, env, *start, span)?;
    let st = exec.real_of(f, env, *st_op, span)?;
    let e = exec.real_of(f, env, *stop, span)?;
    let n = if st == 0.0 {
        0
    } else {
        (((e - s) / st + 1e-10).floor() as i64 + 1).max(0)
    };
    frames.push(Frame::For {
        var: *var,
        s,
        st,
        n,
        k: 0,
    });
    Ok(pc + 1)
}

fn step_for_next(
    exec: &mut Exec<'_>,
    _f: &MirFunction,
    env: &mut Env,
    frames: &mut Vec<Frame>,
    step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    let NData::ForNext { end, span } = &step.data else {
        unreachable!()
    };
    let Some(Frame::For { var, s, st, n, k }) = frames.last_mut() else {
        unreachable!("ForNext without a for frame");
    };
    if *k >= *n {
        frames.pop();
        Ok(*end)
    } else {
        let (var, value) = (*var, *s + *st * *k as f64);
        *k += 1;
        exec.burn(Span::dummy())?;
        if exec.profile.is_some() {
            exec.cur_span = *span;
        }
        // Loop control: induction update + branch.
        exec.charge(OpClass::ScalarAlu, 1);
        exec.charge(OpClass::Branch, 1);
        exec.set(env, var, SimVal::scalar(value));
        Ok(pc + 1)
    }
}

fn step_while_enter(
    exec: &mut Exec<'_>,
    _f: &MirFunction,
    _env: &mut Env,
    frames: &mut Vec<Frame>,
    _step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    exec.burn(Span::dummy())?;
    frames.push(Frame::While);
    Ok(pc + 1)
}

fn step_while_iter(
    exec: &mut Exec<'_>,
    _f: &MirFunction,
    _env: &mut Env,
    _frames: &mut Vec<Frame>,
    _step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    exec.burn(Span::dummy())?;
    Ok(pc + 1)
}

fn step_break(
    exec: &mut Exec<'_>,
    _f: &MirFunction,
    _env: &mut Env,
    frames: &mut Vec<Frame>,
    step: &NStep,
    _pc: u32,
) -> Result<u32, SimError> {
    let NData::Loop { target } = &step.data else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    frames.pop();
    Ok(*target)
}

fn step_continue(
    exec: &mut Exec<'_>,
    _f: &MirFunction,
    _env: &mut Env,
    _frames: &mut Vec<Frame>,
    step: &NStep,
    _pc: u32,
) -> Result<u32, SimError> {
    let NData::Loop { target } = &step.data else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    Ok(*target)
}

fn step_return(
    exec: &mut Exec<'_>,
    _f: &MirFunction,
    _env: &mut Env,
    _frames: &mut Vec<Frame>,
    _step: &NStep,
    _pc: u32,
) -> Result<u32, SimError> {
    exec.burn(Span::dummy())?;
    Ok(u32::MAX)
}

fn step_call_multi(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    _frames: &mut Vec<Frame>,
    step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    let NData::CallMulti {
        dsts,
        func,
        args,
        user,
        span,
    } = &step.data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    exec.exec_call_multi(f, env, dsts, func, args, *user, *span)?;
    Ok(pc + 1)
}

fn step_effect(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    _frames: &mut Vec<Frame>,
    step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    let NData::Effect { name, args, span } = &step.data else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    exec.exec_effect(f, env, name, args, *span)?;
    Ok(pc + 1)
}

// ---- vector fast path -----------------------------------------------------

fn step_vector(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    _frames: &mut Vec<Frame>,
    step: &NStep,
    pc: u32,
) -> Result<u32, SimError> {
    let NData::Vector(vop) = &step.data else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = vop.span;
    }
    // Same prologue as `Exec::exec_vector_op`: length, then charges, then
    // lane semantics.
    let span = vop.span;
    let len_f = exec.real_of(f, env, vop.len, span)?;
    let len = if len_f > 0.0 { len_f as usize } else { 0 };
    let inputs = 1 + u64::from(vop.b.is_some());
    let is_store = !matches!(vop.kind, VecKind::Mac | VecKind::Reduce(_));
    exec.charge_vector_op(vop, len as u64, inputs, is_store);
    if len == 0 {
        return Ok(pc + 1);
    }
    if !vector_fast(exec, f, env, vop, len) {
        exec.vector_op_lanes(f, env, vop, len)?;
    }
    Ok(pc + 1)
}

/// A resolved lane reference whose bounds are already validated: either a
/// splat scalar or a strided in-bounds window over an array register.
#[derive(Clone, Copy)]
enum Lanes {
    Splat(Cx),
    Slice { var: VarId, s: i64, st: i64 },
}

/// Resolves a `VecRef` for the allocation-free path: slice base must be an
/// array register with scalar start/step and every lane position in
/// bounds. `None` means "fall back to the generic path" (which re-derives
/// the identical error or semantics).
#[inline]
fn resolve_lanes(env: &Env, r: &VecRef, len: usize) -> Option<Lanes> {
    match r {
        VecRef::Splat(op) => slot_scalar(env, *op).ok().flatten().map(Lanes::Splat),
        VecRef::Slice { array, start, step } => {
            let s = slot_scalar(env, *start).ok().flatten()?.re as i64 - 1;
            let st = slot_scalar(env, *step).ok().flatten()?.re as i64;
            let Some(SimVal::Arr(m)) = &env[array.0 as usize] else {
                return None;
            };
            let last = s + st * (len as i64 - 1);
            let (lo, hi) = if st >= 0 { (s, last) } else { (last, s) };
            if lo < 0 || hi >= m.numel() as i64 {
                return None;
            }
            Some(Lanes::Slice {
                var: *array,
                s,
                st,
            })
        }
    }
}

/// Executes a vector op's lane semantics without the generic path's
/// per-lane bounds `Result`s and temporary lane `Vec`s. Returns `false`
/// (having touched nothing) when any precondition fails; once it commits,
/// it cannot fail, and the values written are bit-identical to
/// `Exec::vector_op_lanes` — same element order, same float accumulation
/// sequence.
fn vector_fast(
    exec: &mut Exec<'_>,
    _f: &MirFunction,
    env: &mut Env,
    vop: &VectorOp,
    len: usize,
) -> bool {
    match &vop.kind {
        VecKind::Mac | VecKind::Reduce(_) => {
            let VecRef::Splat(Operand::Var(acc_var)) = vop.dst else {
                return false;
            };
            let acc0 = match &env[acc_var.0 as usize] {
                Some(SimVal::Scalar(z)) => *z,
                _ => return false,
            };
            let Some(la) = resolve_lanes(env, &vop.a, len) else {
                return false;
            };
            let lb = match &vop.b {
                Some(r) => match resolve_lanes(env, r, len) {
                    Some(l) => Some(l),
                    None => return false,
                },
                None => None,
            };
            let data_of = |l: &Lanes| -> &[Cx] {
                match l {
                    Lanes::Splat(_) => &[],
                    Lanes::Slice { var, .. } => match &env[var.0 as usize] {
                        Some(SimVal::Arr(m)) => m.data(),
                        _ => unreachable!(),
                    },
                }
            };
            let da = data_of(&la);
            let db = lb.as_ref().map(data_of).unwrap_or(&[]);
            let at = |l: Lanes, d: &[Cx], k: usize| -> Cx {
                match l {
                    Lanes::Splat(z) => z,
                    Lanes::Slice { s, st, .. } => d[(s + st * k as i64) as usize],
                }
            };
            let mut acc = acc0;
            match &vop.kind {
                VecKind::Mac => {
                    let lb = lb.expect("MAC has two inputs");
                    for k in 0..len {
                        acc = acc + at(la, da, k) * at(lb, db, k);
                    }
                }
                VecKind::Reduce(ReduceKind::Sum) => {
                    for k in 0..len {
                        acc = acc + at(la, da, k);
                    }
                }
                VecKind::Reduce(ReduceKind::Prod) => {
                    for k in 0..len {
                        acc = acc * at(la, da, k);
                    }
                }
                VecKind::Reduce(ReduceKind::Min) => {
                    for k in 0..len {
                        let z = at(la, da, k);
                        if z.re < acc.re {
                            acc = z;
                        }
                    }
                }
                VecKind::Reduce(ReduceKind::Max) => {
                    for k in 0..len {
                        let z = at(la, da, k);
                        if z.re > acc.re {
                            acc = z;
                        }
                    }
                }
                _ => unreachable!(),
            }
            exec.set(env, acc_var, SimVal::Scalar(acc));
            true
        }
        kind => {
            // Element-wise map writing a destination slice.
            let VecRef::Slice { array: dvar, .. } = &vop.dst else {
                return false;
            };
            // Lane computation must be infallible once committed.
            enum MapOp {
                Bin(BinOp),
                Un(UnOp),
                Builtin(fn(Cx) -> Cx),
                Copy,
            }
            let mop = match kind {
                VecKind::Map(BinOp::AndAnd | BinOp::OrOr) => return false,
                VecKind::Map(op) => MapOp::Bin(*op),
                VecKind::MapUnary(op) => MapOp::Un(*op),
                VecKind::MapBuiltin(name) => MapOp::Builtin(match name.as_str() {
                    "abs" => |z: Cx| Cx::real(z.abs()),
                    "conj" => |z: Cx| z.conj(),
                    "sqrt" => |z: Cx| z.sqrt(),
                    "real" => |z: Cx| Cx::real(z.re),
                    "imag" => |z: Cx| Cx::real(z.im),
                    "floor" => |z: Cx| Cx::real(z.re.floor()),
                    "ceil" => |z: Cx| Cx::real(z.re.ceil()),
                    "round" => |z: Cx| Cx::real(z.re.round()),
                    _ => return false,
                }),
                VecKind::Copy => MapOp::Copy,
                VecKind::Mac | VecKind::Reduce(_) => unreachable!(),
            };
            // The generic path snapshots input lanes before writing, so an
            // in-place destination aliasing an input is only safe if we
            // fall back.
            let aliases = |r: &VecRef| matches!(r, VecRef::Slice { array, .. } if array == dvar);
            if aliases(&vop.a) || vop.b.as_ref().is_some_and(aliases) {
                return false;
            }
            let Some(la) = resolve_lanes(env, &vop.a, len) else {
                return false;
            };
            let lb = match &vop.b {
                Some(r) => match resolve_lanes(env, r, len) {
                    Some(l) => Some(l),
                    None => return false,
                },
                None => None,
            };
            if matches!(kind, VecKind::Map(_)) && lb.is_none() {
                return false; // binary map always has two inputs
            }
            let Some(ld) = resolve_lanes(env, &vop.dst, len) else {
                return false;
            };
            let Lanes::Slice { s: ds, st: dst_st, .. } = ld else {
                unreachable!("dst resolved from a Slice")
            };
            // Take the destination out (same copy-on-write discipline as
            // `write_lanes`), then read inputs straight from the env.
            let Some(SimVal::Arr(mut base)) = env[dvar.0 as usize].take() else {
                unreachable!("dst resolved as Arr")
            };
            {
                let data_of = |l: &Lanes| -> &[Cx] {
                    match l {
                        Lanes::Splat(_) => &[],
                        Lanes::Slice { var, .. } => match &env[var.0 as usize] {
                            Some(SimVal::Arr(m)) => m.data(),
                            _ => unreachable!(),
                        },
                    }
                };
                let da = data_of(&la);
                let db = lb.as_ref().map(data_of).unwrap_or(&[]);
                let at = |l: Lanes, d: &[Cx], k: usize| -> Cx {
                    match l {
                        Lanes::Splat(z) => z,
                        Lanes::Slice { s, st, .. } => d[(s + st * k as i64) as usize],
                    }
                };
                let out = base.data_mut();
                for k in 0..len {
                    let av = at(la, da, k);
                    let z = match &mop {
                        MapOp::Bin(op) => {
                            let bv = at(lb.unwrap(), db, k);
                            apply_binop_scalar(*op, av, bv)
                                .expect("short-circuit ops excluded from fast path")
                        }
                        MapOp::Un(op) => apply_unop(*op, av),
                        MapOp::Builtin(bf) => bf(av),
                        MapOp::Copy => av,
                    };
                    out[(ds + dst_st * k as i64) as usize] = z;
                }
            }
            env[dvar.0 as usize] = Some(SimVal::Arr(base));
            true
        }
    }
}

// ---- slice micro-ops -------------------------------------------------------
//
// Direct gather/scatter for slice-like subscripts, replacing the generic
// `slice_positions` path (which materializes per-axis index lists and a
// flat position vector) with closed-form axis iterators — no allocation
// beyond the result payload. Charges and error order are exactly those of
// `eval_index_slices`/`store_slices`: axis operands are read (and
// negativity rejected) before any charge, charges land before bounds
// errors, and gather order is column-outer/row-inner.

/// A resolved subscript axis: 0-based positions `elem(0..len)`.
#[derive(Clone, Copy)]
enum RAxis {
    /// One scalar position.
    One(i64),
    /// `0, 1, .., n-1` (a `:` over an axis of length `n`).
    Iota(usize),
    /// The `start:step:stop` list; elements reproduce `slice_positions`'s
    /// float evaluation exactly.
    Rng { s: f64, st: f64, len: usize },
}

impl RAxis {
    fn len(self) -> usize {
        match self {
            RAxis::One(_) => 1,
            RAxis::Iota(n) => n,
            RAxis::Rng { len, .. } => len,
        }
    }

    #[inline(always)]
    fn elem(self, k: usize) -> i64 {
        match self {
            RAxis::One(v) => v,
            RAxis::Iota(_) => k as i64,
            RAxis::Rng { s, st, .. } => (s + st * k as f64) as i64 - 1,
        }
    }

    /// `(smallest, largest)` element; only meaningful when `len() > 0`.
    /// Range lists are monotone in `k` (truncation preserves order), so
    /// the extremes sit at the ends.
    fn bounds(self) -> (i64, i64) {
        match self {
            RAxis::One(v) => (v, v),
            RAxis::Iota(n) => (0, n as i64 - 1),
            RAxis::Rng { len, .. } => {
                let (a, b) = (self.elem(0), self.elem(len - 1));
                (a.min(b), a.max(b))
            }
        }
    }
}

impl<'a> Exec<'a> {
    /// Evaluates one axis of a slice subscript, reading operands in the
    /// same order (and with the same errors) as `slice_positions`.
    fn resolve_axis(
        &mut self,
        f: &MirFunction,
        env: &Env,
        sel: &AxisSel,
        full_len: usize,
        span: Span,
    ) -> Result<RAxis, SimError> {
        match sel {
            AxisSel::Pos(op) => Ok(RAxis::One(self.index0(f, env, *op, span)?)),
            AxisSel::Full => Ok(RAxis::Iota(full_len)),
            AxisSel::Range { start, step, stop } => {
                let s = self.real_of(f, env, *start, span)?;
                let st = self.real_of(f, env, *step, span)?;
                let e = self.real_of(f, env, *stop, span)?;
                if st == 0.0 {
                    return Ok(RAxis::Rng { s, st, len: 0 });
                }
                let len = (((e - s) / st + 1e-10).floor() as i64 + 1).max(0) as usize;
                Ok(RAxis::Rng { s, st, len })
            }
        }
    }
}

#[cold]
fn slice_oob(p: usize, span: Span) -> SimError {
    SimError::new(format!("slice index {} out of bounds", p + 1), span)
}

#[cold]
fn store_slice_oob(p: usize, total: usize, span: Span) -> SimError {
    SimError::new(
        format!("store slice {} out of bounds ({total})", p + 1),
        span,
    )
}

/// `dst = arr(sel)` for one slice-like subscript (`Range` or `Full`).
fn micro_slice_load_lin(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::SliceLoadLin {
        arr,
        sel,
        dst,
        scalar_dst,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    // Base first, like `eval_index`.
    let base = match &env[arr.0 as usize] {
        Some(SimVal::Arr(m)) => m.clone(),
        Some(SimVal::Scalar(z)) => Matrix::scalar(*z),
        None => return Err(unset_err(f, *arr, *span)),
    };
    let ax = exec.resolve_axis(f, env, sel, base.numel(), *span)?;
    let n = ax.len();
    let mut out = Vec::with_capacity(n);
    if n > 0 {
        let (lo, hi) = ax.bounds();
        if lo < 0 {
            return Err(SimError::new("index must be positive", *span));
        }
        exec.charge(OpClass::Load, n as u64);
        exec.charge(OpClass::Store, n as u64);
        exec.charge(OpClass::Branch, n as u64);
        let bd = base.data();
        if (hi as usize) < bd.len() {
            for k in 0..n {
                out.push(bd[ax.elem(k) as usize]);
            }
        } else {
            // Exact first-out-of-bounds position, like the generic path.
            for k in 0..n {
                let p = ax.elem(k) as usize;
                if p >= bd.len() {
                    return Err(slice_oob(p, *span));
                }
                out.push(bd[p]);
            }
        }
    } else {
        exec.charge(OpClass::Load, 0);
        exec.charge(OpClass::Store, 0);
        exec.charge(OpClass::Branch, 0);
    }
    // `x(a:b)` yields a row, `x(:)` a column (as `slice_positions` shapes).
    let m = match sel {
        AxisSel::Full => Matrix::new(n, 1, out),
        _ => Matrix::new(1, n, out),
    };
    def_finish(env, *dst, *scalar_dst, SimVal::Arr(m));
    Ok(())
}

/// `dst = arr(rsel, csel)` with at least one slice-like axis.
fn micro_slice_load_2d(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::SliceLoad2 {
        arr,
        rsel,
        csel,
        dst,
        scalar_dst,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    let base = match &env[arr.0 as usize] {
        Some(SimVal::Arr(m)) => m.clone(),
        Some(SimVal::Scalar(z)) => Matrix::scalar(*z),
        None => return Err(unset_err(f, *arr, *span)),
    };
    let ra = exec.resolve_axis(f, env, rsel, base.rows(), *span)?;
    let ca = exec.resolve_axis(f, env, csel, base.cols(), *span)?;
    let (rn, cn) = (ra.len(), ca.len());
    let n = rn * cn;
    let mut out = Vec::with_capacity(n);
    if rn > 0 && cn > 0 {
        let (rlo, rhi) = ra.bounds();
        let (clo, chi) = ca.bounds();
        if rlo < 0 || clo < 0 {
            return Err(SimError::new("index must be positive", *span));
        }
        exec.charge(OpClass::Load, n as u64);
        exec.charge(OpClass::Store, n as u64);
        exec.charge(OpClass::Branch, n as u64);
        let rows = base.rows();
        let bd = base.data();
        if (chi as usize) * rows + (rhi as usize) < bd.len() {
            for jc in 0..cn {
                let coff = ca.elem(jc) as usize * rows;
                for ir in 0..rn {
                    out.push(bd[coff + ra.elem(ir) as usize]);
                }
            }
        } else {
            for jc in 0..cn {
                let coff = ca.elem(jc) as usize * rows;
                for ir in 0..rn {
                    let p = coff + ra.elem(ir) as usize;
                    if p >= bd.len() {
                        return Err(slice_oob(p, *span));
                    }
                    out.push(bd[p]);
                }
            }
        }
    } else {
        exec.charge(OpClass::Load, 0);
        exec.charge(OpClass::Store, 0);
        exec.charge(OpClass::Branch, 0);
    }
    def_finish(env, *dst, *scalar_dst, SimVal::Arr(Matrix::new(rn, cn, out)));
    Ok(())
}

/// `arr(sel) = value` for one slice-like subscript.
fn micro_slice_store_lin(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::SliceStoreLin {
        arr,
        sel,
        value,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    // Value first, then the base is *taken* for in-place mutation — the
    // same sequence (and therefore error order) as `exec_store`.
    let val = exec.operand(f, env, *value, *span)?;
    let mut base = match env[arr.0 as usize].take() {
        Some(SimVal::Arr(m)) => m,
        Some(SimVal::Scalar(z)) => Matrix::scalar(z),
        None => return Err(unset_err(f, *arr, *span)),
    };
    let ax = exec.resolve_axis(f, env, sel, base.numel(), *span)?;
    let n = ax.len();
    if n > 0 {
        let (lo, hi) = ax.bounds();
        if lo < 0 {
            return Err(SimError::new("index must be positive", *span));
        }
        exec.charge(OpClass::Store, n as u64);
        exec.charge(OpClass::Branch, n as u64);
        let total = base.numel();
        match &val {
            SimVal::Scalar(z) => {
                let bd = base.data_mut();
                if (hi as usize) < bd.len() {
                    for k in 0..n {
                        bd[ax.elem(k) as usize] = *z;
                    }
                } else {
                    for k in 0..n {
                        let p = ax.elem(k) as usize;
                        match bd.get_mut(p) {
                            Some(slot) => *slot = *z,
                            None => return Err(store_slice_oob(p, total, *span)),
                        }
                    }
                }
            }
            SimVal::Arr(src) => {
                exec.charge(OpClass::Load, n as u64);
                if src.numel() != n {
                    return Err(SimError::new("store size mismatch", *span));
                }
                let src = src.clone();
                let bd = base.data_mut();
                if (hi as usize) < bd.len() {
                    for k in 0..n {
                        bd[ax.elem(k) as usize] = src.lin(k);
                    }
                } else {
                    for k in 0..n {
                        let p = ax.elem(k) as usize;
                        match bd.get_mut(p) {
                            Some(slot) => *slot = src.lin(k),
                            None => return Err(store_slice_oob(p, total, *span)),
                        }
                    }
                }
            }
        }
    } else {
        exec.charge(OpClass::Store, 0);
        exec.charge(OpClass::Branch, 0);
        if let SimVal::Arr(src) = &val {
            exec.charge(OpClass::Load, 0);
            if src.numel() != 0 {
                return Err(SimError::new("store size mismatch", *span));
            }
        }
    }
    env[arr.0 as usize] = Some(SimVal::Arr(base));
    Ok(())
}

/// `arr(rsel, csel) = value` with at least one slice-like axis.
fn micro_slice_store_2d(
    exec: &mut Exec<'_>,
    f: &MirFunction,
    env: &mut Env,
    data: &MicroData,
) -> Result<(), SimError> {
    let MicroData::SliceStore2 {
        arr,
        rsel,
        csel,
        value,
        span,
    } = data
    else {
        unreachable!()
    };
    exec.burn(Span::dummy())?;
    if exec.profile.is_some() {
        exec.cur_span = *span;
    }
    let val = exec.operand(f, env, *value, *span)?;
    let mut base = match env[arr.0 as usize].take() {
        Some(SimVal::Arr(m)) => m,
        Some(SimVal::Scalar(z)) => Matrix::scalar(z),
        None => return Err(unset_err(f, *arr, *span)),
    };
    let ra = exec.resolve_axis(f, env, rsel, base.rows(), *span)?;
    let ca = exec.resolve_axis(f, env, csel, base.cols(), *span)?;
    let (rn, cn) = (ra.len(), ca.len());
    let n = rn * cn;
    if rn > 0 && cn > 0 {
        let (rlo, rhi) = ra.bounds();
        let (clo, chi) = ca.bounds();
        if rlo < 0 || clo < 0 {
            return Err(SimError::new("index must be positive", *span));
        }
        exec.charge(OpClass::Store, n as u64);
        exec.charge(OpClass::Branch, n as u64);
        let total = base.numel();
        let rows = base.rows();
        match &val {
            SimVal::Scalar(z) => {
                let bd = base.data_mut();
                if (chi as usize) * rows + (rhi as usize) < bd.len() {
                    for jc in 0..cn {
                        let coff = ca.elem(jc) as usize * rows;
                        for ir in 0..rn {
                            bd[coff + ra.elem(ir) as usize] = *z;
                        }
                    }
                } else {
                    for jc in 0..cn {
                        let coff = ca.elem(jc) as usize * rows;
                        for ir in 0..rn {
                            let p = coff + ra.elem(ir) as usize;
                            match bd.get_mut(p) {
                                Some(slot) => *slot = *z,
                                None => return Err(store_slice_oob(p, total, *span)),
                            }
                        }
                    }
                }
            }
            SimVal::Arr(src) => {
                exec.charge(OpClass::Load, n as u64);
                if src.numel() != n {
                    return Err(SimError::new("store size mismatch", *span));
                }
                let src = src.clone();
                let bd = base.data_mut();
                if (chi as usize) * rows + (rhi as usize) < bd.len() {
                    let mut k = 0usize;
                    for jc in 0..cn {
                        let coff = ca.elem(jc) as usize * rows;
                        for ir in 0..rn {
                            bd[coff + ra.elem(ir) as usize] = src.lin(k);
                            k += 1;
                        }
                    }
                } else {
                    let mut k = 0usize;
                    for jc in 0..cn {
                        let coff = ca.elem(jc) as usize * rows;
                        for ir in 0..rn {
                            let p = coff + ra.elem(ir) as usize;
                            match bd.get_mut(p) {
                                Some(slot) => *slot = src.lin(k),
                                None => return Err(store_slice_oob(p, total, *span)),
                            }
                            k += 1;
                        }
                    }
                }
            }
        }
    } else {
        exec.charge(OpClass::Store, 0);
        exec.charge(OpClass::Branch, 0);
        if let SimVal::Arr(src) = &val {
            exec.charge(OpClass::Load, 0);
            if src.numel() != n {
                return Err(SimError::new("store size mismatch", *span));
            }
        }
    }
    env[arr.0 as usize] = Some(SimVal::Arr(base));
    Ok(())
}
