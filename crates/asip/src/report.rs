//! Cycle accounting.

use matic_isa::OpClass;
use std::collections::BTreeMap;
use std::fmt;

/// Cycle counts accumulated during one simulated kernel invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleReport {
    /// Total cycles.
    pub total: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Cycles attributed per operation class.
    pub by_class: BTreeMap<OpClass, u64>,
}

impl CycleReport {
    /// Creates an empty report.
    pub fn new() -> CycleReport {
        CycleReport::default()
    }

    /// Charges `count` issues of `class` at `cycles_each`.
    pub fn charge(&mut self, class: OpClass, cycles_each: u32, count: u64) {
        self.total += cycles_each as u64 * count;
        self.instructions += count;
        *self.by_class.entry(class).or_default() += cycles_each as u64 * count;
    }

    /// Cycles attributed to one class.
    pub fn cycles_for(&self, class: OpClass) -> u64 {
        self.by_class.get(&class).copied().unwrap_or(0)
    }

    /// Cycles spent in vector (SIMD) instruction classes.
    pub fn vector_cycles(&self) -> u64 {
        self.by_class
            .iter()
            .filter(|(c, _)| c.is_vector())
            .map(|(_, v)| *v)
            .sum()
    }

    /// Cycles spent in complex-arithmetic instruction classes.
    pub fn complex_cycles(&self) -> u64 {
        self.by_class
            .iter()
            .filter(|(c, _)| c.is_complex())
            .map(|(_, v)| *v)
            .sum()
    }

    /// Merges another report into this one.
    pub fn absorb(&mut self, other: &CycleReport) {
        self.total += other.total;
        self.instructions += other.instructions;
        for (c, v) in &other.by_class {
            *self.by_class.entry(*c).or_default() += v;
        }
    }
}

impl fmt::Display for CycleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cycles / {} instructions",
            self.total, self.instructions
        )?;
        for (c, v) in &self.by_class {
            writeln!(f, "  {c:>8}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut r = CycleReport::new();
        r.charge(OpClass::ScalarMul, 2, 10);
        r.charge(OpClass::VectorMac, 2, 4);
        assert_eq!(r.total, 28);
        assert_eq!(r.instructions, 14);
        assert_eq!(r.cycles_for(OpClass::ScalarMul), 20);
        assert_eq!(r.vector_cycles(), 8);
    }

    #[test]
    fn absorb_merges() {
        let mut a = CycleReport::new();
        a.charge(OpClass::Load, 2, 3);
        let mut b = CycleReport::new();
        b.charge(OpClass::Load, 2, 1);
        b.charge(OpClass::Branch, 1, 5);
        a.absorb(&b);
        assert_eq!(a.cycles_for(OpClass::Load), 8);
        assert_eq!(a.total, 13);
    }
}
