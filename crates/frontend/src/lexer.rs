//! Lexer for the MATLAB subset.
//!
//! Handles the MATLAB-specific quirks that make this language unusual to
//! tokenize:
//!
//! * `'` is either a **transpose** operator or a **string** opener, decided
//!   by the preceding token ([`TokenKind::allows_postfix_quote`]);
//! * newlines are statement separators and therefore significant;
//! * `...` continues a logical line, swallowing the rest of the physical
//!   line (including a trailing comment);
//! * `%` starts a line comment, `%{` / `%}` a block comment;
//! * numbers may carry an `i`/`j` suffix producing an imaginary literal.

use crate::diag::{Diagnostic, DiagnosticBag};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `src`, returning the token stream and any diagnostics.
///
/// The stream always terminates with a single [`TokenKind::Eof`] token.
/// Lexing recovers from invalid characters (skipping them with an error
/// diagnostic) so the parser always receives a well-formed stream.
///
/// # Examples
///
/// ```
/// use matic_frontend::lexer::lex;
/// use matic_frontend::token::TokenKind;
///
/// let (tokens, diags) = lex("y = x';");
/// assert!(!diags.has_errors());
/// assert!(tokens.iter().any(|t| t.kind == TokenKind::Transpose));
/// ```
pub fn lex(src: &str) -> (Vec<Token>, DiagnosticBag) {
    let mut lexer = Lexer::new(src);
    lexer.run();
    (lexer.tokens, lexer.diags)
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: DiagnosticBag,
    /// Whether whitespace was seen since the previous token.
    pending_space: bool,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            diags: DiagnosticBag::new(),
            pending_space: false,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn last_kind(&self) -> Option<&TokenKind> {
        self.tokens.last().map(|t| &t.kind)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        let span = Span::new(start as u32, self.pos as u32);
        let space = std::mem::take(&mut self.pending_space);
        self.tokens.push(Token::with_space(kind, span, space));
    }

    fn run(&mut self) {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    self.pending_space = true;
                }
                b'\n' => {
                    self.pos += 1;
                    // Collapse runs of newlines into one separator and skip
                    // a leading separator entirely.
                    if !matches!(self.last_kind(), None | Some(TokenKind::Newline)) {
                        self.push(TokenKind::Newline, start);
                    }
                    self.pending_space = false;
                }
                b'%' => self.lex_comment(),
                b'.' => {
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        self.lex_number(start);
                    } else {
                        self.lex_dot_operator(start);
                    }
                }
                b'0'..=b'9' => self.lex_number(start),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                b'\'' => {
                    let transpose = self.last_kind().is_some_and(|k| k.allows_postfix_quote())
                        && !self.pending_space_blocks_transpose();
                    if transpose {
                        self.pos += 1;
                        self.push(TokenKind::Transpose, start);
                    } else {
                        self.lex_string(start);
                    }
                }
                b'"' => self.lex_dquote_string(start),
                _ => self.lex_operator(start),
            }
        }
        let end = self.pos;
        // Ensure a trailing newline separator before EOF so the parser can
        // treat "statement then separator" uniformly.
        if !matches!(self.last_kind(), None | Some(TokenKind::Newline)) {
            self.push(TokenKind::Newline, end);
        }
        self.push(TokenKind::Eof, end);
    }

    /// `x '` with a space in statement position starts a string in MATLAB,
    /// but `x'` is a transpose. Outside brackets MATLAB actually still
    /// treats `x '` as transpose in expression context; inside command
    /// syntax it differs. We only block the transpose reading when the
    /// quote is preceded by whitespace *and* the previous token ends an
    /// expression that whitespace could separate in a matrix literal —
    /// the parser-level space rule needs `[a 'str']` to lex as a string.
    fn pending_space_blocks_transpose(&self) -> bool {
        self.pending_space && self.in_bracket_context()
    }

    /// Crude but effective bracket-depth scan over the tokens so far.
    fn in_bracket_context(&self) -> bool {
        let mut depth = 0i32;
        for t in &self.tokens {
            match t.kind {
                TokenKind::LBracket => depth += 1,
                TokenKind::RBracket => depth -= 1,
                _ => {}
            }
        }
        depth > 0
    }

    fn lex_comment(&mut self) {
        // Block comment `%{` must be alone on its line in MATLAB; we accept
        // it anywhere a line comment could start.
        if self.peek_at(1) == Some(b'{') {
            let start = self.pos;
            self.pos += 2;
            let mut depth = 1;
            while self.pos < self.bytes.len() && depth > 0 {
                if self.bytes[self.pos] == b'%' && self.peek_at(1) == Some(b'{') {
                    depth += 1;
                    self.pos += 2;
                } else if self.bytes[self.pos] == b'%' && self.peek_at(1) == Some(b'}') {
                    depth -= 1;
                    self.pos += 2;
                } else {
                    self.pos += 1;
                }
            }
            if depth > 0 {
                self.diags.push(Diagnostic::warning(
                    "unterminated block comment",
                    Span::new(start as u32, self.pos as u32),
                ));
            }
        } else {
            while self.peek().is_some_and(|b| b != b'\n') {
                self.pos += 1;
            }
        }
        self.pending_space = true;
    }

    fn lex_number(&mut self, start: usize) {
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            // `1.*x`, `1./x`, `1.^x`, `1.\x`, `2.'` keep the dot with the
            // operator; otherwise the dot belongs to the number.
            let next = self.peek_at(1);
            let dot_is_operator = matches!(
                next,
                Some(b'*') | Some(b'/') | Some(b'\\') | Some(b'^') | Some(b'\'')
            );
            if !dot_is_operator {
                self.pos += 1;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut ahead = 1;
            if matches!(self.peek_at(1), Some(b'+') | Some(b'-')) {
                ahead = 2;
            }
            if self.peek_at(ahead).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += ahead;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        let value: f64 = match text.parse() {
            Ok(v) => v,
            Err(_) => {
                self.diags.push(Diagnostic::error(
                    format!("invalid numeric literal `{text}`"),
                    Span::new(start as u32, self.pos as u32),
                ));
                0.0
            }
        };
        // Imaginary suffix: a lone `i`/`j` that no identifier character
        // continues. Any other identifier characters glued to the literal
        // (`2in`, `3i4`, `2x`) are invalid — MATLAB rejects them — so
        // diagnose instead of silently re-tokenizing the tail as an
        // identifier.
        if matches!(self.peek(), Some(b'i') | Some(b'j'))
            && !self
                .peek_at(1)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
            self.push(TokenKind::Imaginary(value), start);
        } else if self
            .peek()
            .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_')
        {
            let tail_start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            self.diags.push(Diagnostic::error(
                format!(
                    "invalid imaginary suffix `{}` on numeric literal `{text}`",
                    &self.src[tail_start..self.pos]
                ),
                Span::new(start as u32, self.pos as u32),
            ));
            self.push(TokenKind::Number(value), start);
        } else {
            self.push(TokenKind::Number(value), start);
        }
    }

    fn lex_ident(&mut self, start: usize) {
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match TokenKind::keyword(text) {
            Some(kw) => self.push(kw, start),
            None => self.push(TokenKind::Ident(text.to_string()), start),
        }
    }

    fn lex_string(&mut self, start: usize) {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        value.push('\'');
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Some(b'\n') | None => {
                    self.diags.push(Diagnostic::error(
                        "unterminated string literal",
                        Span::new(start as u32, self.pos as u32),
                    ));
                    break;
                }
                Some(b) => value.push(b as char),
            }
        }
        self.push(TokenKind::Str(value), start);
    }

    fn lex_dquote_string(&mut self, start: usize) {
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        value.push('"');
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Some(b'\n') | None => {
                    self.diags.push(Diagnostic::error(
                        "unterminated string literal",
                        Span::new(start as u32, self.pos as u32),
                    ));
                    break;
                }
                Some(b) => value.push(b as char),
            }
        }
        self.push(TokenKind::Str(value), start);
    }

    fn lex_dot_operator(&mut self, start: usize) {
        self.pos += 1; // consume `.`
        match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                self.push(TokenKind::DotStar, start);
            }
            Some(b'/') => {
                self.pos += 1;
                self.push(TokenKind::DotSlash, start);
            }
            Some(b'\\') => {
                self.pos += 1;
                self.push(TokenKind::DotBackslash, start);
            }
            Some(b'^') => {
                self.pos += 1;
                self.push(TokenKind::DotCaret, start);
            }
            Some(b'\'') => {
                self.pos += 1;
                self.push(TokenKind::DotTranspose, start);
            }
            Some(b'.') if self.peek_at(1) == Some(b'.') => {
                // `...` line continuation: skip to (and over) end of line.
                self.pos += 2;
                while self.peek().is_some_and(|b| b != b'\n') {
                    self.pos += 1;
                }
                if self.peek() == Some(b'\n') {
                    self.pos += 1;
                }
                self.pending_space = true;
            }
            _ => self.push(TokenKind::Dot, start),
        }
    }

    fn lex_operator(&mut self, start: usize) {
        let b = self.bytes[self.pos];
        self.pos += 1;
        let two = |lexer: &Lexer<'s>| lexer.peek();
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semicolon,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'\\' => TokenKind::Backslash,
            b'^' => TokenKind::Caret,
            b':' => TokenKind::Colon,
            b'@' => TokenKind::At,
            b'=' => {
                if two(self) == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Eq
                } else {
                    TokenKind::Assign
                }
            }
            b'~' => {
                if two(self) == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ne
                } else {
                    TokenKind::Not
                }
            }
            b'<' => {
                if two(self) == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                if two(self) == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                if two(self) == Some(b'&') {
                    self.pos += 1;
                    TokenKind::AndAnd
                } else {
                    TokenKind::And
                }
            }
            b'|' => {
                if two(self) == Some(b'|') {
                    self.pos += 1;
                    TokenKind::OrOr
                } else {
                    TokenKind::Or
                }
            }
            _ => {
                self.diags.push(Diagnostic::error(
                    format!("unexpected character `{}`", b as char),
                    Span::new(start as u32, self.pos as u32),
                ));
                return;
            }
        };
        self.push(kind, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (tokens, diags) = lex(src);
        assert!(!diags.has_errors(), "lex errors: {:?}", diags.into_vec());
        tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            kinds("x = 1;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Number(1.0),
                TokenKind::Semicolon,
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn imaginary_suffix_accepted() {
        assert!(kinds("z = 2i;").contains(&TokenKind::Imaginary(2.0)));
        assert!(kinds("z = 2j;").contains(&TokenKind::Imaginary(2.0)));
        assert!(kinds("z = 1e3i;").contains(&TokenKind::Imaginary(1000.0)));
    }

    #[test]
    fn ident_tail_on_number_is_diagnosed() {
        for (src, tail, lit) in [
            ("x = 2in;", "in", "2"),
            ("x = 3i4;", "i4", "3"),
            ("x = 2x;", "x", "2"),
        ] {
            let (_, diags) = lex(src);
            assert!(diags.has_errors(), "`{src}` must fail to lex");
            let msg = diags.into_vec()[0].message.clone();
            assert_eq!(
                msg,
                format!("invalid imaginary suffix `{tail}` on numeric literal `{lit}`"),
                "for `{src}`"
            );
        }
    }

    #[test]
    fn ident_tail_diagnostic_spans_whole_literal() {
        let (_, diags) = lex("x = 2in;");
        let d = &diags.into_vec()[0];
        assert_eq!((d.span.start, d.span.end), (4, 7));
    }

    #[test]
    fn transpose_vs_string() {
        // After an identifier: transpose.
        let k = kinds("y = x';");
        assert!(k.contains(&TokenKind::Transpose));
        // In value position: string.
        let k = kinds("y = 'abc';");
        assert!(k.contains(&TokenKind::Str("abc".into())));
        // After a closing paren: transpose.
        let k = kinds("y = (x)';");
        assert!(k.contains(&TokenKind::Transpose));
    }

    #[test]
    fn doubled_quote_escapes() {
        let k = kinds("s = 'it''s';");
        assert!(k.contains(&TokenKind::Str("it's".into())));
    }

    #[test]
    fn imaginary_literals() {
        let k = kinds("z = 2i + 3.5j;");
        assert!(k.contains(&TokenKind::Imaginary(2.0)));
        assert!(k.contains(&TokenKind::Imaginary(3.5)));
    }

    #[test]
    fn scientific_notation() {
        assert!(kinds("1e3").contains(&TokenKind::Number(1000.0)));
        assert!(kinds("2.5e-2").contains(&TokenKind::Number(0.025)));
        assert!(kinds("1E+2").contains(&TokenKind::Number(100.0)));
        assert!(kinds(".5").contains(&TokenKind::Number(0.5)));
    }

    #[test]
    fn number_dot_operator_disambiguation() {
        let k = kinds("y = 2.*x;");
        assert!(k.contains(&TokenKind::Number(2.0)));
        assert!(k.contains(&TokenKind::DotStar));
        let k = kinds("y = 2.5.*x;");
        assert!(k.contains(&TokenKind::Number(2.5)));
        assert!(k.contains(&TokenKind::DotStar));
    }

    #[test]
    fn dot_transpose() {
        let k = kinds("y = x.';");
        assert!(k.contains(&TokenKind::DotTranspose));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("x = 1; % set x\ny = 2;");
        assert!(!k.iter().any(|t| matches!(t, TokenKind::Str(_))));
        assert!(k.contains(&TokenKind::Ident("y".into())));
    }

    #[test]
    fn block_comments() {
        let k = kinds("%{\nnothing here\n%}\nx = 1;");
        assert_eq!(k[0], TokenKind::Ident("x".into()));
    }

    #[test]
    fn line_continuation() {
        let k = kinds("x = 1 + ...\n    2;");
        assert!(k.contains(&TokenKind::Number(2.0)));
        // Exactly one newline separator (the trailing one).
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn newline_runs_collapse() {
        let k = kinds("a = 1\n\n\nb = 2\n");
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn relational_operators() {
        let k = kinds("a == b; a ~= b; a <= b; a >= b; a && b; a || b;");
        for t in [
            TokenKind::Eq,
            TokenKind::Ne,
            TokenKind::Le,
            TokenKind::Ge,
            TokenKind::AndAnd,
            TokenKind::OrOr,
        ] {
            assert!(k.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn space_before_is_recorded() {
        let (tokens, _) = lex("[1 -2]");
        let minus = tokens
            .iter()
            .find(|t| t.kind == TokenKind::Minus)
            .expect("minus token");
        assert!(minus.space_before);
        let (tokens, _) = lex("[1-2]");
        let minus = tokens
            .iter()
            .find(|t| t.kind == TokenKind::Minus)
            .expect("minus token");
        assert!(!minus.space_before);
    }

    #[test]
    fn invalid_character_recovers() {
        let (tokens, diags) = lex("x = 1 $ 2;");
        assert!(diags.has_errors());
        // Lexing continued past the bad character.
        assert!(tokens.iter().any(|t| t.kind == TokenKind::Number(2.0)));
    }

    #[test]
    fn unterminated_string_reports_error() {
        let (_, diags) = lex("s = 'oops");
        assert!(diags.has_errors());
    }

    #[test]
    fn keywords_lex_as_keywords() {
        let k = kinds("for i = 1:3\nend");
        assert!(k.contains(&TokenKind::For));
        assert!(k.contains(&TokenKind::End));
        assert!(k.contains(&TokenKind::Colon));
    }

    #[test]
    fn string_inside_brackets_after_space() {
        let (tokens, diags) = lex("x = ['ab' 'cd'];");
        assert!(!diags.has_errors());
        let strings: Vec<_> = tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str(_)))
            .collect();
        assert_eq!(strings.len(), 2);
    }
}
