//! Token definitions for the MATLAB-subset lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexed token.
///
/// Literal payloads (numbers, identifiers, strings) are carried inline so a
/// token stream is self-contained and the parser never re-reads source text.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal, e.g. `3`, `2.5`, `1e-3`. Value is the real part.
    Number(f64),
    /// Imaginary numeric literal, e.g. `2i`, `1.5j`.
    Imaginary(f64),
    /// Identifier or keyword candidate that is not reserved, e.g. `foo`.
    Ident(String),
    /// Single-quoted character string, with doubled quotes unescaped.
    Str(String),

    // Keywords.
    Function,
    End,
    If,
    Elseif,
    Else,
    For,
    While,
    Break,
    Continue,
    Return,
    Global,

    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    /// Statement-terminating newline (significant in MATLAB).
    Newline,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Backslash,
    Caret,
    DotStar,
    DotSlash,
    DotBackslash,
    DotCaret,
    /// `'` used as complex-conjugate transpose.
    Transpose,
    /// `.'` non-conjugate transpose.
    DotTranspose,
    Colon,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    AndAnd,
    OrOr,
    Not,
    At,
    Dot,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for a raw identifier; `None` if not reserved.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "function" => TokenKind::Function,
            "end" => TokenKind::End,
            "if" => TokenKind::If,
            "elseif" => TokenKind::Elseif,
            "else" => TokenKind::Else,
            "for" => TokenKind::For,
            "while" => TokenKind::While,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "return" => TokenKind::Return,
            "global" => TokenKind::Global,
            _ => return None,
        })
    }

    /// Whether this token may directly precede a transpose quote
    /// (the MATLAB rule that disambiguates `'` from a string opener).
    pub fn allows_postfix_quote(&self) -> bool {
        matches!(
            self,
            TokenKind::Number(_)
                | TokenKind::Imaginary(_)
                | TokenKind::Ident(_)
                | TokenKind::RParen
                | TokenKind::RBracket
                | TokenKind::RBrace
                | TokenKind::Transpose
                | TokenKind::DotTranspose
                | TokenKind::End
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Number(v) => write!(f, "{v}"),
            TokenKind::Imaginary(v) => write!(f, "{v}i"),
            TokenKind::Ident(s) => f.write_str(s),
            TokenKind::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            TokenKind::Function => f.write_str("function"),
            TokenKind::End => f.write_str("end"),
            TokenKind::If => f.write_str("if"),
            TokenKind::Elseif => f.write_str("elseif"),
            TokenKind::Else => f.write_str("else"),
            TokenKind::For => f.write_str("for"),
            TokenKind::While => f.write_str("while"),
            TokenKind::Break => f.write_str("break"),
            TokenKind::Continue => f.write_str("continue"),
            TokenKind::Return => f.write_str("return"),
            TokenKind::Global => f.write_str("global"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::LBrace => f.write_str("{"),
            TokenKind::RBrace => f.write_str("}"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Newline => f.write_str("\\n"),
            TokenKind::Assign => f.write_str("="),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Backslash => f.write_str("\\"),
            TokenKind::Caret => f.write_str("^"),
            TokenKind::DotStar => f.write_str(".*"),
            TokenKind::DotSlash => f.write_str("./"),
            TokenKind::DotBackslash => f.write_str(".\\"),
            TokenKind::DotCaret => f.write_str(".^"),
            TokenKind::Transpose => f.write_str("'"),
            TokenKind::DotTranspose => f.write_str(".'"),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::Eq => f.write_str("=="),
            TokenKind::Ne => f.write_str("~="),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::And => f.write_str("&"),
            TokenKind::Or => f.write_str("|"),
            TokenKind::AndAnd => f.write_str("&&"),
            TokenKind::OrOr => f.write_str("||"),
            TokenKind::Not => f.write_str("~"),
            TokenKind::At => f.write_str("@"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A lexed token: kind plus source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
    /// Whether horizontal whitespace immediately preceded this token.
    ///
    /// MATLAB matrix literals are space-sensitive (`[1 -2]` has two
    /// elements, `[1 - 2]` has one); the parser consults this flag inside
    /// `[...]` to apply that rule.
    pub space_before: bool,
}

impl Token {
    /// Creates a token with no preceding whitespace recorded.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token {
            kind,
            span,
            space_before: false,
        }
    }

    /// Creates a token, recording whether whitespace preceded it.
    pub fn with_space(kind: TokenKind, span: Span, space_before: bool) -> Self {
        Token {
            kind,
            span,
            space_before,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("for"), Some(TokenKind::For));
        assert_eq!(TokenKind::keyword("forx"), None);
        assert_eq!(TokenKind::keyword("Function"), None);
    }

    #[test]
    fn postfix_quote_rule() {
        assert!(TokenKind::Ident("x".into()).allows_postfix_quote());
        assert!(TokenKind::RParen.allows_postfix_quote());
        assert!(TokenKind::Number(1.0).allows_postfix_quote());
        assert!(!TokenKind::Assign.allows_postfix_quote());
        assert!(!TokenKind::Comma.allows_postfix_quote());
        assert!(!TokenKind::LParen.allows_postfix_quote());
    }

    #[test]
    fn display_round_trips_simple_tokens() {
        assert_eq!(TokenKind::DotStar.to_string(), ".*");
        assert_eq!(TokenKind::Ne.to_string(), "~=");
        assert_eq!(
            TokenKind::Str("it''s".replace("''", "'")).to_string(),
            "'it''s'"
        );
    }
}
