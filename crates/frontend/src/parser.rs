//! Recursive-descent parser for the MATLAB subset.
//!
//! Notable MATLAB-isms handled here:
//!
//! * `end` is both a block terminator and an index expression (`x(end-1)`);
//!   it is an index only while the parser is inside call/index parentheses;
//! * matrix literals are space-sensitive: `[1 -2]` has two elements while
//!   `[1 - 2]` has one — decided from the lexer's `space_before` flags;
//! * `x(i)` is parsed as an ambiguous call node; array-vs-function
//!   resolution happens in semantic analysis;
//! * `[a, b] = f(x)` multi-output assignment is recognized by lookahead.

use crate::ast::*;
use crate::diag::DiagnosticBag;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses MATLAB source into a [`Program`] plus diagnostics.
///
/// Parsing always returns a (possibly partial) program; check
/// [`DiagnosticBag::has_errors`] before trusting it.
///
/// # Examples
///
/// ```
/// use matic_frontend::parser::parse;
///
/// let (program, diags) = parse("function y = twice(x)\ny = 2 * x;\nend");
/// assert!(!diags.has_errors());
/// assert_eq!(program.functions[0].name, "twice");
/// ```
pub fn parse(src: &str) -> (Program, DiagnosticBag) {
    let (tokens, mut diags) = lex(src);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: DiagnosticBag::new(),
        index_depth: 0,
        matrix_mode: Vec::new(),
    };
    let program = parser.parse_program();
    diags.extend(parser.diags);
    (program, diags)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: DiagnosticBag,
    /// Nesting depth of call/index parentheses; `end` is an expression
    /// only when this is positive.
    index_depth: u32,
    /// Bracket-context stack: `true` while directly inside a matrix
    /// literal, `false` inside parentheses nested in one.
    matrix_mode: Vec<bool>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_at(&self, ahead: usize) -> &Token {
        &self.tokens[(self.pos + ahead).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Token {
        if self.at(kind) {
            self.bump()
        } else {
            let t = self.peek().clone();
            self.diags
                .error(format!("expected `{kind}`, found `{}`", t.kind), t.span);
            t
        }
    }

    fn error_here(&mut self, msg: impl Into<String>) {
        let span = self.peek().span;
        self.diags.error(msg, span);
    }

    /// Skips statement separators (newlines, semicolons, commas).
    fn skip_separators(&mut self) {
        while matches!(
            self.peek_kind(),
            TokenKind::Newline | TokenKind::Semicolon | TokenKind::Comma
        ) {
            self.bump();
        }
    }

    /// Skips to the next statement separator — error recovery.
    fn recover_to_separator(&mut self) {
        while !matches!(
            self.peek_kind(),
            TokenKind::Newline | TokenKind::Semicolon | TokenKind::Eof
        ) {
            self.bump();
        }
    }

    fn parse_program(&mut self) -> Program {
        let mut program = Program::default();
        self.skip_separators();
        // Script part: statements before the first `function`.
        while !self.at(&TokenKind::Eof) && !self.at(&TokenKind::Function) {
            if let Some(stmt) = self.parse_stmt() {
                program.script.push(stmt);
            }
            self.skip_separators();
        }
        while self.at(&TokenKind::Function) {
            let f = self.parse_function();
            program.functions.push(f);
            self.skip_separators();
        }
        if !self.at(&TokenKind::Eof) {
            self.error_here("expected function definition or end of file");
        }
        program
    }

    fn parse_function(&mut self) -> Function {
        let start = self.expect(&TokenKind::Function).span;
        let mut outputs = Vec::new();
        let name;

        // Forms: `function name(...)`, `function out = name(...)`,
        // `function [o1, o2] = name(...)`.
        if self.at(&TokenKind::LBracket) {
            self.bump();
            while !self.at(&TokenKind::RBracket) && !self.at(&TokenKind::Eof) {
                if let TokenKind::Ident(n) = self.peek_kind().clone() {
                    self.bump();
                    outputs.push(n);
                } else {
                    self.error_here("expected output variable name");
                    self.bump();
                }
                self.eat(&TokenKind::Comma);
            }
            self.expect(&TokenKind::RBracket);
            self.expect(&TokenKind::Assign);
            name = self.expect_ident("function name");
        } else {
            let first = self.expect_ident("function name");
            if self.eat(&TokenKind::Assign) {
                outputs.push(first);
                name = self.expect_ident("function name");
            } else {
                name = first;
            }
        }

        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
                if self.eat(&TokenKind::Not) {
                    params.push("~".to_string());
                } else {
                    params.push(self.expect_ident("parameter name"));
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen);
        }
        let header_end = self.peek().span;
        self.skip_separators();

        let body = self.parse_block(&[TokenKind::End, TokenKind::Function, TokenKind::Eof]);
        // Function files may omit the trailing `end`.
        self.eat(&TokenKind::End);

        Function {
            name,
            params,
            outputs,
            body,
            span: start.to(header_end),
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        if let TokenKind::Ident(n) = self.peek_kind().clone() {
            self.bump();
            n
        } else {
            self.error_here(format!("expected {what}"));
            String::from("<error>")
        }
    }

    /// Parses statements until one of `closers` is at the front (the closer
    /// is *not* consumed).
    fn parse_block(&mut self, closers: &[TokenKind]) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        self.skip_separators();
        loop {
            if self.at(&TokenKind::Eof) || closers.iter().any(|c| self.at(c)) {
                break;
            }
            let before = self.pos;
            if let Some(stmt) = self.parse_stmt() {
                stmts.push(stmt);
            }
            if self.pos == before {
                // No progress — skip the offending token to avoid looping.
                self.bump();
            }
            self.skip_separators();
        }
        stmts
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        match self.peek_kind() {
            TokenKind::If => Some(self.parse_if()),
            TokenKind::For => Some(self.parse_for()),
            TokenKind::While => Some(self.parse_while()),
            TokenKind::Break => {
                let span = self.bump().span;
                Some(Stmt::Break(span))
            }
            TokenKind::Continue => {
                let span = self.bump().span;
                Some(Stmt::Continue(span))
            }
            TokenKind::Return => {
                let span = self.bump().span;
                Some(Stmt::Return(span))
            }
            TokenKind::Global => Some(self.parse_global()),
            TokenKind::LBracket if self.is_multi_assign() => Some(self.parse_multi_assign()),
            _ => self.parse_simple_stmt(),
        }
    }

    /// Lookahead: does the `[...]` at the cursor belong to a
    /// `[a, b] = f(x)` multi-assignment?
    fn is_multi_assign(&self) -> bool {
        debug_assert!(self.at(&TokenKind::LBracket));
        let mut depth = 0usize;
        let mut i = self.pos;
        while i < self.tokens.len() {
            match &self.tokens[i].kind {
                TokenKind::LBracket => depth += 1,
                TokenKind::RBracket => {
                    depth -= 1;
                    if depth == 0 {
                        return matches!(
                            self.tokens.get(i + 1).map(|t| &t.kind),
                            Some(TokenKind::Assign)
                        );
                    }
                }
                TokenKind::Eof | TokenKind::Newline => return false,
                _ => {}
            }
            i += 1;
        }
        false
    }

    fn parse_multi_assign(&mut self) -> Stmt {
        let start = self.expect(&TokenKind::LBracket).span;
        let mut targets = Vec::new();
        while !self.at(&TokenKind::RBracket) && !self.at(&TokenKind::Eof) {
            if self.eat(&TokenKind::Not) {
                targets.push(None);
            } else {
                targets.push(Some(self.parse_lvalue()));
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBracket);
        self.expect(&TokenKind::Assign);
        let call = self.parse_expr();
        let end = call.span();
        let suppressed = self.eat(&TokenKind::Semicolon);
        Stmt::MultiAssign {
            targets,
            call,
            suppressed,
            span: start.to(end),
        }
    }

    fn parse_lvalue(&mut self) -> LValue {
        let name_tok = self.peek().clone();
        let name = self.expect_ident("assignment target");
        if self.at(&TokenKind::LParen) {
            self.bump();
            self.index_depth += 1;
            self.matrix_mode.push(false);
            let indices = self.parse_arg_list();
            self.matrix_mode.pop();
            self.index_depth -= 1;
            let close = self.expect(&TokenKind::RParen).span;
            LValue::Index {
                name,
                indices,
                span: name_tok.span.to(close),
            }
        } else {
            LValue::Name {
                name,
                span: name_tok.span,
            }
        }
    }

    fn parse_simple_stmt(&mut self) -> Option<Stmt> {
        let start_pos = self.pos;
        let expr = self.parse_expr();
        if self.pos == start_pos {
            // parse_expr made no progress; bail out (caller recovers).
            self.recover_to_separator();
            return None;
        }
        let span = expr.span();
        if self.at(&TokenKind::Assign) {
            self.bump();
            let target = match self.expr_to_lvalue(expr) {
                Some(lv) => lv,
                None => {
                    self.error_here("invalid assignment target");
                    self.recover_to_separator();
                    return None;
                }
            };
            let value = self.parse_expr();
            let full = span.to(value.span());
            let suppressed = self.eat(&TokenKind::Semicolon);
            Some(Stmt::Assign {
                target,
                value,
                suppressed,
                span: full,
            })
        } else {
            let suppressed = self.eat(&TokenKind::Semicolon);
            Some(Stmt::ExprStmt {
                expr,
                suppressed,
                span,
            })
        }
    }

    fn expr_to_lvalue(&mut self, expr: Expr) -> Option<LValue> {
        match expr {
            Expr::Ident { name, span } => Some(LValue::Name { name, span }),
            Expr::Call { name, args, span } => Some(LValue::Index {
                name,
                indices: args,
                span,
            }),
            _ => None,
        }
    }

    fn parse_if(&mut self) -> Stmt {
        let start = self.expect(&TokenKind::If).span;
        let mut arms = Vec::new();
        let cond = self.parse_expr();
        self.skip_separators();
        let body = self.parse_block(&[TokenKind::Elseif, TokenKind::Else, TokenKind::End]);
        arms.push((cond, body));
        let mut else_body = None;
        loop {
            if self.eat(&TokenKind::Elseif) {
                let c = self.parse_expr();
                self.skip_separators();
                let b = self.parse_block(&[TokenKind::Elseif, TokenKind::Else, TokenKind::End]);
                arms.push((c, b));
            } else if self.eat(&TokenKind::Else) {
                self.skip_separators();
                else_body = Some(self.parse_block(&[TokenKind::End]));
                break;
            } else {
                break;
            }
        }
        let end = self.expect(&TokenKind::End).span;
        Stmt::If {
            arms,
            else_body,
            span: start.to(end),
        }
    }

    fn parse_for(&mut self) -> Stmt {
        let start = self.expect(&TokenKind::For).span;
        // Parenthesized form `for (i = 1:n)` is also legal MATLAB.
        let parenthesized = self.eat(&TokenKind::LParen);
        let var = self.expect_ident("loop variable");
        self.expect(&TokenKind::Assign);
        let iter = self.parse_expr();
        if parenthesized {
            self.expect(&TokenKind::RParen);
        }
        self.skip_separators();
        let body = self.parse_block(&[TokenKind::End]);
        let end = self.expect(&TokenKind::End).span;
        Stmt::For {
            var,
            iter,
            body,
            span: start.to(end),
        }
    }

    fn parse_while(&mut self) -> Stmt {
        let start = self.expect(&TokenKind::While).span;
        let cond = self.parse_expr();
        self.skip_separators();
        let body = self.parse_block(&[TokenKind::End]);
        let end = self.expect(&TokenKind::End).span;
        Stmt::While {
            cond,
            body,
            span: start.to(end),
        }
    }

    fn parse_global(&mut self) -> Stmt {
        let start = self.expect(&TokenKind::Global).span;
        let mut names = Vec::new();
        let mut end = start;
        while let TokenKind::Ident(n) = self.peek_kind().clone() {
            end = self.bump().span;
            names.push(n);
            self.eat(&TokenKind::Comma);
        }
        if names.is_empty() {
            self.error_here("expected variable name after `global`");
        }
        Stmt::Global {
            names,
            span: start.to(end),
        }
    }

    // ----- expressions -------------------------------------------------

    fn parse_expr(&mut self) -> Expr {
        self.parse_oror()
    }

    fn parse_oror(&mut self) -> Expr {
        let mut lhs = self.parse_andand();
        while self.at(&TokenKind::OrOr) {
            self.bump();
            let rhs = self.parse_andand();
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::OrOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn parse_andand(&mut self) -> Expr {
        let mut lhs = self.parse_elem_or();
        while self.at(&TokenKind::AndAnd) {
            self.bump();
            let rhs = self.parse_elem_or();
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::AndAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn parse_elem_or(&mut self) -> Expr {
        let mut lhs = self.parse_elem_and();
        while self.at(&TokenKind::Or) {
            self.bump();
            let rhs = self.parse_elem_and();
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn parse_elem_and(&mut self) -> Expr {
        let mut lhs = self.parse_comparison();
        while self.at(&TokenKind::And) {
            self.bump();
            let rhs = self.parse_comparison();
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn parse_comparison(&mut self) -> Expr {
        let mut lhs = self.parse_range();
        loop {
            let op = match self.peek_kind() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_range();
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    /// `a : b` or `a : b : c` — the colon sits between additive and
    /// comparison precedence in MATLAB.
    fn parse_range(&mut self) -> Expr {
        let first = self.parse_additive();
        if !self.at(&TokenKind::Colon) {
            return first;
        }
        self.bump();
        let second = self.parse_additive();
        if self.at(&TokenKind::Colon) {
            self.bump();
            let third = self.parse_additive();
            let span = first.span().to(third.span());
            Expr::Range {
                start: Box::new(first),
                step: Some(Box::new(second)),
                stop: Box::new(third),
                span,
            }
        } else {
            let span = first.span().to(second.span());
            Expr::Range {
                start: Box::new(first),
                step: None,
                stop: Box::new(second),
                span,
            }
        }
    }

    /// The matrix-literal space rule: inside `[...]`, ` -x` (space before
    /// the sign, none after, followed by a value) starts a new element
    /// rather than continuing a binary expression.
    fn matrix_element_boundary(&self) -> bool {
        if self.matrix_mode.last() != Some(&true) {
            return false;
        }
        let tok = self.peek();
        if !matches!(tok.kind, TokenKind::Plus | TokenKind::Minus) {
            return false;
        }
        let next = self.peek_at(1);
        tok.space_before && !next.space_before && Self::starts_expression(&next.kind)
    }

    fn starts_expression(kind: &TokenKind) -> bool {
        matches!(
            kind,
            TokenKind::Number(_)
                | TokenKind::Imaginary(_)
                | TokenKind::Ident(_)
                | TokenKind::Str(_)
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::Not
                | TokenKind::At
                | TokenKind::Plus
                | TokenKind::Minus
                | TokenKind::End
        )
    }

    fn parse_additive(&mut self) -> Expr {
        let mut lhs = self.parse_multiplicative();
        loop {
            if self.matrix_element_boundary() {
                break;
            }
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative();
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn parse_multiplicative(&mut self) -> Expr {
        let mut lhs = self.parse_unary();
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::MatMul,
                TokenKind::DotStar => BinOp::ElemMul,
                TokenKind::Slash => BinOp::MatDiv,
                TokenKind::DotSlash => BinOp::ElemDiv,
                TokenKind::Backslash => BinOp::MatLeftDiv,
                TokenKind::DotBackslash => BinOp::ElemLeftDiv,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary();
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn parse_unary(&mut self) -> Expr {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Minus => {
                self.bump();
                let operand = self.parse_unary();
                let span = tok.span.to(operand.span());
                Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                    span,
                }
            }
            TokenKind::Plus => {
                self.bump();
                let operand = self.parse_unary();
                let span = tok.span.to(operand.span());
                Expr::Unary {
                    op: UnOp::Plus,
                    operand: Box::new(operand),
                    span,
                }
            }
            TokenKind::Not => {
                self.bump();
                let operand = self.parse_unary();
                let span = tok.span.to(operand.span());
                Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(operand),
                    span,
                }
            }
            _ => self.parse_power(),
        }
    }

    /// `^` and `.^` — bind tighter than unary minus on the left, and allow
    /// a unary sign on the exponent (`2^-1`). MATLAB evaluates chained
    /// powers left to right.
    fn parse_power(&mut self) -> Expr {
        let mut lhs = self.parse_postfix();
        loop {
            let op = match self.peek_kind() {
                TokenKind::Caret => BinOp::MatPow,
                TokenKind::DotCaret => BinOp::ElemPow,
                _ => break,
            };
            self.bump();
            // Exponent may carry a unary sign but not a full unary chain
            // at this precedence; `parse_unary` handles `2^-x` correctly
            // because it recurses back down to postfix.
            let rhs = if matches!(
                self.peek_kind(),
                TokenKind::Minus | TokenKind::Plus | TokenKind::Not
            ) {
                self.parse_unary()
            } else {
                self.parse_postfix()
            };
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn parse_postfix(&mut self) -> Expr {
        let mut expr = self.parse_primary();
        loop {
            match self.peek_kind() {
                TokenKind::Transpose => {
                    let t = self.bump();
                    let span = expr.span().to(t.span);
                    expr = Expr::Transpose {
                        operand: Box::new(expr),
                        conjugate: true,
                        span,
                    };
                }
                TokenKind::DotTranspose => {
                    let t = self.bump();
                    let span = expr.span().to(t.span);
                    expr = Expr::Transpose {
                        operand: Box::new(expr),
                        conjugate: false,
                        span,
                    };
                }
                _ => break,
            }
        }
        expr
    }

    fn parse_primary(&mut self) -> Expr {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Number(v) => {
                self.bump();
                Expr::Number {
                    value: v,
                    span: tok.span,
                }
            }
            TokenKind::Imaginary(v) => {
                self.bump();
                Expr::Imaginary {
                    value: v,
                    span: tok.span,
                }
            }
            TokenKind::Str(ref s) => {
                let s = s.clone();
                self.bump();
                Expr::Str {
                    value: s,
                    span: tok.span,
                }
            }
            TokenKind::Ident(ref name) => {
                let name = name.clone();
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    self.index_depth += 1;
                    self.matrix_mode.push(false);
                    let args = self.parse_arg_list();
                    self.matrix_mode.pop();
                    self.index_depth -= 1;
                    let close = self.expect(&TokenKind::RParen).span;
                    Expr::Call {
                        name,
                        args,
                        span: tok.span.to(close),
                    }
                } else {
                    Expr::Ident {
                        name,
                        span: tok.span,
                    }
                }
            }
            TokenKind::LParen => {
                self.bump();
                self.matrix_mode.push(false);
                let inner = self.parse_expr();
                self.matrix_mode.pop();
                self.expect(&TokenKind::RParen);
                inner
            }
            TokenKind::LBracket => self.parse_matrix(),
            TokenKind::End if self.index_depth > 0 => {
                self.bump();
                Expr::EndKeyword { span: tok.span }
            }
            TokenKind::At => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut params = Vec::new();
                    while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
                        params.push(self.expect_ident("parameter name"));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen);
                    let body = self.parse_expr();
                    let span = tok.span.to(body.span());
                    Expr::AnonFn {
                        params,
                        body: Box::new(body),
                        span,
                    }
                } else {
                    let name = self.expect_ident("function name after `@`");
                    Expr::FnHandle {
                        name,
                        span: tok.span,
                    }
                }
            }
            TokenKind::Colon => {
                // Bare colon only makes sense as an index argument; the
                // argument-list parser handles that case before calling
                // here, so this is a stray colon.
                self.bump();
                self.error_here("`:` is only valid inside an index");
                Expr::ColonAll { span: tok.span }
            }
            _ => {
                self.diags.error(
                    format!("expected expression, found `{}`", tok.kind),
                    tok.span,
                );
                self.bump();
                Expr::Number {
                    value: 0.0,
                    span: tok.span,
                }
            }
        }
    }

    /// Parses a comma-separated argument list, allowing bare `:` arguments.
    fn parse_arg_list(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if self.at(&TokenKind::RParen) {
            return args;
        }
        loop {
            if self.at(&TokenKind::Colon)
                && matches!(self.peek_at(1).kind, TokenKind::Comma | TokenKind::RParen)
            {
                let t = self.bump();
                args.push(Expr::ColonAll { span: t.span });
            } else {
                args.push(self.parse_expr());
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        args
    }

    fn parse_matrix(&mut self) -> Expr {
        let start = self.expect(&TokenKind::LBracket).span;
        self.matrix_mode.push(true);
        let mut rows: Vec<Vec<Expr>> = Vec::new();
        let mut row: Vec<Expr> = Vec::new();
        loop {
            match self.peek_kind() {
                TokenKind::RBracket | TokenKind::Eof => break,
                TokenKind::Semicolon | TokenKind::Newline => {
                    self.bump();
                    if !row.is_empty() {
                        rows.push(std::mem::take(&mut row));
                    }
                }
                TokenKind::Comma => {
                    self.bump();
                }
                _ => {
                    let before = self.pos;
                    row.push(self.parse_expr());
                    if self.pos == before {
                        self.bump();
                    }
                }
            }
        }
        if !row.is_empty() {
            rows.push(row);
        }
        self.matrix_mode.pop();
        let end = self.expect(&TokenKind::RBracket).span;
        Expr::Matrix {
            rows,
            span: start.to(end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        let (p, diags) = parse(src);
        assert!(
            !diags.has_errors(),
            "unexpected errors for {src:?}: {:?}",
            diags.into_vec()
        );
        p
    }

    fn parse_expr_ok(src: &str) -> Expr {
        let p = parse_ok(src);
        match p.script.into_iter().next().expect("one statement") {
            Stmt::ExprStmt { expr, .. } => expr,
            other => panic!("expected expression statement, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr_ok("1 + 2 * 3");
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(
                    *rhs,
                    Expr::Binary {
                        op: BinOp::MatMul,
                        ..
                    }
                ));
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn range_binds_looser_than_add() {
        // `1:n-1` must parse as 1:(n-1).
        let e = parse_expr_ok("1:n-1");
        match e {
            Expr::Range { stop, .. } => {
                assert!(matches!(*stop, Expr::Binary { op: BinOp::Sub, .. }));
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn range_binds_tighter_than_comparison() {
        // `x < 1:3` parses as x < (1:3).
        let e = parse_expr_ok("x < 1:3");
        assert!(matches!(e, Expr::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn three_part_range() {
        let e = parse_expr_ok("0:0.5:10");
        match e {
            Expr::Range { step, .. } => assert!(step.is_some()),
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn power_left_assoc() {
        // MATLAB: 2^3^2 == 64.
        let e = parse_expr_ok("2^3^2");
        match e {
            Expr::Binary {
                op: BinOp::MatPow,
                lhs,
                ..
            } => assert!(matches!(
                *lhs,
                Expr::Binary {
                    op: BinOp::MatPow,
                    ..
                }
            )),
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn unary_minus_binds_looser_than_power() {
        // -x^2 == -(x^2)
        let e = parse_expr_ok("-x^2");
        match e {
            Expr::Unary {
                op: UnOp::Neg,
                operand,
                ..
            } => assert!(matches!(
                *operand,
                Expr::Binary {
                    op: BinOp::MatPow,
                    ..
                }
            )),
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn power_with_signed_exponent() {
        let e = parse_expr_ok("2^-1");
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinOp::MatPow,
                ..
            }
        ));
    }

    #[test]
    fn transpose_postfix() {
        let e = parse_expr_ok("x'");
        assert!(matches!(
            e,
            Expr::Transpose {
                conjugate: true,
                ..
            }
        ));
        let e = parse_expr_ok("x.'");
        assert!(matches!(
            e,
            Expr::Transpose {
                conjugate: false,
                ..
            }
        ));
    }

    #[test]
    fn call_with_args() {
        let e = parse_expr_ok("f(1, x, 2:3)");
        match e {
            Expr::Call { name, args, .. } => {
                assert_eq!(name, "f");
                assert_eq!(args.len(), 3);
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn end_in_index() {
        let e = parse_expr_ok("x(end-1)");
        match e {
            Expr::Call { args, .. } => {
                assert!(matches!(&args[0], Expr::Binary { op: BinOp::Sub, .. }));
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn end_outside_index_is_error() {
        let (_, diags) = parse("x = end;");
        assert!(diags.has_errors());
    }

    #[test]
    fn colon_all_index() {
        let e = parse_expr_ok("x(:, 2)");
        match e {
            Expr::Call { args, .. } => {
                assert!(matches!(args[0], Expr::ColonAll { .. }));
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn matrix_rows() {
        let e = parse_expr_ok("[1 2; 3 4]");
        match e {
            Expr::Matrix { rows, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn matrix_space_rule() {
        // `[1 -2]` → two elements; `[1 - 2]` → one.
        match parse_expr_ok("[1 -2]") {
            Expr::Matrix { rows, .. } => assert_eq!(rows[0].len(), 2),
            other => panic!("bad tree: {other:?}"),
        }
        match parse_expr_ok("[1 - 2]") {
            Expr::Matrix { rows, .. } => assert_eq!(rows[0].len(), 1),
            other => panic!("bad tree: {other:?}"),
        }
        match parse_expr_ok("[1-2]") {
            Expr::Matrix { rows, .. } => assert_eq!(rows[0].len(), 1),
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn space_rule_not_applied_in_nested_parens() {
        // Inside parentheses the space rule is off: `[f(1, -2)]`.
        match parse_expr_ok("[f(1, -2)]") {
            Expr::Matrix { rows, .. } => {
                assert_eq!(rows[0].len(), 1);
            }
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn empty_matrix() {
        match parse_expr_ok("[]") {
            Expr::Matrix { rows, .. } => assert!(rows.is_empty()),
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn assignment_forms() {
        let p = parse_ok("x = 1;\nx(3) = 2;\nx(1, 2) = 5;");
        assert_eq!(p.script.len(), 3);
        assert!(matches!(
            &p.script[1],
            Stmt::Assign {
                target: LValue::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn multi_assignment() {
        let p = parse_ok("[q, r] = deal(1, 2);");
        match &p.script[0] {
            Stmt::MultiAssign { targets, .. } => {
                assert_eq!(targets.len(), 2);
                assert!(targets.iter().all(|t| t.is_some()));
            }
            other => panic!("bad stmt: {other:?}"),
        }
    }

    #[test]
    fn multi_assignment_with_discard() {
        let p = parse_ok("[~, i] = max(x);");
        match &p.script[0] {
            Stmt::MultiAssign { targets, .. } => {
                assert!(targets[0].is_none());
                assert!(targets[1].is_some());
            }
            other => panic!("bad stmt: {other:?}"),
        }
    }

    #[test]
    fn bracket_expression_statement_is_not_multiassign() {
        let p = parse_ok("[1, 2];");
        assert!(matches!(&p.script[0], Stmt::ExprStmt { .. }));
    }

    #[test]
    fn if_elseif_else() {
        let p = parse_ok("if a > 0\n x = 1;\nelseif a < 0\n x = 2;\nelse\n x = 3;\nend");
        match &p.script[0] {
            Stmt::If {
                arms, else_body, ..
            } => {
                assert_eq!(arms.len(), 2);
                assert!(else_body.is_some());
            }
            other => panic!("bad stmt: {other:?}"),
        }
    }

    #[test]
    fn for_loop() {
        let p = parse_ok("for i = 1:10\n s = s + i;\nend");
        match &p.script[0] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(body.len(), 1);
            }
            other => panic!("bad stmt: {other:?}"),
        }
    }

    #[test]
    fn while_loop_with_break() {
        let p = parse_ok("while 1\n break\nend");
        match &p.script[0] {
            Stmt::While { body, .. } => assert!(matches!(body[0], Stmt::Break(_))),
            other => panic!("bad stmt: {other:?}"),
        }
    }

    #[test]
    fn function_definition() {
        let p = parse_ok("function [y, n] = f(a, b)\ny = a + b;\nn = a - b;\nend");
        let f = &p.functions[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params, vec!["a", "b"]);
        assert_eq!(f.outputs, vec!["y", "n"]);
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn function_without_trailing_end() {
        let p = parse_ok("function y = f(x)\ny = x;");
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn multiple_functions() {
        let p = parse_ok(
            "function y = main(x)\ny = helper(x) + 1;\nend\nfunction z = helper(x)\nz = 2 * x;\nend",
        );
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[1].name, "helper");
    }

    #[test]
    fn function_no_outputs() {
        let p = parse_ok("function show(x)\ndisp(x);\nend");
        assert!(p.functions[0].outputs.is_empty());
    }

    #[test]
    fn nested_loops_with_end_in_index() {
        let p = parse_ok("for i = 1:n\n  for j = 1:m\n    c(i, j) = a(i, end) + 1;\n  end\nend");
        assert_eq!(p.script.len(), 1);
    }

    #[test]
    fn anonymous_function() {
        let e = parse_expr_ok("@(x) x.^2 + 1");
        match e {
            Expr::AnonFn { params, .. } => assert_eq!(params, vec!["x"]),
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn function_handle() {
        let e = parse_expr_ok("@sin");
        assert!(matches!(e, Expr::FnHandle { .. }));
    }

    #[test]
    fn logical_precedence() {
        // `a & b | c` is `(a & b) | c`; `a && b || c` is `(a && b) || c`.
        let e = parse_expr_ok("a & b | c");
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
        let e = parse_expr_ok("a && b || c");
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinOp::OrOr,
                ..
            }
        ));
    }

    #[test]
    fn complex_literal_expression() {
        let e = parse_expr_ok("3 + 4i");
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn parse_error_recovers_to_next_statement() {
        let (p, diags) = parse("x = ;\ny = 2;");
        assert!(diags.has_errors());
        // Second statement still parsed.
        assert!(p
            .script
            .iter()
            .any(|s| matches!(s, Stmt::Assign { target, .. } if target.name() == "y")));
    }

    #[test]
    fn comma_separates_statements() {
        let p = parse_ok("a = 1, b = 2");
        assert_eq!(p.script.len(), 2);
    }

    #[test]
    fn suppression_flag() {
        let p = parse_ok("a = 1;\nb = 2");
        match (&p.script[0], &p.script[1]) {
            (Stmt::Assign { suppressed: s1, .. }, Stmt::Assign { suppressed: s2, .. }) => {
                assert!(*s1);
                assert!(!*s2);
            }
            other => panic!("bad stmts: {other:?}"),
        }
    }

    #[test]
    fn global_statement() {
        let p = parse_ok("global counter total");
        match &p.script[0] {
            Stmt::Global { names, .. } => assert_eq!(names.len(), 2),
            other => panic!("bad stmt: {other:?}"),
        }
    }

    #[test]
    fn script_before_functions() {
        let p = parse_ok("x = 1;\ny = f(x);\nfunction y = f(x)\ny = x + 1;\nend");
        assert_eq!(p.script.len(), 2);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn line_continuation_in_statement() {
        let p = parse_ok("x = 1 + ...\n 2;");
        assert_eq!(p.script.len(), 1);
    }
}
