//! Pretty-printer: AST back to MATLAB surface syntax.
//!
//! Used for debugging dumps and for the parse → print → reparse round-trip
//! property tests. Output is fully parenthesized where precedence could be
//! ambiguous, so the round trip is structure-preserving.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as MATLAB source.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for stmt in &program.script {
        print_stmt(&mut out, stmt, 0);
    }
    for (i, f) in program.functions.iter().enumerate() {
        if i > 0 || !program.script.is_empty() {
            out.push('\n');
        }
        print_function(&mut out, f);
    }
    out
}

/// Renders one function definition.
pub fn print_function(out: &mut String, f: &Function) {
    out.push_str("function ");
    match f.outputs.len() {
        0 => {}
        1 => {
            let _ = write!(out, "{} = ", f.outputs[0]);
        }
        _ => {
            let _ = write!(out, "[{}] = ", f.outputs.join(", "));
        }
    }
    let _ = writeln!(out, "{}({})", f.name, f.params.join(", "));
    for stmt in &f.body {
        print_stmt(out, stmt, 1);
    }
    out.push_str("end\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

/// Renders one statement at the given indentation level.
pub fn print_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::Assign {
            target,
            value,
            suppressed,
            ..
        } => {
            print_lvalue(out, target);
            out.push_str(" = ");
            print_expr(out, value);
            if *suppressed {
                out.push(';');
            }
            out.push('\n');
        }
        Stmt::MultiAssign {
            targets,
            call,
            suppressed,
            ..
        } => {
            out.push('[');
            for (i, t) in targets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match t {
                    Some(lv) => print_lvalue(out, lv),
                    None => out.push('~'),
                }
            }
            out.push_str("] = ");
            print_expr(out, call);
            if *suppressed {
                out.push(';');
            }
            out.push('\n');
        }
        Stmt::ExprStmt {
            expr, suppressed, ..
        } => {
            print_expr(out, expr);
            if *suppressed {
                out.push(';');
            }
            out.push('\n');
        }
        Stmt::If {
            arms, else_body, ..
        } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                if i == 0 {
                    out.push_str("if ");
                } else {
                    indent(out, level);
                    out.push_str("elseif ");
                }
                print_expr(out, cond);
                out.push('\n');
                for s in body {
                    print_stmt(out, s, level + 1);
                }
            }
            if let Some(body) = else_body {
                indent(out, level);
                out.push_str("else\n");
                for s in body {
                    print_stmt(out, s, level + 1);
                }
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::For {
            var, iter, body, ..
        } => {
            let _ = write!(out, "for {var} = ");
            print_expr(out, iter);
            out.push('\n');
            for s in body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::While { cond, body, .. } => {
            out.push_str("while ");
            print_expr(out, cond);
            out.push('\n');
            for s in body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::Break(_) => out.push_str("break\n"),
        Stmt::Continue(_) => out.push_str("continue\n"),
        Stmt::Return(_) => out.push_str("return\n"),
        Stmt::Global { names, .. } => {
            let _ = writeln!(out, "global {}", names.join(" "));
        }
    }
}

fn print_lvalue(out: &mut String, lv: &LValue) {
    match lv {
        LValue::Name { name, .. } => out.push_str(name),
        LValue::Index { name, indices, .. } => {
            out.push_str(name);
            out.push('(');
            for (i, e) in indices.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, e);
            }
            out.push(')');
        }
    }
}

/// Renders one expression (fully parenthesized at ambiguity points).
pub fn print_expr(out: &mut String, expr: &Expr) {
    match expr {
        Expr::Number { value, .. } => {
            let _ = write!(out, "{}", format_number(*value));
        }
        Expr::Imaginary { value, .. } => {
            let _ = write!(out, "{}i", format_number(*value));
        }
        Expr::Str { value, .. } => {
            let _ = write!(out, "'{}'", value.replace('\'', "''"));
        }
        Expr::Ident { name, .. } => out.push_str(name),
        Expr::Call { name, args, .. } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            out.push('(');
            print_expr(out, lhs);
            let _ = write!(out, " {op} ");
            print_expr(out, rhs);
            out.push(')');
        }
        Expr::Unary { op, operand, .. } => {
            out.push('(');
            let _ = write!(out, "{op}");
            print_expr(out, operand);
            out.push(')');
        }
        Expr::Transpose {
            operand, conjugate, ..
        } => {
            out.push('(');
            print_expr(out, operand);
            out.push_str(if *conjugate { "'" } else { ".'" });
            out.push(')');
        }
        Expr::Range {
            start, step, stop, ..
        } => {
            out.push('(');
            print_expr(out, start);
            out.push(':');
            if let Some(s) = step {
                print_expr(out, s);
                out.push(':');
            }
            print_expr(out, stop);
            out.push(')');
        }
        Expr::ColonAll { .. } => out.push(':'),
        Expr::EndKeyword { .. } => out.push_str("end"),
        Expr::Matrix { rows, .. } => {
            out.push('[');
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                for (j, e) in row.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    print_expr(out, e);
                }
            }
            out.push(']');
        }
        Expr::AnonFn { params, body, .. } => {
            let _ = write!(out, "@({}) ", params.join(", "));
            print_expr(out, body);
        }
        Expr::FnHandle { name, .. } => {
            let _ = write!(out, "@{name}");
        }
    }
}

/// Formats a float the way MATLAB source would write it, keeping exactness.
fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // `{:?}` for f64 is the shortest representation that round-trips.
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let (p1, d1) = parse(src);
        assert!(!d1.has_errors(), "first parse failed for {src:?}");
        let printed = print_program(&p1);
        let (p2, d2) = parse(&printed);
        assert!(
            !d2.has_errors(),
            "reparse failed for printed source:\n{printed}"
        );
        let reprinted = print_program(&p2);
        assert_eq!(printed, reprinted, "printer not a fixpoint for {src:?}");
    }

    #[test]
    fn round_trip_statements() {
        round_trip("x = 1;\ny = x + 2;");
        round_trip("for i = 1:10\n a(i) = i^2;\nend");
        round_trip("if x > 0\n y = 1;\nelse\n y = -1;\nend");
        round_trip("while n > 1\n n = n / 2;\nend");
    }

    #[test]
    fn round_trip_functions() {
        round_trip("function y = f(x)\ny = 2 * x;\nend");
        round_trip("function [a, b] = swap(x, y)\na = y;\nb = x;\nend");
    }

    #[test]
    fn round_trip_expressions() {
        round_trip("z = (3 + 4i) * conj(w);");
        round_trip("m = [1 2; 3 4]';");
        round_trip("v = x(1:2:end);");
        round_trip("s = sum(a .* b);");
        round_trip("h = @(t) exp(-t) .* cos(t);");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(0.5), "0.5");
        assert_eq!(format_number(-2.0), "-2");
    }
}
