//! # matic-frontend
//!
//! Lexer, parser, AST and diagnostics for the MATLAB subset compiled by the
//! `matic` MATLAB-to-C compiler (a reproduction of *"Matlab to C Compilation
//! Targeting Application Specific Instruction Set Processors"*, DATE 2016).
//!
//! The supported subset covers what DSP kernels are written in: functions,
//! matrices and ranges, `for`/`while`/`if`, element-wise and linear-algebra
//! operators, complex arithmetic, indexing with `end`, and multi-output
//! calls.
//!
//! # Examples
//!
//! ```
//! use matic_frontend::parse;
//!
//! let src = "function y = scale(x, k)\n    y = k .* x;\nend";
//! let (program, diags) = parse(src);
//! assert!(!diags.has_errors());
//! let f = program.function("scale").expect("function exists");
//! assert_eq!(f.params, vec!["x", "k"]);
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;

pub use ast::{BinOp, Expr, Function, LValue, Program, Stmt, UnOp};
pub use diag::{Diagnostic, DiagnosticBag, Severity};
pub use lexer::lex;
pub use parser::parse;
pub use printer::print_program;
pub use span::{LineCol, SourceMap, Span};
pub use token::{Token, TokenKind};
