//! Abstract syntax tree for the MATLAB subset.
//!
//! The tree is deliberately close to the concrete syntax: `x(i)` stays an
//! ambiguous [`Expr::Call`] node (function call vs. array index) because the
//! distinction needs symbol information and is resolved in `matic-sema`.

use crate::span::Span;
use std::fmt;

/// A parsed source file: zero or more function definitions plus an optional
/// leading script body (statements before any `function` keyword).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Statements that appear before the first function definition
    /// (MATLAB script semantics). Empty for pure function files.
    pub script: Vec<Stmt>,
    /// All function definitions in source order. The first one is the
    /// file's primary function; the rest are local functions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Whether the program has a script part.
    pub fn is_script(&self) -> bool {
        !self.script.is_empty()
    }
}

/// One `function [outs] = name(ins) ... end` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal input parameter names, in order.
    pub params: Vec<String>,
    /// Output variable names, in order.
    pub outputs: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Span of the `function` header line.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = rhs` — single-target assignment. The target may be a plain
    /// name or an indexed location (`x(i) = v`).
    Assign {
        /// Assignment target.
        target: LValue,
        /// Value expression.
        value: Expr,
        /// Whether the statement was terminated with `;` (output suppressed).
        suppressed: bool,
        /// Statement span.
        span: Span,
    },
    /// `[a, b] = f(...)` — multi-output assignment.
    MultiAssign {
        /// Assignment targets, one per requested output. `None` entries are
        /// `~` placeholders that discard the output.
        targets: Vec<Option<LValue>>,
        /// The call expression producing the outputs.
        call: Expr,
        /// Whether the statement was terminated with `;`.
        suppressed: bool,
        /// Statement span.
        span: Span,
    },
    /// A bare expression statement, e.g. `disp(x)` or `x + 1`.
    ExprStmt {
        /// The expression evaluated for effect/display.
        expr: Expr,
        /// Whether the statement was terminated with `;`.
        suppressed: bool,
        /// Statement span.
        span: Span,
    },
    /// `if c ... elseif c2 ... else ... end`
    If {
        /// `(condition, body)` arms: the `if` arm followed by `elseif` arms.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` body, if present.
        else_body: Option<Vec<Stmt>>,
        /// Statement span.
        span: Span,
    },
    /// `for var = range ... end`
    For {
        /// Loop variable name.
        var: String,
        /// The iterated expression (typically a colon range).
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Statement span.
        span: Span,
    },
    /// `while c ... end`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Statement span.
        span: Span,
    },
    /// `break`
    Break(Span),
    /// `continue`
    Continue(Span),
    /// `return`
    Return(Span),
    /// `global a b` — declares globals (accepted, used by scripts).
    Global {
        /// Declared names.
        names: Vec<String>,
        /// Statement span.
        span: Span,
    },
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::MultiAssign { span, .. }
            | Stmt::ExprStmt { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Global { span, .. } => *span,
            Stmt::Break(s) | Stmt::Continue(s) | Stmt::Return(s) => *s,
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Plain variable: `x = ...`.
    Name {
        /// Variable name.
        name: String,
        /// Span of the name.
        span: Span,
    },
    /// Indexed location: `x(i) = ...`, `x(i, j) = ...`, `x(:) = ...`.
    Index {
        /// Array variable name.
        name: String,
        /// Index argument expressions.
        indices: Vec<Expr>,
        /// Span of the whole target.
        span: Span,
    },
}

impl LValue {
    /// The variable name being (partially) assigned.
    pub fn name(&self) -> &str {
        match self {
            LValue::Name { name, .. } | LValue::Index { name, .. } => name,
        }
    }

    /// Span of the target.
    pub fn span(&self) -> Span {
        match self {
            LValue::Name { span, .. } | LValue::Index { span, .. } => *span,
        }
    }
}

/// Binary operators, in MATLAB spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*` matrix multiply
    MatMul,
    /// `.*` element-wise multiply
    ElemMul,
    /// `/` matrix right divide
    MatDiv,
    /// `./` element-wise divide
    ElemDiv,
    /// `\` matrix left divide
    MatLeftDiv,
    /// `.\` element-wise left divide
    ElemLeftDiv,
    /// `^` matrix power
    MatPow,
    /// `.^` element-wise power
    ElemPow,
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&` element-wise and
    And,
    /// `|` element-wise or
    Or,
    /// `&&` short-circuit and
    AndAnd,
    /// `||` short-circuit or
    OrOr,
}

impl BinOp {
    /// Whether the operator works element-wise on same-shaped operands
    /// (with scalar broadcast), as opposed to linear-algebra semantics.
    pub fn is_elementwise(self) -> bool {
        !matches!(
            self,
            BinOp::MatMul | BinOp::MatDiv | BinOp::MatLeftDiv | BinOp::MatPow
        )
    }

    /// Whether the result is logical (0/1) regardless of operand class.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// MATLAB surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::MatMul => "*",
            BinOp::ElemMul => ".*",
            BinOp::MatDiv => "/",
            BinOp::ElemDiv => "./",
            BinOp::MatLeftDiv => "\\",
            BinOp::ElemLeftDiv => ".\\",
            BinOp::MatPow => "^",
            BinOp::ElemPow => ".^",
            BinOp::Eq => "==",
            BinOp::Ne => "~=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::AndAnd => "&&",
            BinOp::OrOr => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `+x`
    Plus,
    /// `~x`
    Not,
}

impl UnOp {
    /// MATLAB surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Plus => "+",
            UnOp::Not => "~",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Real numeric literal.
    Number {
        /// Literal value.
        value: f64,
        /// Source span.
        span: Span,
    },
    /// Imaginary numeric literal (`2i` is `Imaginary { value: 2.0 }`).
    Imaginary {
        /// Imaginary-part magnitude.
        value: f64,
        /// Source span.
        span: Span,
    },
    /// Single-quoted character string.
    Str {
        /// String contents (unescaped).
        value: String,
        /// Source span.
        span: Span,
    },
    /// Variable reference (or zero-argument function call; resolved in sema).
    Ident {
        /// Name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// `f(a, b)` — function call or array indexing, ambiguous until sema.
    Call {
        /// Callee/array name.
        name: String,
        /// Arguments / indices.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// `a op b`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `op a`.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `a'` (conjugate) or `a.'` (plain) transpose.
    Transpose {
        /// Operand.
        operand: Box<Expr>,
        /// Whether the transpose conjugates (`'` vs `.'`).
        conjugate: bool,
        /// Source span.
        span: Span,
    },
    /// `start:stop` or `start:step:stop`.
    Range {
        /// Start expression.
        start: Box<Expr>,
        /// Step expression (`None` means 1).
        step: Option<Box<Expr>>,
        /// Stop expression.
        stop: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Bare `:` used as an index (whole dimension).
    ColonAll {
        /// Source span.
        span: Span,
    },
    /// `end` used inside an index expression.
    EndKeyword {
        /// Source span.
        span: Span,
    },
    /// Matrix literal `[r1c1 r1c2; r2c1 r2c2]` — rows of element lists.
    Matrix {
        /// Rows, each a list of horizontally concatenated expressions.
        rows: Vec<Vec<Expr>>,
        /// Source span.
        span: Span,
    },
    /// Anonymous function `@(x) expr`.
    AnonFn {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Function handle `@name`.
    FnHandle {
        /// Referenced function name.
        name: String,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Number { span, .. }
            | Expr::Imaginary { span, .. }
            | Expr::Str { span, .. }
            | Expr::Ident { span, .. }
            | Expr::Call { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Transpose { span, .. }
            | Expr::Range { span, .. }
            | Expr::ColonAll { span }
            | Expr::EndKeyword { span }
            | Expr::Matrix { span, .. }
            | Expr::AnonFn { span, .. }
            | Expr::FnHandle { span, .. } => *span,
        }
    }

    /// Convenience constructor for a literal number with a dummy span.
    pub fn number(value: f64) -> Expr {
        Expr::Number {
            value,
            span: Span::dummy(),
        }
    }

    /// Convenience constructor for an identifier with a dummy span.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident {
            name: name.into(),
            span: Span::dummy(),
        }
    }

    /// Whether the expression is a constant numeric literal (possibly
    /// negated), returning its value.
    pub fn as_const_number(&self) -> Option<f64> {
        match self {
            Expr::Number { value, .. } => Some(*value),
            Expr::Unary {
                op: UnOp::Neg,
                operand,
                ..
            } => operand.as_const_number().map(|v| -v),
            Expr::Unary {
                op: UnOp::Plus,
                operand,
                ..
            } => operand.as_const_number(),
            _ => None,
        }
    }

    /// Visits this expression and all sub-expressions, pre-order.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::Unary { operand, .. } | Expr::Transpose { operand, .. } => {
                operand.walk(visit);
            }
            Expr::Range {
                start, step, stop, ..
            } => {
                start.walk(visit);
                if let Some(s) = step {
                    s.walk(visit);
                }
                stop.walk(visit);
            }
            Expr::Matrix { rows, .. } => {
                for row in rows {
                    for e in row {
                        e.walk(visit);
                    }
                }
            }
            Expr::AnonFn { body, .. } => body.walk(visit),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::ElemMul.is_elementwise());
        assert!(!BinOp::MatMul.is_elementwise());
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn const_number_through_negation() {
        let e = Expr::Unary {
            op: UnOp::Neg,
            operand: Box::new(Expr::number(4.0)),
            span: Span::dummy(),
        };
        assert_eq!(e.as_const_number(), Some(-4.0));
        assert_eq!(Expr::ident("x").as_const_number(), None);
    }

    #[test]
    fn walk_visits_nested() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::ident("a")),
            rhs: Box::new(Expr::Call {
                name: "f".into(),
                args: vec![Expr::number(1.0)],
                span: Span::dummy(),
            }),
            span: Span::dummy(),
        };
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn program_function_lookup() {
        let mut p = Program::default();
        p.functions.push(Function {
            name: "fir".into(),
            params: vec!["x".into()],
            outputs: vec!["y".into()],
            body: vec![],
            span: Span::dummy(),
        });
        assert!(p.function("fir").is_some());
        assert!(p.function("nope").is_none());
        assert!(!p.is_script());
    }
}
