//! Compiler diagnostics shared by every stage of the pipeline.

use crate::span::{SourceMap, Span};
use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A note attached to another diagnostic or informational output.
    Note,
    /// Suspicious but compilable construct.
    Warning,
    /// The input is invalid; compilation cannot produce output.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// One message with a source location, produced by any compiler stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the problem is.
    pub severity: Severity,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Location in the source buffer the message refers to.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with a resolved line/column using `map`.
    pub fn render(&self, map: &SourceMap) -> String {
        let pos = map.line_col(self.span.start);
        format!("{}: {} at {}", self.severity, self.message, pos)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} at {}", self.severity, self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

/// Accumulates diagnostics across a compiler stage.
///
/// Stages push into a `DiagnosticBag` while recovering, then the driver
/// checks [`DiagnosticBag::has_errors`] before moving to the next stage.
#[derive(Debug, Clone, Default)]
pub struct DiagnosticBag {
    diags: Vec<Diagnostic>,
}

impl DiagnosticBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Records an error with a message and span.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Records a warning with a message and span.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(message, span));
    }

    /// All recorded diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics recorded.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Consumes the bag, returning the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// The first error, if any — convenient for turning a bag into a
    /// `Result` in single-error APIs.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diags.iter().find(|d| d.severity == Severity::Error)
    }
}

impl Extend<Diagnostic> for DiagnosticBag {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        self.diags.extend(iter);
    }
}

impl IntoIterator for DiagnosticBag {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_tracks_errors() {
        let mut bag = DiagnosticBag::new();
        assert!(!bag.has_errors());
        bag.warning("odd spacing", Span::new(0, 1));
        assert!(!bag.has_errors());
        bag.error("unexpected token", Span::new(1, 2));
        assert!(bag.has_errors());
        assert_eq!(bag.len(), 2);
        assert_eq!(bag.first_error().unwrap().message, "unexpected token");
    }

    #[test]
    fn render_includes_position() {
        let map = SourceMap::new("a\nbb = ;");
        let d = Diagnostic::error("unexpected `;`", Span::new(7, 8));
        assert_eq!(d.render(&map), "error: unexpected `;` at 2:6");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
