//! Byte-offset source spans and line/column resolution.

use std::fmt;

/// A half-open byte range `[start, end)` into a source buffer.
///
/// Spans are attached to every token and AST node so that diagnostics in any
/// later compiler stage can point back at concrete source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(end >= start, "span end before start");
        Span { start, end }
    }

    /// A zero-length span at offset 0, used for synthesized nodes.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// 1-based line/column position resolved from a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets in one source buffer to line/column positions.
///
/// # Examples
///
/// ```
/// use matic_frontend::span::{SourceMap, Span};
///
/// let map = SourceMap::new("a = 1;\nb = 2;");
/// let pos = map.line_col(7);
/// assert_eq!((pos.line, pos.col), (2, 1));
/// ```
#[derive(Debug, Clone)]
pub struct SourceMap {
    src: String,
    /// Byte offsets at which each line starts.
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Builds a map over `src`, recording every line start.
    pub fn new(src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap { src, line_starts }
    }

    /// The underlying source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Resolves a byte offset to a 1-based line/column pair.
    ///
    /// Offsets past the end of the buffer clamp to the final position.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.src.len() as u32);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// The source text covered by `span`.
    ///
    /// # Panics
    ///
    /// Panics if the span is not on a UTF-8 character boundary or out of
    /// range.
    pub fn snippet(&self, span: Span) -> &str {
        &self.src[span.start as usize..span.end as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn line_col_first_line() {
        let m = SourceMap::new("abc");
        assert_eq!(m.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(m.line_col(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_col_after_newlines() {
        let m = SourceMap::new("x\ny\nz");
        assert_eq!(m.line_col(2), LineCol { line: 2, col: 1 });
        assert_eq!(m.line_col(4), LineCol { line: 3, col: 1 });
    }

    #[test]
    fn line_col_clamps_past_end() {
        let m = SourceMap::new("ab");
        assert_eq!(m.line_col(99), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn snippet_extracts_text() {
        let m = SourceMap::new("hello world");
        assert_eq!(m.snippet(Span::new(6, 11)), "world");
    }

    #[test]
    fn empty_source() {
        let m = SourceMap::new("");
        assert_eq!(m.line_col(0), LineCol { line: 1, col: 1 });
    }
}
