//! Test/benchmark harness generation: a C `main()` that feeds concrete
//! inputs to a compiled entry function and prints its outputs in a
//! machine-readable format.
//!
//! The differential test suite compiles `module.c + harness` with the
//! host C compiler, runs it, parses the printed outputs, and compares
//! them against the reference interpreter.

use crate::emit::{fmt_f64, repr_of, CModule, CodegenError};
use matic_frontend::span::Span;
use matic_mir::MirFunction;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A concrete runtime value fed to (or read back from) generated C.
#[derive(Debug, Clone, PartialEq)]
pub struct CValue {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Real parts, column-major, `rows*cols` entries.
    pub re: Vec<f64>,
    /// Imaginary parts; `None` for real values.
    pub im: Option<Vec<f64>>,
}

impl CValue {
    /// A real scalar.
    pub fn scalar(v: f64) -> CValue {
        CValue {
            rows: 1,
            cols: 1,
            re: vec![v],
            im: None,
        }
    }

    /// A complex scalar.
    pub fn cx_scalar(re: f64, im: f64) -> CValue {
        CValue {
            rows: 1,
            cols: 1,
            re: vec![re],
            im: Some(vec![im]),
        }
    }

    /// A real row vector.
    pub fn row(values: &[f64]) -> CValue {
        CValue {
            rows: 1,
            cols: values.len(),
            re: values.to_vec(),
            im: None,
        }
    }

    /// A complex row vector from `(re, im)` pairs.
    pub fn cx_row(pairs: &[(f64, f64)]) -> CValue {
        CValue {
            rows: 1,
            cols: pairs.len(),
            re: pairs.iter().map(|p| p.0).collect(),
            im: Some(pairs.iter().map(|p| p.1).collect()),
        }
    }

    /// Whether the value is 1×1.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Whether the value carries imaginary parts.
    pub fn is_complex(&self) -> bool {
        self.im.is_some()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.rows * self.cols
    }

    /// Parses the harness output format produced by [`Harness::main_source`]:
    /// per output, a `rows cols iscomplex` header line followed by `numel`
    /// lines of `re im` pairs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_outputs(text: &str) -> Result<Vec<CValue>, String> {
        let mut values = Vec::new();
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        while let Some(header) = lines.next() {
            let mut it = header.split_whitespace();
            let rows: usize = it
                .next()
                .ok_or("missing rows")?
                .parse()
                .map_err(|_| format!("bad rows in {header:?}"))?;
            let cols: usize = it
                .next()
                .ok_or("missing cols")?
                .parse()
                .map_err(|_| format!("bad cols in {header:?}"))?;
            let complex: u32 = it
                .next()
                .ok_or("missing complex flag")?
                .parse()
                .map_err(|_| format!("bad complex flag in {header:?}"))?;
            let n = rows * cols;
            let mut re = Vec::with_capacity(n);
            let mut im = Vec::with_capacity(n);
            for _ in 0..n {
                let line = lines.next().ok_or("truncated output")?;
                let mut parts = line.split_whitespace();
                re.push(
                    parts
                        .next()
                        .ok_or("missing re")?
                        .parse()
                        .map_err(|_| format!("bad re in {line:?}"))?,
                );
                im.push(
                    parts
                        .next()
                        .ok_or("missing im")?
                        .parse()
                        .map_err(|_| format!("bad im in {line:?}"))?,
                );
            }
            values.push(CValue {
                rows,
                cols,
                re,
                im: if complex != 0 { Some(im) } else { None },
            });
        }
        Ok(values)
    }

    /// Maximum absolute difference to another value over real and
    /// imaginary parts; `None` if shapes differ.
    pub fn max_abs_diff(&self, other: &CValue) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        let zeros_a = vec![0.0; self.numel()];
        let zeros_b = vec![0.0; other.numel()];
        let ia = self.im.as_deref().unwrap_or(&zeros_a);
        let ib = other.im.as_deref().unwrap_or(&zeros_b);
        let mut worst: f64 = 0.0;
        for k in 0..self.numel() {
            worst = worst.max((self.re[k] - other.re[k]).abs());
            worst = worst.max((ia[k] - ib[k]).abs());
        }
        Some(worst)
    }
}

/// Generates C `main()` functions for compiled entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct Harness;

impl Harness {
    /// Emits a `main()` that calls `func` once with `inputs` and prints
    /// every output (`%.17g` so doubles round-trip). Pass `repeat > 1`
    /// to re-run the kernel in a timing loop before printing.
    ///
    /// # Errors
    ///
    /// Fails when an input's realness or count does not match the
    /// compiled signature.
    pub fn main_source(
        &self,
        func: &MirFunction,
        inputs: &[CValue],
        repeat: usize,
    ) -> Result<String, CodegenError> {
        if inputs.len() != func.params.len() {
            return Err(CodegenError::new_public(
                format!(
                    "harness: {} inputs for {} parameters",
                    inputs.len(),
                    func.params.len()
                ),
                Span::dummy(),
            ));
        }
        let mut out = String::new();
        out.push_str("int main(void) {\n");

        let mut arg_exprs = Vec::new();
        for (k, (&p, val)) in func.params.iter().zip(inputs).enumerate() {
            let repr = repr_of(func.var_ty(p), Span::dummy())?;
            match (repr.is_scalar(), repr.is_cx()) {
                (true, false) => {
                    if val.is_complex() {
                        return Err(CodegenError::new_public(
                            format!("harness: complex input {k} for real parameter"),
                            Span::dummy(),
                        ));
                    }
                    let _ = writeln!(out, "    double in{k} = {};", fmt_f64(val.re[0]));
                    arg_exprs.push(format!("in{k}"));
                }
                (true, true) => {
                    let im = val.im.as_ref().map(|v| v[0]).unwrap_or(0.0);
                    let _ = writeln!(
                        out,
                        "    matic_cx in{k} = {{{}, {}}};",
                        fmt_f64(val.re[0]),
                        fmt_f64(im)
                    );
                    arg_exprs.push(format!("in{k}"));
                }
                (false, false) => {
                    if val.is_complex() {
                        return Err(CodegenError::new_public(
                            format!("harness: complex input {k} for real array parameter"),
                            Span::dummy(),
                        ));
                    }
                    let data: Vec<String> = val.re.iter().map(|v| fmt_f64(*v)).collect();
                    let _ = writeln!(
                        out,
                        "    static double in{k}_data[] = {{{}}};",
                        if data.is_empty() {
                            "0.0".to_string()
                        } else {
                            data.join(", ")
                        }
                    );
                    let _ = writeln!(
                        out,
                        "    matic_arr in{k} = {{in{k}_data, {}, {}}};",
                        val.rows, val.cols
                    );
                    arg_exprs.push(format!("&in{k}"));
                }
                (false, true) => {
                    let zeros = vec![0.0; val.numel()];
                    let im = val.im.as_deref().unwrap_or(&zeros);
                    let data: Vec<String> = val
                        .re
                        .iter()
                        .zip(im)
                        .map(|(r, i)| format!("{{{}, {}}}", fmt_f64(*r), fmt_f64(*i)))
                        .collect();
                    let _ = writeln!(
                        out,
                        "    static matic_cx in{k}_data[] = {{{}}};",
                        if data.is_empty() {
                            "{0.0, 0.0}".to_string()
                        } else {
                            data.join(", ")
                        }
                    );
                    let _ = writeln!(
                        out,
                        "    matic_carr in{k} = {{in{k}_data, {}, {}}};",
                        val.rows, val.cols
                    );
                    arg_exprs.push(format!("&in{k}"));
                }
            }
        }

        for (k, &o) in func.outputs.iter().enumerate() {
            let repr = repr_of(func.var_ty(o), Span::dummy())?;
            let decl = match (repr.is_scalar(), repr.is_cx()) {
                (true, false) => format!("    double out{k} = 0.0;"),
                (true, true) => format!("    matic_cx out{k} = {{0.0, 0.0}};"),
                (false, false) => format!("    matic_arr out{k} = {{0, 0, 0}};"),
                (false, true) => format!("    matic_carr out{k} = {{0, 0, 0}};"),
            };
            out.push_str(&decl);
            out.push('\n');
            arg_exprs.push(format!("&out{k}"));
        }

        let call = format!("mt_{}({});", func.name, arg_exprs.join(", "));
        if repeat > 1 {
            let _ = writeln!(
                out,
                "    {{ int rep; for (rep = 0; rep < {repeat}; ++rep) {{ matic_rt_reset(); {call} }} }}"
            );
        } else {
            let _ = writeln!(out, "    {call}");
        }

        for (k, &o) in func.outputs.iter().enumerate() {
            let repr = repr_of(func.var_ty(o), Span::dummy())?;
            match (repr.is_scalar(), repr.is_cx()) {
                (true, false) => {
                    let _ = writeln!(out, "    printf(\"1 1 0\\n%.17g 0\\n\", out{k});");
                }
                (true, true) => {
                    let _ = writeln!(
                        out,
                        "    printf(\"1 1 1\\n%.17g %.17g\\n\", out{k}.re, out{k}.im);"
                    );
                }
                (false, false) => {
                    let _ = writeln!(out, "    printf(\"%d %d 0\\n\", out{k}.rows, out{k}.cols);");
                    let _ = writeln!(
                        out,
                        "    {{ int i; for (i = 0; i < out{k}.rows * out{k}.cols; ++i) printf(\"%.17g 0\\n\", out{k}.data[i]); }}"
                    );
                }
                (false, true) => {
                    let _ = writeln!(out, "    printf(\"%d %d 1\\n\", out{k}.rows, out{k}.cols);");
                    let _ = writeln!(
                        out,
                        "    {{ int i; for (i = 0; i < out{k}.rows * out{k}.cols; ++i) printf(\"%.17g %.17g\\n\", out{k}.data[i].re, out{k}.data[i].im); }}"
                    );
                }
            }
        }
        out.push_str("    return 0;\n}\n");
        Ok(out)
    }
}

/// Writes a module (plus headers) into `dir`, returning the path of the
/// written `.c` file. Appends `extra` (e.g. a harness `main`) when given.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_module(dir: &Path, module: &CModule, extra: Option<&str>) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("matic_rt.h"), &module.rt_header)?;
    std::fs::write(dir.join("matic_intrinsics.h"), &module.intrinsics_header)?;
    let mut src = module.source.clone();
    if let Some(e) = extra {
        src.push('\n');
        src.push_str(e);
    }
    let path = dir.join("module.c");
    std::fs::write(&path, src)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cvalue_constructors() {
        let s = CValue::scalar(2.0);
        assert!(s.is_scalar());
        assert!(!s.is_complex());
        let z = CValue::cx_scalar(1.0, -1.0);
        assert!(z.is_complex());
        let v = CValue::row(&[1.0, 2.0, 3.0]);
        assert_eq!(v.numel(), 3);
    }

    #[test]
    fn parse_outputs_round_trip() {
        let text = "1 1 0\n42 0\n2 1 1\n1 2\n3 4\n";
        let vals = CValue::parse_outputs(text).unwrap();
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0].re[0], 42.0);
        assert!(!vals[0].is_complex());
        assert_eq!(vals[1].rows, 2);
        assert_eq!(vals[1].im.as_ref().unwrap()[1], 4.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CValue::parse_outputs("1 1\n").is_err());
        assert!(CValue::parse_outputs("2 1 0\n1 0\n").is_err());
    }

    #[test]
    fn max_abs_diff() {
        let a = CValue::row(&[1.0, 2.0]);
        let b = CValue::row(&[1.0, 2.5]);
        assert_eq!(a.max_abs_diff(&b), Some(0.5));
        let c = CValue::row(&[1.0]);
        assert_eq!(a.max_abs_diff(&c), None);
    }
}
