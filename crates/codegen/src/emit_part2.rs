// Continuation of `FnEmitter` — included from emit.rs so the type's
// methods stay in one module without one 2000-line file.

/// `(count_expr, base_expr(k))` pair describing one 2-D subscript: how many
/// positions the subscript selects and, given a loop counter, the C
/// expression for the k-th selected 0-based position.
type SubscriptPlan = (String, Box<dyn Fn(&str) -> String>);

impl<'a> FnEmitter<'a> {
    // ---- indexing -------------------------------------------------------

    fn emit_index_load(
        &mut self,
        dst: VarId,
        array: VarId,
        indices: &[Index],
        span: Span,
    ) -> Result<(), CodegenError> {
        let dname = c_name(self.f, dst);
        let aname = c_name(self.f, array);
        let drepr = self.repr(dst)?;
        let arepr = self.repr(array)?;
        let widen = drepr.is_cx();
        if arepr.is_cx() && !widen {
            return Err(CodegenError::new(
                "complex array indexed into real destination",
                span,
            ));
        }
        match indices {
            [Index::Scalar(op)] if self.op_repr(*op)?.is_scalar() && drepr.is_scalar() => {
                let i0 = self.index0(*op, span)?;
                let e = self.checked_elem(array, &i0, widen, "index")?;
                self.line(&format!("{dname} = {e};"));
                Ok(())
            }
            [Index::Scalar(r), Index::Scalar(c)]
                if self.op_repr(*r)?.is_scalar()
                    && self.op_repr(*c)?.is_scalar()
                    && drepr.is_scalar() =>
            {
                let r0 = self.index0(*r, span)?;
                let c0 = self.index0(*c, span)?;
                let idx = format!("(({c0}) * {aname}.rows + ({r0}))");
                let e = self.checked_elem(array, &idx, widen, "index")?;
                self.line(&format!("{dname} = {e};"));
                Ok(())
            }
            // Gather: x(idx) with a vector of indices.
            [Index::Scalar(op)] if !self.op_repr(*op)?.is_scalar() => {
                let iv = self.array_var(*op, span)?;
                let ivn = c_name(self.f, iv);
                let alloc = if drepr.is_cx() {
                    "matic_carr_alloc"
                } else {
                    "matic_arr_alloc"
                };
                self.line(&format!("{dname} = {alloc}({ivn}.rows, {ivn}.cols);"));
                let i = self.fresh("i");
                let src = self.checked_elem(
                    array,
                    &format!("((int){ivn}.data[{i}] - 1)"),
                    widen,
                    "gather",
                )?;
                self.line(&format!(
                    "{{ int {i}; for ({i} = 0; {i} < {ivn}.rows * {ivn}.cols; ++{i}) {dname}.data[{i}] = {src}; }}"
                ));
                Ok(())
            }
            [Index::Range { start, step, stop }] => {
                let s = self.scalar(*start, false, span)?;
                let st = self.scalar(*step, false, span)?;
                let e = self.scalar(*stop, false, span)?;
                let n = self.fresh("n");
                let i = self.fresh("i");
                let sv = self.fresh("s");
                let stv = self.fresh("st");
                let col = self.f.var_ty(dst).shape.cols.is_one()
                    && !self.f.var_ty(dst).shape.rows.is_one();
                let alloc = if drepr.is_cx() {
                    "matic_carr_alloc"
                } else {
                    "matic_arr_alloc"
                };
                self.line("{");
                self.indent += 1;
                self.line(&format!("double {sv} = {s}, {stv} = {st};"));
                self.line(&format!(
                    "int {n} = ({stv} == 0.0) ? 0 : (int)floor((({e}) - {sv}) / {stv} + 1e-10) + 1;"
                ));
                self.line(&format!("if ({n} < 0) {n} = 0;"));
                if col {
                    self.line(&format!("{dname} = {alloc}({n}, 1);"));
                } else {
                    self.line(&format!("{dname} = {alloc}(1, {n});"));
                }
                let src = self.checked_elem(
                    array,
                    &format!("((int)({sv} + {stv} * (double){i}) - 1)"),
                    widen,
                    "slice",
                )?;
                self.line(&format!(
                    "{{ int {i}; for ({i} = 0; {i} < {n}; ++{i}) {dname}.data[{i}] = {src}; }}"
                ));
                self.indent -= 1;
                self.line("}");
                Ok(())
            }
            // x(:) — all elements as a column.
            [Index::Full] => {
                let alloc = if drepr.is_cx() {
                    "matic_carr_alloc"
                } else {
                    "matic_arr_alloc"
                };
                self.line(&format!(
                    "{dname} = {alloc}({aname}.rows * {aname}.cols, 1);"
                ));
                let i = self.fresh("i");
                let src = self.checked_elem(array, &i, widen, "colon")?;
                self.line(&format!(
                    "{{ int {i}; for ({i} = 0; {i} < {aname}.rows * {aname}.cols; ++{i}) {dname}.data[{i}] = {src}; }}"
                ));
                Ok(())
            }
            [ri, ci] => self.emit_index_load_2d(dst, array, ri, ci, span),
            _ => Err(CodegenError::new(
                "unsupported indexing form in C backend",
                span,
            )),
        }
    }

    /// `(count_expr, base_expr(k))` pair describing one 2-D subscript.
    fn subscript_plan(
        &mut self,
        idx: &Index,
        dim_extent: &str,
        span: Span,
    ) -> Result<SubscriptPlan, CodegenError> {
        match idx {
            Index::Scalar(op) => {
                let i0 = self.index0(*op, span)?;
                Ok(("1".to_string(), {
                    let i0 = i0.clone();
                    Box::new(move |_k: &str| i0.clone())
                }))
            }
            Index::Full => {
                let ext = dim_extent.to_string();
                Ok((ext, Box::new(move |k: &str| k.to_string())))
            }
            Index::Range { start, step, stop } => {
                let s = self.scalar(*start, false, span)?;
                let st = self.scalar(*step, false, span)?;
                let e = self.scalar(*stop, false, span)?;
                let n = format!(
                    "(({st}) == 0.0 ? 0 : (int)floor((({e}) - ({s})) / ({st}) + 1e-10) + 1)"
                );
                Ok((n, {
                    let s = s.clone();
                    let st = st.clone();
                    Box::new(move |k: &str| {
                        format!("((int)(({s}) + ({st}) * (double)({k})) - 1)")
                    })
                }))
            }
        }
    }

    fn emit_index_load_2d(
        &mut self,
        dst: VarId,
        array: VarId,
        ri: &Index,
        ci: &Index,
        span: Span,
    ) -> Result<(), CodegenError> {
        let dname = c_name(self.f, dst);
        let aname = c_name(self.f, array);
        let drepr = self.repr(dst)?;
        let widen = drepr.is_cx();
        let (nr, rbase) = self.subscript_plan(ri, &format!("{aname}.rows"), span)?;
        let (nc, cbase) = self.subscript_plan(ci, &format!("{aname}.cols"), span)?;
        if drepr.is_scalar() {
            let idx = format!("(({}) * {aname}.rows + ({}))", cbase("0"), rbase("0"));
            let e = self.checked_elem(array, &idx, widen, "index2d")?;
            self.line(&format!("{dname} = {e};"));
            return Ok(());
        }
        let alloc = if drepr.is_cx() {
            "matic_carr_alloc"
        } else {
            "matic_arr_alloc"
        };
        let (i, j) = (self.fresh("i"), self.fresh("j"));
        self.line(&format!("{dname} = {alloc}({nr}, {nc});"));
        let idx = format!("(({}) * {aname}.rows + ({}))", cbase(&j), rbase(&i));
        let e = self.checked_elem(array, &idx, widen, "index2d")?;
        self.line(&format!(
            "{{ int {i}, {j}; for ({j} = 0; {j} < {dname}.cols; ++{j}) for ({i} = 0; {i} < {dname}.rows; ++{i}) {dname}.data[{j} * {dname}.rows + {i}] = {e}; }}"
        ));
        Ok(())
    }

    fn checked_elem(
        &self,
        array: VarId,
        idx0: &str,
        widen: bool,
        what: &str,
    ) -> Result<String, CodegenError> {
        let aname = c_name(self.f, array);
        let e = format!(
            "{aname}.data[MATIC_IDX({idx0}, {aname}.rows * {aname}.cols, \"{what}\")]"
        );
        let is_cx = self.repr(array)?.is_cx();
        Ok(match (is_cx, widen) {
            (false, true) => format!("cx_make({e}, 0.0)"),
            _ => e,
        })
    }

    fn emit_store(
        &mut self,
        array: VarId,
        indices: &[Index],
        value: Operand,
        span: Span,
    ) -> Result<(), CodegenError> {
        let aname = c_name(self.f, array);
        let arepr = self.repr(array)?;
        let want_cx = arepr.is_cx();
        match indices {
            [Index::Scalar(op)] if self.op_repr(*op)?.is_scalar() => {
                if !self.op_repr(value)?.is_scalar() {
                    return Err(CodegenError::new(
                        "array stored at a scalar subscript",
                        span,
                    ));
                }
                let i0 = self.index0(*op, span)?;
                let v = self.scalar(value, want_cx, span)?;
                self.line(&format!(
                    "{aname}.data[MATIC_IDX({i0}, {aname}.rows * {aname}.cols, \"store\")] = {v};"
                ));
                Ok(())
            }
            [Index::Scalar(r), Index::Scalar(c)]
                if self.op_repr(*r)?.is_scalar() && self.op_repr(*c)?.is_scalar() =>
            {
                let r0 = self.index0(*r, span)?;
                let c0 = self.index0(*c, span)?;
                let v = self.scalar(value, want_cx, span)?;
                self.line(&format!(
                    "{aname}.data[MATIC_IDX((({c0}) * {aname}.rows + ({r0})), {aname}.rows * {aname}.cols, \"store\")] = {v};"
                ));
                Ok(())
            }
            // Gather store: x(idx) = v with idx a vector.
            [Index::Scalar(op)] => {
                let iv = self.array_var(*op, span)?;
                let ivn = c_name(self.f, iv);
                let i = self.fresh("i");
                let v = if self.op_repr(value)?.is_scalar() {
                    self.scalar(value, want_cx, span)?
                } else {
                    self.elem(value, &i, want_cx, span)?
                };
                self.line(&format!(
                    "{{ int {i}; for ({i} = 0; {i} < {ivn}.rows * {ivn}.cols; ++{i}) {aname}.data[MATIC_IDX((int){ivn}.data[{i}] - 1, {aname}.rows * {aname}.cols, \"store\")] = {v}; }}"
                ));
                Ok(())
            }
            [Index::Range { start, step, stop }] => {
                let s = self.scalar(*start, false, span)?;
                let st = self.scalar(*step, false, span)?;
                let e = self.scalar(*stop, false, span)?;
                let n = self.fresh("n");
                let i = self.fresh("i");
                let sv = self.fresh("s");
                let stv = self.fresh("st");
                self.line("{");
                self.indent += 1;
                self.line(&format!("double {sv} = {s}, {stv} = {st};"));
                self.line(&format!(
                    "int {n} = ({stv} == 0.0) ? 0 : (int)floor((({e}) - {sv}) / {stv} + 1e-10) + 1;"
                ));
                let v = if self.op_repr(value)?.is_scalar() {
                    self.scalar(value, want_cx, span)?
                } else {
                    self.elem(value, &i, want_cx, span)?
                };
                self.line(&format!(
                    "{{ int {i}; for ({i} = 0; {i} < {n}; ++{i}) {aname}.data[MATIC_IDX((int)({sv} + {stv} * (double){i}) - 1, {aname}.rows * {aname}.cols, \"store\")] = {v}; }}"
                ));
                self.indent -= 1;
                self.line("}");
                Ok(())
            }
            [Index::Full] => {
                let i = self.fresh("i");
                let v = if self.op_repr(value)?.is_scalar() {
                    self.scalar(value, want_cx, span)?
                } else {
                    self.elem(value, &i, want_cx, span)?
                };
                self.line(&format!(
                    "{{ int {i}; for ({i} = 0; {i} < {aname}.rows * {aname}.cols; ++{i}) {aname}.data[{i}] = {v}; }}"
                ));
                Ok(())
            }
            [ri, ci] => {
                let (nr, rbase) = self.subscript_plan(ri, &format!("{aname}.rows"), span)?;
                let (nc, cbase) = self.subscript_plan(ci, &format!("{aname}.cols"), span)?;
                let (i, j) = (self.fresh("i"), self.fresh("j"));
                let lin = format!("({nr}) * ({j}) + ({i})");
                let v = if self.op_repr(value)?.is_scalar() {
                    self.scalar(value, want_cx, span)?
                } else {
                    self.elem(value, &lin, want_cx, span)?
                };
                let idx = format!("(({}) * {aname}.rows + ({}))", cbase(&j), rbase(&i));
                self.line(&format!(
                    "{{ int {i}, {j}; for ({j} = 0; {j} < ({nc}); ++{j}) for ({i} = 0; {i} < ({nr}); ++{i}) {aname}.data[MATIC_IDX({idx}, {aname}.rows * {aname}.cols, \"store2d\")] = {v}; }}"
                ));
                Ok(())
            }
            _ => Err(CodegenError::new("unsupported store form", span)),
        }
    }

    // ---- builtins ---------------------------------------------------------

    fn emit_builtin(
        &mut self,
        dst: VarId,
        name: &str,
        args: &[Operand],
        span: Span,
    ) -> Result<(), CodegenError> {
        let dname = c_name(self.f, dst);
        let drepr = self.repr(dst)?;
        let arg_is_scalar = |k: usize| -> Result<bool, CodegenError> {
            Ok(self
                .op_repr(*args.get(k).unwrap_or(&Operand::Const(0.0)))?
                .is_scalar())
        };

        // Constants.
        match name {
            "pi" => {
                self.line(&format!("{dname} = 3.14159265358979311599796346854;"));
                return Ok(());
            }
            "eps" => {
                self.line(&format!("{dname} = 2.220446049250313e-16;"));
                return Ok(());
            }
            "Inf" | "inf" => {
                self.line(&format!("{dname} = INFINITY;"));
                return Ok(());
            }
            "NaN" | "nan" => {
                self.line(&format!("{dname} = NAN;"));
                return Ok(());
            }
            "i" | "j" => {
                self.line(&format!("{dname} = cx_make(0.0, 1.0);"));
                return Ok(());
            }
            _ => {}
        }

        // Shape queries.
        if matches!(name, "numel" | "length" | "size" | "isempty") {
            let a = args[0];
            let expr = match (name, a.as_var()) {
                (_, None) => match name {
                    "numel" | "length" => "1.0".to_string(),
                    "isempty" => "0.0".to_string(),
                    _ => "1.0".to_string(),
                },
                (n, Some(v)) => {
                    let vn = c_name(self.f, v);
                    if self.repr(v)?.is_scalar() {
                        match n {
                            "numel" | "length" => "1.0".to_string(),
                            "isempty" => "0.0".to_string(),
                            "size" => {
                                // size(scalar, d) == 1
                                "1.0".to_string()
                            }
                            _ => unreachable!(),
                        }
                    } else {
                        match n {
                            "numel" => format!("(double)({vn}.rows * {vn}.cols)"),
                            "length" => format!(
                                "(double)(({vn}.rows * {vn}.cols == 0) ? 0 : ({vn}.rows > {vn}.cols ? {vn}.rows : {vn}.cols))"
                            ),
                            "isempty" => {
                                format!("(({vn}.rows * {vn}.cols == 0) ? 1.0 : 0.0)")
                            }
                            "size" => {
                                let d = args.get(1).copied().ok_or_else(|| {
                                    CodegenError::new(
                                        "size() without dimension needs multi-assign",
                                        span,
                                    )
                                })?;
                                let d0 = self.scalar(d, false, span)?;
                                format!(
                                    "(double)(((int)({d0}) == 1) ? {vn}.rows : (((int)({d0}) == 2) ? {vn}.cols : 1))"
                                )
                            }
                            _ => unreachable!(),
                        }
                    }
                }
            };
            self.line(&format!("{dname} = {expr};"));
            return Ok(());
        }

        // Scalar math on scalar operands.
        if drepr.is_scalar() && args.iter().all(|a| self.op_repr(*a).map(Repr::is_scalar).unwrap_or(false)) {
            return self.emit_scalar_builtin(dst, name, args, span);
        }

        // Reductions over arrays.
        if matches!(
            name,
            "sum" | "prod" | "mean" | "min" | "max" | "dot" | "norm" | "any" | "all"
        ) && !arg_is_scalar(0)?
        {
            return self.emit_reduction_builtin(dst, name, args, span);
        }

        // Element-wise maps over arrays.
        if args.len() == 1 && !arg_is_scalar(0)? {
            return self.emit_map_builtin(dst, name, args[0], span);
        }

        // linspace / complex with scalar args producing arrays.
        match name {
            "linspace" => {
                let a = self.scalar(args[0], false, span)?;
                let b = self.scalar(args[1], false, span)?;
                let n = if args.len() > 2 {
                    format!("(int)({})", self.scalar(args[2], false, span)?)
                } else {
                    "100".to_string()
                };
                let i = self.fresh("i");
                let nn = self.fresh("n");
                self.line("{");
                self.indent += 1;
                self.line(&format!("int {nn} = {n};"));
                self.line(&format!("{dname} = matic_arr_alloc(1, {nn});"));
                self.line(&format!(
                    "{{ int {i}; for ({i} = 0; {i} < {nn}; ++{i}) {dname}.data[{i}] = ({nn} == 1) ? ({b}) : (({a}) + (({b}) - ({a})) * (double){i} / (double)({nn} - 1)); }}"
                ));
                self.indent -= 1;
                self.line("}");
                Ok(())
            }
            "complex" => {
                // complex(re, im) with at least one array argument.
                let re = args[0];
                let im = args[1];
                let like = re.as_var().or_else(|| im.as_var()).ok_or_else(|| {
                    CodegenError::new("complex() needs a variable argument", span)
                })?;
                let ln = c_name(self.f, like);
                self.line(&format!("{dname} = matic_carr_alloc({ln}.rows, {ln}.cols);"));
                let i = self.fresh("i");
                let re_e = self.elem(re, &i, false, span)?;
                let im_e = self.elem(im, &i, false, span)?;
                self.line(&format!(
                    "{{ int {i}; for ({i} = 0; {i} < {ln}.rows * {ln}.cols; ++{i}) {dname}.data[{i}] = cx_make({re_e}, {im_e}); }}"
                ));
                Ok(())
            }
            "fliplr" | "flipud" => {
                let av = args[0].as_var().ok_or_else(|| {
                    CodegenError::new("flip of constant", span)
                })?;
                let an = c_name(self.f, av);
                let alloc = if drepr.is_cx() {
                    "matic_carr_alloc"
                } else {
                    "matic_arr_alloc"
                };
                self.line(&format!("{dname} = {alloc}({an}.rows, {an}.cols);"));
                let (i, j) = (self.fresh("i"), self.fresh("j"));
                let src_idx = if name == "fliplr" {
                    format!("({an}.cols - 1 - {j}) * {an}.rows + {i}")
                } else {
                    format!("{j} * {an}.rows + ({an}.rows - 1 - {i})")
                };
                self.line(&format!(
                    "{{ int {i}, {j}; for ({j} = 0; {j} < {an}.cols; ++{j}) for ({i} = 0; {i} < {an}.rows; ++{i}) {dname}.data[{j} * {dname}.rows + {i}] = {an}.data[{src_idx}]; }}"
                ));
                Ok(())
            }
            _ => Err(CodegenError::new(
                format!("builtin `{name}` is not supported by the C backend"),
                span,
            )),
        }
    }

    fn emit_scalar_builtin(
        &mut self,
        dst: VarId,
        name: &str,
        args: &[Operand],
        span: Span,
    ) -> Result<(), CodegenError> {
        let dname = c_name(self.f, dst);
        let drepr = self.repr(dst)?;
        let a0_cx = args
            .first()
            .map(|a| self.op_repr(*a).map(Repr::is_cx))
            .transpose()?
            .unwrap_or(false);
        let expr = match name {
            "abs" => {
                if a0_cx {
                    format!("cx_abs({})", self.scalar(args[0], true, span)?)
                } else {
                    format!("fabs({})", self.scalar(args[0], false, span)?)
                }
            }
            "sqrt" => {
                if drepr.is_cx() {
                    format!("cx_sqrt({})", self.scalar(args[0], true, span)?)
                } else {
                    format!("sqrt({})", self.scalar(args[0], false, span)?)
                }
            }
            "exp" => {
                if drepr.is_cx() {
                    format!("cx_exp({})", self.scalar(args[0], true, span)?)
                } else {
                    format!("exp({})", self.scalar(args[0], false, span)?)
                }
            }
            "log" => format!("log({})", self.scalar(args[0], false, span)?),
            "log2" => format!("log2({})", self.scalar(args[0], false, span)?),
            "log10" => format!("log10({})", self.scalar(args[0], false, span)?),
            "sin" => format!("sin({})", self.scalar(args[0], false, span)?),
            "cos" => format!("cos({})", self.scalar(args[0], false, span)?),
            "tan" => format!("tan({})", self.scalar(args[0], false, span)?),
            "asin" => format!("asin({})", self.scalar(args[0], false, span)?),
            "acos" => format!("acos({})", self.scalar(args[0], false, span)?),
            "atan" => format!("atan({})", self.scalar(args[0], false, span)?),
            "atan2" => format!(
                "atan2({}, {})",
                self.scalar(args[0], false, span)?,
                self.scalar(args[1], false, span)?
            ),
            "floor" => format!("floor({})", self.scalar(args[0], false, span)?),
            "ceil" => format!("ceil({})", self.scalar(args[0], false, span)?),
            "round" => format!("matic_round({})", self.scalar(args[0], false, span)?),
            "fix" => format!("matic_fix({})", self.scalar(args[0], false, span)?),
            "sign" => format!("matic_sign({})", self.scalar(args[0], false, span)?),
            "mod" => format!(
                "matic_mod({}, {})",
                self.scalar(args[0], false, span)?,
                self.scalar(args[1], false, span)?
            ),
            "rem" => format!(
                "matic_rem({}, {})",
                self.scalar(args[0], false, span)?,
                self.scalar(args[1], false, span)?
            ),
            "real" => {
                if a0_cx {
                    format!("({}).re", self.scalar(args[0], true, span)?)
                } else {
                    self.scalar(args[0], false, span)?
                }
            }
            "imag" => {
                if a0_cx {
                    format!("({}).im", self.scalar(args[0], true, span)?)
                } else {
                    "0.0".to_string()
                }
            }
            "conj" => {
                if drepr.is_cx() {
                    format!("cx_conj({})", self.scalar(args[0], true, span)?)
                } else {
                    self.scalar(args[0], false, span)?
                }
            }
            "angle" => {
                let e = self.scalar(args[0], true, span)?;
                format!("atan2(({e}).im, ({e}).re)")
            }
            "min" | "max" if args.len() >= 2 => {
                let f = if name == "min" { "fmin" } else { "fmax" };
                format!(
                    "{f}({}, {})",
                    self.scalar(args[0], false, span)?,
                    self.scalar(args[1], false, span)?
                )
            }
            "min" | "max" | "sum" | "prod" | "mean" | "norm" => {
                // Reduction of a scalar is the identity (norm is |x|).
                if name == "norm" {
                    format!("fabs({})", self.scalar(args[0], false, span)?)
                } else {
                    self.scalar(args[0], false, span)?
                }
            }
            "complex" => {
                format!(
                    "cx_make({}, {})",
                    self.scalar(args[0], false, span)?,
                    self.scalar(args[1], false, span)?
                )
            }
            "isreal" => {
                if a0_cx {
                    "0.0".to_string()
                } else {
                    "1.0".to_string()
                }
            }
            "isscalar" => "1.0".to_string(),
            _ => {
                return Err(CodegenError::new(
                    format!("scalar builtin `{name}` is not supported by the C backend"),
                    span,
                ))
            }
        };
        self.line(&format!("{dname} = {expr};"));
        Ok(())
    }

    fn emit_reduction_builtin(
        &mut self,
        dst: VarId,
        name: &str,
        args: &[Operand],
        span: Span,
    ) -> Result<(), CodegenError> {
        let dname = c_name(self.f, dst);
        let drepr = self.repr(dst)?;
        let av = args[0]
            .as_var()
            .ok_or_else(|| CodegenError::new("reduction of constant", span))?;
        let an = c_name(self.f, av);
        let a_cx = self.repr(av)?.is_cx();
        let i = self.fresh("i");
        let n = format!("{an}.rows * {an}.cols");
        match name {
            "sum" | "mean" => {
                if a_cx {
                    let acc = self.fresh("acc");
                    self.line(&format!(
                        "{{ matic_cx {acc} = cx_make(0.0, 0.0); int {i}; for ({i} = 0; {i} < {n}; ++{i}) {acc} = cx_add({acc}, {an}.data[{i}]);"
                    ));
                    if name == "mean" {
                        self.line(&format!(
                            "  {dname} = cx_scale({acc}, 1.0 / (double)({n})); }}"
                        ));
                    } else {
                        self.line(&format!("  {dname} = {acc}; }}"));
                    }
                } else {
                    let acc = self.fresh("acc");
                    self.line(&format!(
                        "{{ double {acc} = 0.0; int {i}; for ({i} = 0; {i} < {n}; ++{i}) {acc} += {an}.data[{i}];"
                    ));
                    let final_e = if name == "mean" {
                        format!("{acc} / (double)({n})")
                    } else {
                        acc.clone()
                    };
                    if drepr.is_cx() {
                        self.line(&format!("  {dname} = cx_make({final_e}, 0.0); }}"));
                    } else {
                        self.line(&format!("  {dname} = {final_e}; }}"));
                    }
                }
                Ok(())
            }
            "prod" => {
                if a_cx {
                    let acc = self.fresh("acc");
                    self.line(&format!(
                        "{{ matic_cx {acc} = cx_make(1.0, 0.0); int {i}; for ({i} = 0; {i} < {n}; ++{i}) {acc} = cx_mul({acc}, {an}.data[{i}]); {dname} = {acc}; }}"
                    ));
                } else {
                    let acc = self.fresh("acc");
                    self.line(&format!(
                        "{{ double {acc} = 1.0; int {i}; for ({i} = 0; {i} < {n}; ++{i}) {acc} *= {an}.data[{i}]; {dname} = {acc}; }}"
                    ));
                }
                Ok(())
            }
            "min" | "max" => {
                let cmp = if name == "min" { "<" } else { ">" };
                self.line(&format!(
                    "{{ double mi_best = {an}.data[0]; int {i}; for ({i} = 1; {i} < {n}; ++{i}) if ({an}.data[{i}] {cmp} mi_best) mi_best = {an}.data[{i}]; {dname} = mi_best; }}"
                ));
                Ok(())
            }
            "dot" => {
                let bv = args[1]
                    .as_var()
                    .ok_or_else(|| CodegenError::new("dot of constant", span))?;
                let bn = c_name(self.f, bv);
                let b_cx = self.repr(bv)?.is_cx();
                if a_cx || b_cx {
                    let acc = self.fresh("acc");
                    let ea = self.cast_elem(av, &i, true)?;
                    let eb = self.cast_elem(bv, &i, true)?;
                    self.line(&format!(
                        "{{ matic_cx {acc} = cx_make(0.0, 0.0); int {i}; for ({i} = 0; {i} < {n}; ++{i}) {acc} = cx_add({acc}, cx_mul(cx_conj({ea}), {eb})); {dname} = {acc}; }}"
                    ));
                } else {
                    let acc = self.fresh("acc");
                    self.line(&format!(
                        "{{ double {acc} = 0.0; int {i}; for ({i} = 0; {i} < {n}; ++{i}) {acc} += {an}.data[{i}] * {bn}.data[{i}]; {dname} = {acc}; }}"
                    ));
                }
                Ok(())
            }
            "norm" => {
                let acc = self.fresh("acc");
                if a_cx {
                    self.line(&format!(
                        "{{ double {acc} = 0.0; int {i}; for ({i} = 0; {i} < {n}; ++{i}) {acc} += {an}.data[{i}].re * {an}.data[{i}].re + {an}.data[{i}].im * {an}.data[{i}].im; {dname} = sqrt({acc}); }}"
                    ));
                } else {
                    self.line(&format!(
                        "{{ double {acc} = 0.0; int {i}; for ({i} = 0; {i} < {n}; ++{i}) {acc} += {an}.data[{i}] * {an}.data[{i}]; {dname} = sqrt({acc}); }}"
                    ));
                }
                Ok(())
            }
            "any" | "all" => {
                let (init, upd, test) = if name == "any" {
                    ("0.0", "1.0", "!= 0.0")
                } else {
                    ("1.0", "0.0", "== 0.0")
                };
                let probe = if a_cx {
                    format!("({an}.data[{i}].re != 0.0 || {an}.data[{i}].im != 0.0)")
                } else {
                    format!("({an}.data[{i}] != 0.0)")
                };
                let cond = if name == "any" {
                    probe
                } else {
                    format!("!{probe}")
                };
                let _ = test;
                self.line(&format!(
                    "{{ double mi_r = {init}; int {i}; for ({i} = 0; {i} < {n}; ++{i}) if ({cond}) {{ mi_r = {upd}; break; }} {dname} = mi_r; }}"
                ));
                Ok(())
            }
            _ => Err(CodegenError::new(
                format!("reduction `{name}` unsupported"),
                span,
            )),
        }
    }

    fn emit_map_builtin(
        &mut self,
        dst: VarId,
        name: &str,
        arg: Operand,
        span: Span,
    ) -> Result<(), CodegenError> {
        let dname = c_name(self.f, dst);
        let drepr = self.repr(dst)?;
        let av = arg
            .as_var()
            .ok_or_else(|| CodegenError::new("map of constant", span))?;
        let an = c_name(self.f, av);
        let a_cx = self.repr(av)?.is_cx();
        let i = self.fresh("i");
        let src_real = format!("{an}.data[{i}]");
        let src_cx = format!("{an}.data[{i}]");
        let expr = match (name, a_cx, drepr.is_cx()) {
            ("abs", true, false) => format!("cx_abs({src_cx})"),
            ("abs", false, false) => format!("fabs({src_real})"),
            ("sqrt", false, false) => format!("sqrt({src_real})"),
            ("sqrt", true, true) => format!("cx_sqrt({src_cx})"),
            ("exp", false, false) => format!("exp({src_real})"),
            ("exp", true, true) => format!("cx_exp({src_cx})"),
            ("log", false, false) => format!("log({src_real})"),
            ("sin", false, false) => format!("sin({src_real})"),
            ("cos", false, false) => format!("cos({src_real})"),
            ("floor", false, false) => format!("floor({src_real})"),
            ("ceil", false, false) => format!("ceil({src_real})"),
            ("round", false, false) => format!("matic_round({src_real})"),
            ("fix", false, false) => format!("matic_fix({src_real})"),
            ("sign", false, false) => format!("matic_sign({src_real})"),
            ("real", true, false) => format!("{src_cx}.re"),
            ("real", false, false) => src_real.clone(),
            ("imag", true, false) => format!("{src_cx}.im"),
            ("imag", false, false) => "0.0".to_string(),
            ("conj", true, true) => format!("cx_conj({src_cx})"),
            ("conj", false, false) => src_real.clone(),
            ("angle", true, false) => {
                format!("atan2({src_cx}.im, {src_cx}.re)")
            }
            ("angle", false, false) => format!("(({src_real}) < 0.0 ? 3.14159265358979311599796346854 : 0.0)"),
            ("cumsum", false, false) => {
                // Special handling below (carries state).
                let alloc = "matic_arr_alloc";
                self.line(&format!("{dname} = {alloc}({an}.rows, {an}.cols);"));
                let acc = self.fresh("acc");
                self.line(&format!(
                    "{{ double {acc} = 0.0; int {i}; for ({i} = 0; {i} < {an}.rows * {an}.cols; ++{i}) {{ {acc} += {an}.data[{i}]; {dname}.data[{i}] = {acc}; }} }}"
                ));
                return Ok(());
            }
            _ => {
                return Err(CodegenError::new(
                    format!(
                        "element-wise builtin `{name}` ({}→{}) unsupported",
                        if a_cx { "complex" } else { "real" },
                        if drepr.is_cx() { "complex" } else { "real" }
                    ),
                    span,
                ))
            }
        };
        let alloc = if drepr.is_cx() {
            "matic_carr_alloc"
        } else {
            "matic_arr_alloc"
        };
        self.line(&format!("{dname} = {alloc}({an}.rows, {an}.cols);"));
        self.line(&format!(
            "{{ int {i}; for ({i} = 0; {i} < {an}.rows * {an}.cols; ++{i}) {dname}.data[{i}] = {expr}; }}"
        ));
        Ok(())
    }

    // ---- calls ----------------------------------------------------------

    fn user_call_expr(
        &mut self,
        func: &str,
        args: &[Operand],
        dsts: &[Option<VarId>],
        span: Span,
    ) -> Result<String, CodegenError> {
        let mut parts = Vec::new();
        for a in args {
            let r = self.op_repr(*a)?;
            match r {
                Repr::RealScalar => parts.push(self.scalar(*a, false, span)?),
                Repr::CxScalar => parts.push(self.scalar(*a, true, span)?),
                Repr::RealArr | Repr::CxArr => {
                    let v = self.array_var(*a, span)?;
                    parts.push(format!("&{}", c_name(self.f, v)));
                }
            }
        }
        for d in dsts {
            match d {
                Some(v) => parts.push(format!("&{}", c_name(self.f, *v))),
                None => {
                    return Err(CodegenError::new(
                        "discarded outputs of user calls are not supported",
                        span,
                    ))
                }
            }
        }
        Ok(format!("mt_{func}({});", parts.join(", ")))
    }

    fn emit_call_multi(
        &mut self,
        dsts: &[Option<VarId>],
        func: &str,
        args: &[Operand],
        user: bool,
        span: Span,
    ) -> Result<(), CodegenError> {
        if user {
            // Discarded outputs get scratch registers.
            let call = self.user_call_expr(func, args, dsts, span)?;
            self.line(&call);
            return Ok(());
        }
        match func {
            "size" => {
                let av = args[0]
                    .as_var()
                    .ok_or_else(|| CodegenError::new("size of constant", span))?;
                let an = c_name(self.f, av);
                let scalar = self.repr(av)?.is_scalar();
                if let Some(Some(d)) = dsts.first() {
                    let n = c_name(self.f, *d);
                    if scalar {
                        self.line(&format!("{n} = 1.0;"));
                    } else {
                        self.line(&format!("{n} = (double){an}.rows;"));
                    }
                }
                if let Some(Some(d)) = dsts.get(1) {
                    let n = c_name(self.f, *d);
                    if scalar {
                        self.line(&format!("{n} = 1.0;"));
                    } else {
                        self.line(&format!("{n} = (double){an}.cols;"));
                    }
                }
                Ok(())
            }
            "min" | "max" => {
                let av = args[0]
                    .as_var()
                    .ok_or_else(|| CodegenError::new("min/max of constant", span))?;
                let an = c_name(self.f, av);
                let cmp = if func == "min" { "<" } else { ">" };
                let i = self.fresh("i");
                let best = self.fresh("best");
                let bi = self.fresh("bi");
                self.line(&format!(
                    "{{ double {best} = {an}.data[0]; int {bi} = 0; int {i}; for ({i} = 1; {i} < {an}.rows * {an}.cols; ++{i}) if ({an}.data[{i}] {cmp} {best}) {{ {best} = {an}.data[{i}]; {bi} = {i}; }}"
                ));
                if let Some(Some(d)) = dsts.first() {
                    self.line(&format!("  {} = {best};", c_name(self.f, *d)));
                }
                if let Some(Some(d)) = dsts.get(1) {
                    self.line(&format!("  {} = (double)({bi} + 1);", c_name(self.f, *d)));
                }
                self.line("}");
                Ok(())
            }
            _ => Err(CodegenError::new(
                format!("multi-output builtin `{func}` unsupported"),
                span,
            )),
        }
    }

    fn emit_effect(
        &mut self,
        name: &str,
        args: &[Operand],
        span: Span,
    ) -> Result<(), CodegenError> {
        match name {
            "rng" => Ok(()), // deterministic runtime has no RNG state
            "disp" => {
                match args.first() {
                    Some(Operand::Var(v)) if self.strings.contains_key(v) => {
                        let text = self.strings[v].clone();
                        self.line(&format!("printf(\"%s\\n\", {});", c_string(&text)));
                    }
                    Some(op) => {
                        let r = self.op_repr(*op)?;
                        if r.is_scalar() {
                            if r.is_cx() {
                                let e = self.scalar(*op, true, span)?;
                                self.line(&format!(
                                    "printf(\"%g + %gi\\n\", ({e}).re, ({e}).im);"
                                ));
                            } else {
                                let e = self.scalar(*op, false, span)?;
                                self.line(&format!("printf(\"%g\\n\", {e});"));
                            }
                        } else {
                            let v = self.array_var(*op, span)?;
                            let vn = c_name(self.f, v);
                            let i = self.fresh("i");
                            if r.is_cx() {
                                self.line(&format!(
                                    "{{ int {i}; for ({i} = 0; {i} < {vn}.rows * {vn}.cols; ++{i}) printf(\"%g+%gi \", {vn}.data[{i}].re, {vn}.data[{i}].im); printf(\"\\n\"); }}"
                                ));
                            } else {
                                self.line(&format!(
                                    "{{ int {i}; for ({i} = 0; {i} < {vn}.rows * {vn}.cols; ++{i}) printf(\"%g \", {vn}.data[{i}]); printf(\"\\n\"); }}"
                                ));
                            }
                        }
                    }
                    None => self.line("printf(\"\\n\");"),
                }
                Ok(())
            }
            "fprintf" | "error" => {
                let Some(Operand::Var(fmt_var)) = args.first() else {
                    return Err(CodegenError::new(
                        format!("{name} needs a literal format string"),
                        span,
                    ));
                };
                let Some(fmt) = self.strings.get(fmt_var).cloned() else {
                    return Err(CodegenError::new(
                        format!("{name} needs a literal format string"),
                        span,
                    ));
                };
                // MATLAB %d prints integral doubles; C needs %.0f for a
                // double argument. MATLAB also keeps \n/\t escapes in the
                // string until fprintf interprets them.
                let c_fmt = fmt
                    .replace("%d", "%.0f")
                    .replace("%i", "%.0f")
                    .replace("\\n", "\n")
                    .replace("\\t", "\t");
                let mut call_args = vec![c_string(&c_fmt)];
                for a in &args[1..] {
                    let r = self.op_repr(*a)?;
                    if !r.is_scalar() {
                        return Err(CodegenError::new(
                            "fprintf with array arguments is not supported in compiled code",
                            span,
                        ));
                    }
                    call_args.push(self.scalar(*a, false, span)?);
                }
                if name == "fprintf" {
                    self.line(&format!("printf({});", call_args.join(", ")));
                } else {
                    self.line(&format!(
                        "fprintf(stderr, {});",
                        call_args.join(", ")
                    ));
                    self.line("exit(2);");
                }
                Ok(())
            }
            other => Err(CodegenError::new(
                format!("effect builtin `{other}` unsupported"),
                span,
            )),
        }
    }

    // ---- vector operations ------------------------------------------------

    /// Pointer+stride for a [`VecRef`], possibly emitting a broadcast temp.
    fn vecref_ptr(
        &mut self,
        r: &VecRef,
        cx: bool,
        span: Span,
    ) -> Result<(String, String), CodegenError> {
        match r {
            VecRef::Slice { array, start, step } => {
                let an = c_name(self.f, *array);
                let s = self.scalar(*start, false, span)?;
                let st = self.scalar(*step, false, span)?;
                Ok((
                    format!("&{an}.data[(int)({s}) - 1]"),
                    format!("(int)({st})"),
                ))
            }
            VecRef::Splat(op) => {
                let t = self.fresh("sp");
                if cx {
                    let e = self.scalar(*op, true, span)?;
                    self.line(&format!("matic_cx {t} = {e};"));
                } else {
                    let e = self.scalar(*op, false, span)?;
                    self.line(&format!("double {t} = {e};"));
                }
                Ok((format!("&{t}"), "0".to_string()))
            }
        }
    }

    /// Whether every array touched by the op matches its complex mode
    /// (mixed real/complex lanes fall back to the scalar loop).
    fn vecop_reprs_match(&self, vop: &VectorOp) -> Result<bool, CodegenError> {
        let check = |r: &VecRef| -> Result<bool, CodegenError> {
            match r {
                VecRef::Slice { array, .. } => Ok(self.repr(*array)?.is_cx() == vop.complex),
                VecRef::Splat(op) => {
                    // Splats convert freely real→complex.
                    Ok(!self.op_repr(*op)?.is_cx() || vop.complex)
                }
            }
        };
        Ok(check(&vop.dst)? && check(&vop.a)? && vop.b.as_ref().map_or(Ok(true), check)?)
    }

    fn emit_vector_op(&mut self, vop: &VectorOp) -> Result<(), CodegenError> {
        use matic_isa::OpClass;
        let span = vop.span;
        // Select the op class for the support check and the intrinsic stem.
        let (class, stem): (OpClass, Option<&str>) = match (&vop.kind, vop.complex) {
            (VecKind::Map(BinOp::Add), false) => (OpClass::VectorAlu, Some("vadd")),
            (VecKind::Map(BinOp::Sub), false) => (OpClass::VectorAlu, Some("vsub")),
            (VecKind::Map(BinOp::ElemMul | BinOp::MatMul), false) => {
                (OpClass::VectorMul, Some("vmul"))
            }
            (VecKind::Map(BinOp::ElemDiv | BinOp::MatDiv), false) => {
                (OpClass::VectorDiv, Some("vdiv"))
            }
            (VecKind::Map(BinOp::Add), true) => (OpClass::VComplexAdd, Some("vcadd")),
            (VecKind::Map(BinOp::Sub), true) => (OpClass::VComplexAdd, Some("vcsub")),
            (VecKind::Map(BinOp::ElemMul | BinOp::MatMul), true) => {
                (OpClass::VComplexMul, Some("vcmul"))
            }
            (VecKind::Map(BinOp::ElemDiv | BinOp::MatDiv), true) => {
                (OpClass::VComplexMul, Some("vcdiv"))
            }
            (VecKind::MapUnary(UnOp::Neg), false) => (OpClass::VectorAlu, Some("vneg")),
            (VecKind::MapUnary(UnOp::Neg), true) => (OpClass::VComplexAdd, Some("vcneg")),
            (VecKind::MapBuiltin(n), false) if n == "abs" => (OpClass::VectorAlu, Some("vabs")),
            (VecKind::MapBuiltin(n), false) if n == "sqrt" => {
                (OpClass::VectorDiv, Some("vsqrt"))
            }
            (VecKind::MapBuiltin(n), true) if n == "conj" => {
                (OpClass::ComplexConj, Some("vcconj"))
            }
            (VecKind::Mac, false) => (OpClass::VectorMac, Some("vmac")),
            (VecKind::Mac, true) => (OpClass::VComplexMac, Some("vcmac")),
            (VecKind::Reduce(ReduceKind::Sum), false) => {
                (OpClass::VectorRedAdd, Some("vredadd"))
            }
            (VecKind::Reduce(ReduceKind::Prod), false) => {
                (OpClass::VectorRedAdd, Some("vredmul"))
            }
            (VecKind::Reduce(ReduceKind::Sum), true) => {
                (OpClass::VectorRedAdd, Some("vcredadd"))
            }
            (VecKind::Copy, false) => (OpClass::VectorLoad, Some("vcopy")),
            (VecKind::Copy, true) => (OpClass::VectorLoad, Some("vccopy")),
            _ => (OpClass::VectorAlu, None),
        };

        let intrinsic_ok = self.options.use_intrinsics
            && stem.is_some()
            && self.spec.supports(class)
            && self.vecop_reprs_match(vop)?;

        if intrinsic_ok {
            let stem = stem.expect("checked");
            let fname = format!("{}_{stem}", self.spec.intrinsic_prefix);
            let n = format!("(int)({})", self.scalar(vop.len, false, span)?);
            self.line("{");
            self.indent += 1;
            match &vop.kind {
                VecKind::Mac | VecKind::Reduce(_) => {
                    let VecRef::Splat(acc_op) = &vop.dst else {
                        return Err(CodegenError::new(
                            "reduction destination must be a scalar register",
                            span,
                        ));
                    };
                    let acc_var = acc_op.as_var().ok_or_else(|| {
                        CodegenError::new("reduction into constant", span)
                    })?;
                    let acc = c_name(self.f, acc_var);
                    let (pa, sa) = self.vecref_ptr(&vop.a, vop.complex, span)?;
                    if matches!(vop.kind, VecKind::Mac) {
                        let b = vop.b.as_ref().ok_or_else(|| {
                            CodegenError::new("MAC without second operand", span)
                        })?;
                        let (pb, sb) = self.vecref_ptr(b, vop.complex, span)?;
                        self.line(&format!("{fname}(&{acc}, {pa}, {sa}, {pb}, {sb}, {n});"));
                    } else {
                        self.line(&format!("{fname}(&{acc}, {pa}, {sa}, {n});"));
                    }
                }
                _ => {
                    let (pd, sd) = self.vecref_ptr(&vop.dst, vop.complex, span)?;
                    let (pa, sa) = self.vecref_ptr(&vop.a, vop.complex, span)?;
                    if let Some(b) = &vop.b {
                        let (pb, sb) = self.vecref_ptr(b, vop.complex, span)?;
                        self.line(&format!(
                            "{fname}({pd}, {sd}, {pa}, {sa}, {pb}, {sb}, {n});"
                        ));
                    } else {
                        self.line(&format!("{fname}({pd}, {sd}, {pa}, {sa}, {n});"));
                    }
                }
            }
            self.indent -= 1;
            self.line("}");
            return Ok(());
        }

        // Scalar-expansion fallback: semantically identical loop.
        self.emit_vector_fallback(vop)
    }

    /// Lane element expression inside the fallback loop.
    fn lane_elem(
        &mut self,
        r: &VecRef,
        i: &str,
        cx: bool,
        span: Span,
    ) -> Result<String, CodegenError> {
        match r {
            VecRef::Slice { array, start, step } => {
                let s = self.scalar(*start, false, span)?;
                let st = self.scalar(*step, false, span)?;
                let idx = format!("((int)({s}) - 1 + {i} * (int)({st}))");
                self.checked_elem(*array, &idx, cx, "vecop")
            }
            VecRef::Splat(op) => self.scalar(*op, cx, span),
        }
    }

    fn emit_vector_fallback(&mut self, vop: &VectorOp) -> Result<(), CodegenError> {
        let span = vop.span;
        let _cx = vop.complex;
        let n = self.fresh("n");
        let i = self.fresh("i");
        let len_e = self.scalar(vop.len, false, span)?;
        self.line("{");
        self.indent += 1;
        self.line(&format!("int {n} = (int)({len_e});"));
        self.line(&format!("int {i};"));
        match &vop.kind {
            VecKind::Mac | VecKind::Reduce(_) => {
                let VecRef::Splat(acc_op) = &vop.dst else {
                    return Err(CodegenError::new(
                        "reduction destination must be a scalar register",
                        span,
                    ));
                };
                let acc_var = acc_op
                    .as_var()
                    .ok_or_else(|| CodegenError::new("reduction into constant", span))?;
                let acc = c_name(self.f, acc_var);
                let acc_cx = self.repr(acc_var)?.is_cx();
                let ea = self.lane_elem(&vop.a, &i, acc_cx, span)?;
                let update = match &vop.kind {
                    VecKind::Mac => {
                        let b = vop.b.as_ref().ok_or_else(|| {
                            CodegenError::new("MAC without second operand", span)
                        })?;
                        let eb = self.lane_elem(b, &i, acc_cx, span)?;
                        if acc_cx {
                            format!("{acc} = cx_add({acc}, cx_mul({ea}, {eb}));")
                        } else {
                            format!("{acc} += {ea} * {eb};")
                        }
                    }
                    VecKind::Reduce(ReduceKind::Sum) => {
                        if acc_cx {
                            format!("{acc} = cx_add({acc}, {ea});")
                        } else {
                            format!("{acc} += {ea};")
                        }
                    }
                    VecKind::Reduce(ReduceKind::Prod) => {
                        if acc_cx {
                            format!("{acc} = cx_mul({acc}, {ea});")
                        } else {
                            format!("{acc} *= {ea};")
                        }
                    }
                    VecKind::Reduce(ReduceKind::Min) => {
                        format!("if ({ea} < {acc}) {acc} = {ea};")
                    }
                    VecKind::Reduce(ReduceKind::Max) => {
                        format!("if ({ea} > {acc}) {acc} = {ea};")
                    }
                    _ => unreachable!(),
                };
                self.line(&format!("for ({i} = 0; {i} < {n}; ++{i}) {update}"));
            }
            kind => {
                let VecRef::Slice {
                    array: darr,
                    start: dstart,
                    step: dstep,
                } = &vop.dst
                else {
                    return Err(CodegenError::new("map destination must be a slice", span));
                };
                let dn = c_name(self.f, *darr);
                let d_cx = self.repr(*darr)?.is_cx();
                let ds = self.scalar(*dstart, false, span)?;
                let dst_e = self.scalar(*dstep, false, span)?;
                let didx = format!("((int)({ds}) - 1 + {i} * (int)({dst_e}))");
                let value = match kind {
                    VecKind::Map(op) => {
                        let ea = self.lane_elem(&vop.a, &i, d_cx, span)?;
                        let b = vop.b.as_ref().ok_or_else(|| {
                            CodegenError::new("binary map without second operand", span)
                        })?;
                        let eb = self.lane_elem(b, &i, d_cx, span)?;
                        if d_cx {
                            match op {
                                BinOp::Add => format!("cx_add({ea}, {eb})"),
                                BinOp::Sub => format!("cx_sub({ea}, {eb})"),
                                BinOp::ElemMul | BinOp::MatMul => format!("cx_mul({ea}, {eb})"),
                                BinOp::ElemDiv | BinOp::MatDiv => format!("cx_div({ea}, {eb})"),
                                other => {
                                    return Err(CodegenError::new(
                                        format!("complex vector map `{other}`"),
                                        span,
                                    ))
                                }
                            }
                        } else {
                            match op {
                                BinOp::Add => format!("({ea} + {eb})"),
                                BinOp::Sub => format!("({ea} - {eb})"),
                                BinOp::ElemMul | BinOp::MatMul => format!("({ea} * {eb})"),
                                BinOp::ElemDiv | BinOp::MatDiv => format!("({ea} / {eb})"),
                                other => {
                                    return Err(CodegenError::new(
                                        format!("vector map `{other}`"),
                                        span,
                                    ))
                                }
                            }
                        }
                    }
                    VecKind::MapUnary(UnOp::Neg) => {
                        let ea = self.lane_elem(&vop.a, &i, d_cx, span)?;
                        if d_cx {
                            format!("cx_neg({ea})")
                        } else {
                            format!("-({ea})")
                        }
                    }
                    VecKind::MapUnary(_) => self.lane_elem(&vop.a, &i, d_cx, span)?,
                    VecKind::MapBuiltin(name) => {
                        let a_cx = match &vop.a {
                            VecRef::Slice { array, .. } => self.repr(*array)?.is_cx(),
                            VecRef::Splat(op) => self.op_repr(*op)?.is_cx(),
                        };
                        let ea = self.lane_elem(&vop.a, &i, a_cx, span)?;
                        match (name.as_str(), a_cx, d_cx) {
                            ("abs", true, false) => format!("cx_abs({ea})"),
                            ("abs", false, false) => format!("fabs({ea})"),
                            ("sqrt", false, false) => format!("sqrt({ea})"),
                            ("sqrt", true, true) => format!("cx_sqrt({ea})"),
                            ("conj", true, true) => format!("cx_conj({ea})"),
                            ("conj", false, false) => ea,
                            ("real", true, false) => format!("({ea}).re"),
                            ("imag", true, false) => format!("({ea}).im"),
                            ("floor", false, false) => format!("floor({ea})"),
                            ("ceil", false, false) => format!("ceil({ea})"),
                            ("round", false, false) => format!("matic_round({ea})"),
                            _ => {
                                return Err(CodegenError::new(
                                    format!("vector lane builtin `{name}`"),
                                    span,
                                ))
                            }
                        }
                    }
                    VecKind::Copy => self.lane_elem(&vop.a, &i, d_cx, span)?,
                    _ => unreachable!(),
                };
                self.line(&format!(
                    "for ({i} = 0; {i} < {n}; ++{i}) {dn}.data[MATIC_IDX({didx}, {dn}.rows * {dn}.cols, \"vecop\")] = {value};"
                ));
            }
        }
        self.indent -= 1;
        self.line("}");
        Ok(())
    }
}

/// Escapes a Rust string as a C string literal.
fn c_string(s: &str) -> String {
    let mut out = String::from("\"");
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\x{:02x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
