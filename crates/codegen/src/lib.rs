//! # matic-codegen
//!
//! ANSI C backends for the matic MATLAB-to-C compiler.
//!
//! The same emitter serves the two compilers compared in the DATE'16
//! paper's evaluation:
//!
//! * **baseline** — run on *unvectorized* MIR, producing the naive
//!   element-at-a-time loops a MATLAB-Coder-class tool generates;
//! * **intrinsic backend** — run on vectorized MIR, mapping vector
//!   operations onto the custom-instruction intrinsics declared by the
//!   target's parameterized [ISA description](matic_isa), with scalar
//!   fallback for anything the target lacks.
//!
//! Generated modules are self-contained: `matic_rt.h` (descriptors +
//! scratch allocator) and `matic_intrinsics.h` (portable intrinsic
//! definitions) are emitted alongside, so the output compiles with any
//! host C compiler — which is exactly how the differential test suite
//! validates the compiler against the reference interpreter.
//!
//! # Examples
//!
//! ```
//! use matic_codegen::{CBackend, CodegenOptions};
//! use matic_isa::IsaSpec;
//! use matic_sema::{analyze, Ty, Class, Shape, Dim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (program, diags) = matic_frontend::parse(
//!     "function s = dotp(a, b)\ns = sum(a .* b);\nend",
//! );
//! assert!(!diags.has_errors());
//! let v = Ty::new(Class::Double, Shape::row(Dim::Known(64)));
//! let analysis = analyze(&program, "dotp", &[v, v]);
//! let (mut mir, _) = matic_mir::lower_program(&program, &analysis);
//! matic_mir::optimize_program(&mut mir);
//! matic_vectorize::vectorize_program(&mut mir);
//! let backend = CBackend::new(IsaSpec::dsp16(), CodegenOptions::default());
//! let module = backend.generate(&mir)?;
//! assert!(module.source.contains("__asip_vmac"));
//! # Ok(())
//! # }
//! ```

pub mod emit;
pub mod harness;
pub mod runtime;

pub use emit::{CBackend, CModule, CodegenError, CodegenOptions};
pub use harness::{write_module, CValue, Harness};
pub use runtime::{intrinsics_header, RT_HEADER};
