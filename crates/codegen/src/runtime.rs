//! The C runtime the generated code targets.
//!
//! Two headers are emitted next to every generated module:
//!
//! * `matic_rt.h` — array descriptors and a bump ("scratch") allocator.
//!   DSP kernels allocate from a static pool that the caller resets
//!   between invocations, so generated code needs no `free` paths and no
//!   early-return cleanup.
//! * `matic_intrinsics.h` — the ASIP custom instructions as C functions.
//!   On the real target the vendor toolchain maps these to single
//!   instructions; on a host compiler the portable fallback definitions
//!   below make the generated code runnable anywhere (that is what lets
//!   the differential tests compile the output with gcc).

use matic_isa::IsaSpec;

/// Contents of `matic_rt.h`.
pub const RT_HEADER: &str = r#"/* matic_rt.h - runtime for matic-generated C (generated; do not edit) */
#ifndef MATIC_RT_H
#define MATIC_RT_H

#include <math.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* Complex double, kept as a plain struct so any ANSI C compiler accepts it. */
typedef struct {
    double re;
    double im;
} matic_cx;

/* Column-major real matrix descriptor. */
typedef struct {
    double *data;
    int rows;
    int cols;
} matic_arr;

/* Column-major complex matrix descriptor. */
typedef struct {
    matic_cx *data;
    int rows;
    int cols;
} matic_carr;

/* ---- scratch allocator -------------------------------------------------
 * Kernel-style memory model: allocations come from a static pool and are
 * released all at once by matic_rt_reset() between kernel invocations.
 */
#ifndef MATIC_POOL_BYTES
#define MATIC_POOL_BYTES (64u * 1024u * 1024u)
#endif

static unsigned char matic_pool[MATIC_POOL_BYTES];
static size_t matic_pool_top = 0;

static void *matic_alloc(size_t bytes) {
    void *p;
    size_t aligned = (bytes + 15u) & ~(size_t)15u;
    if (matic_pool_top + aligned > MATIC_POOL_BYTES) {
        fprintf(stderr, "matic: scratch pool exhausted\n");
        exit(2);
    }
    p = matic_pool + matic_pool_top;
    matic_pool_top += aligned;
    return p;
}

static void matic_rt_reset(void) { matic_pool_top = 0; }

static matic_arr matic_arr_alloc(int rows, int cols) {
    matic_arr a;
    a.rows = rows > 0 ? rows : 0;
    a.cols = cols > 0 ? cols : 0;
    a.data = (double *)matic_alloc((size_t)a.rows * (size_t)a.cols * sizeof(double));
    memset(a.data, 0, (size_t)a.rows * (size_t)a.cols * sizeof(double));
    return a;
}

static matic_carr matic_carr_alloc(int rows, int cols) {
    matic_carr a;
    a.rows = rows > 0 ? rows : 0;
    a.cols = cols > 0 ? cols : 0;
    a.data = (matic_cx *)matic_alloc((size_t)a.rows * (size_t)a.cols * sizeof(matic_cx));
    memset(a.data, 0, (size_t)a.rows * (size_t)a.cols * sizeof(matic_cx));
    return a;
}

static int matic_numel(const matic_arr *a) { return a->rows * a->cols; }
static int matic_cnumel(const matic_carr *a) { return a->rows * a->cols; }

static void matic_fatal(const char *msg) {
    fprintf(stderr, "matic: %s\n", msg);
    exit(2);
}

static matic_arr matic_arr_clone(const matic_arr *src) {
    matic_arr a = matic_arr_alloc(src->rows, src->cols);
    memcpy(a.data, src->data, (size_t)src->rows * (size_t)src->cols * sizeof(double));
    return a;
}

static matic_carr matic_carr_clone(const matic_carr *src) {
    matic_carr a = matic_carr_alloc(src->rows, src->cols);
    memcpy(a.data, src->data, (size_t)src->rows * (size_t)src->cols * sizeof(matic_cx));
    return a;
}

/* MATLAB truthiness of arrays: nonempty and all elements nonzero. */
static int matic_all(const matic_arr *a) {
    int i, n = a->rows * a->cols;
    if (n == 0) return 0;
    for (i = 0; i < n; ++i) if (a->data[i] == 0.0) return 0;
    return 1;
}

static int matic_call(const matic_carr *a) {
    int i, n = a->rows * a->cols;
    if (n == 0) return 0;
    for (i = 0; i < n; ++i) if (a->data[i].re == 0.0 && a->data[i].im == 0.0) return 0;
    return 1;
}

/* Bounds trap: mirrors the interpreter's and simulator's "index out of
 * bounds" error so all three backends agree on erroring programs. */
static int matic_idx_check(int idx0, int n, const char *what) {
    if (idx0 < 0 || idx0 >= n) {
        fprintf(stderr, "matic: index out of bounds in %s (%d of %d)\n", what, idx0 + 1, n);
        exit(2);
    }
    return idx0;
}

/* Broadcast element access inside element-wise loops: a 1x1 descriptor
 * broadcasts to every lane; anything else must be in range (never masked
 * by wrapping, which would silently return the wrong element). */
static int matic_bcast(int idx0, int n, const char *what) {
    if (n == 1) return 0;
    return matic_idx_check(idx0, n, what);
}

#ifdef MATIC_BOUNDS_CHECK
#define MATIC_IDX(i0, n, what) matic_idx_check((i0), (n), (what))
#else
#define MATIC_IDX(i0, n, what) (i0)
#endif

/* ---- complex helpers ---------------------------------------------------- */
static matic_cx cx_make(double re, double im) { matic_cx z; z.re = re; z.im = im; return z; }
static matic_cx cx_add(matic_cx a, matic_cx b) { return cx_make(a.re + b.re, a.im + b.im); }
static matic_cx cx_sub(matic_cx a, matic_cx b) { return cx_make(a.re - b.re, a.im - b.im); }
static matic_cx cx_mul(matic_cx a, matic_cx b) {
    return cx_make(a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re);
}
static matic_cx cx_div(matic_cx a, matic_cx b) {
    double d;
    if (b.im == 0.0) return cx_make(a.re / b.re, a.im / b.re);
    d = b.re * b.re + b.im * b.im;
    return cx_make((a.re * b.re + a.im * b.im) / d, (a.im * b.re - a.re * b.im) / d);
}
static matic_cx cx_neg(matic_cx a) { return cx_make(-a.re, -a.im); }
static matic_cx cx_conj(matic_cx a) { return cx_make(a.re, -a.im); }
static double cx_abs(matic_cx a) { return hypot(a.re, a.im); }
static matic_cx cx_sqrt(matic_cx a) {
    double r, t, s;
    if (a.im == 0.0 && a.re >= 0.0) return cx_make(sqrt(a.re), 0.0);
    r = cx_abs(a);
    t = atan2(a.im, a.re) / 2.0;
    s = sqrt(r);
    return cx_make(s * cos(t), s * sin(t));
}
static matic_cx cx_exp(matic_cx a) {
    double m = exp(a.re);
    return cx_make(m * cos(a.im), m * sin(a.im));
}
static matic_cx cx_scale(matic_cx a, double k) { return cx_make(a.re * k, a.im * k); }
static matic_cx cx_pow(matic_cx a, matic_cx b) {
    double lr, li, er, ei, m;
    if (a.im == 0.0 && b.im == 0.0) {
        if (a.re >= 0.0 || b.re == floor(b.re)) return cx_make(pow(a.re, b.re), 0.0);
    }
    if (a.re == 0.0 && a.im == 0.0) {
        return (b.re == 0.0 && b.im == 0.0) ? cx_make(1.0, 0.0) : cx_make(0.0, 0.0);
    }
    lr = log(cx_abs(a));
    li = atan2(a.im, a.re);
    er = lr * b.re - li * b.im;
    ei = lr * b.im + li * b.re;
    m = exp(er);
    return cx_make(m * cos(ei), m * sin(ei));
}
static double matic_round(double v) {
    return (v >= 0.0) ? floor(v + 0.5) : ceil(v - 0.5);
}
static double matic_mod(double a, double b) {
    if (b == 0.0) return a;
    return a - floor(a / b) * b;
}
static double matic_rem(double a, double b) {
    if (b == 0.0) return NAN;
    return a - ((a / b < 0) ? ceil(a / b) : floor(a / b)) * b;
}
static double matic_sign(double v) { return v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : 0.0); }
static double matic_fix(double v) { return v < 0.0 ? ceil(v) : floor(v); }

#endif /* MATIC_RT_H */
"#;

/// Generates `matic_intrinsics.h` for a target, using the target's
/// intrinsic-name prefix.
///
/// Each function takes `(pointer, stride)` pairs so the same intrinsic
/// serves contiguous, strided, reversed and broadcast (stride 0) access —
/// mirroring how ASIP vector units address memory through their AGUs.
pub fn intrinsics_header(spec: &IsaSpec) -> String {
    let p = &spec.intrinsic_prefix;
    format!(
        r#"/* matic_intrinsics.h - custom instructions of target `{name}` (generated) */
#ifndef MATIC_INTRINSICS_H
#define MATIC_INTRINSICS_H

#include "matic_rt.h"

/* On the real ASIP these functions are recognized by the vendor C compiler
 * and mapped to single custom instructions; the portable definitions below
 * are the host-execution fallback. */
#ifndef MATIC_TARGET_ASIP

/* ---- SIMD: real lanes ---- */
static void {p}_vadd(double *d, int ds, const double *a, int as_, const double *b, int bs, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = a[i * as_] + b[i * bs];
}}
static void {p}_vsub(double *d, int ds, const double *a, int as_, const double *b, int bs, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = a[i * as_] - b[i * bs];
}}
static void {p}_vmul(double *d, int ds, const double *a, int as_, const double *b, int bs, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = a[i * as_] * b[i * bs];
}}
static void {p}_vdiv(double *d, int ds, const double *a, int as_, const double *b, int bs, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = a[i * as_] / b[i * bs];
}}
static void {p}_vneg(double *d, int ds, const double *a, int as_, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = -a[i * as_];
}}
static void {p}_vcopy(double *d, int ds, const double *a, int as_, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = a[i * as_];
}}
static void {p}_vabs(double *d, int ds, const double *a, int as_, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = fabs(a[i * as_]);
}}
static void {p}_vsqrt(double *d, int ds, const double *a, int as_, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = sqrt(a[i * as_]);
}}
static void {p}_vmac(double *acc, const double *a, int as_, const double *b, int bs, int n) {{
    int i; double s = *acc;
    for (i = 0; i < n; ++i) s += a[i * as_] * b[i * bs];
    *acc = s;
}}
static void {p}_vredadd(double *acc, const double *a, int as_, int n) {{
    int i; double s = *acc;
    for (i = 0; i < n; ++i) s += a[i * as_];
    *acc = s;
}}
static void {p}_vredmul(double *acc, const double *a, int as_, int n) {{
    int i; double s = *acc;
    for (i = 0; i < n; ++i) s *= a[i * as_];
    *acc = s;
}}

/* ---- complex-arithmetic custom instructions ---- */
static matic_cx {p}_cadd(matic_cx a, matic_cx b) {{ return cx_add(a, b); }}
static matic_cx {p}_csub(matic_cx a, matic_cx b) {{ return cx_sub(a, b); }}
static matic_cx {p}_cmul(matic_cx a, matic_cx b) {{ return cx_mul(a, b); }}
static matic_cx {p}_cconj(matic_cx a) {{ return cx_conj(a); }}
static matic_cx {p}_cmac(matic_cx acc, matic_cx a, matic_cx b) {{ return cx_add(acc, cx_mul(a, b)); }}

/* ---- SIMD: complex lanes ---- */
static void {p}_vcadd(matic_cx *d, int ds, const matic_cx *a, int as_, const matic_cx *b, int bs, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = cx_add(a[i * as_], b[i * bs]);
}}
static void {p}_vcsub(matic_cx *d, int ds, const matic_cx *a, int as_, const matic_cx *b, int bs, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = cx_sub(a[i * as_], b[i * bs]);
}}
static void {p}_vcmul(matic_cx *d, int ds, const matic_cx *a, int as_, const matic_cx *b, int bs, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = cx_mul(a[i * as_], b[i * bs]);
}}
static void {p}_vcdiv(matic_cx *d, int ds, const matic_cx *a, int as_, const matic_cx *b, int bs, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = cx_div(a[i * as_], b[i * bs]);
}}
static void {p}_vcneg(matic_cx *d, int ds, const matic_cx *a, int as_, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = cx_neg(a[i * as_]);
}}
static void {p}_vccopy(matic_cx *d, int ds, const matic_cx *a, int as_, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = a[i * as_];
}}
static void {p}_vcconj(matic_cx *d, int ds, const matic_cx *a, int as_, int n) {{
    int i; for (i = 0; i < n; ++i) d[i * ds] = cx_conj(a[i * as_]);
}}
static void {p}_vcmac(matic_cx *acc, const matic_cx *a, int as_, const matic_cx *b, int bs, int n) {{
    int i; matic_cx s = *acc;
    for (i = 0; i < n; ++i) s = cx_add(s, cx_mul(a[i * as_], b[i * bs]));
    *acc = s;
}}
static void {p}_vcredadd(matic_cx *acc, const matic_cx *a, int as_, int n) {{
    int i; matic_cx s = *acc;
    for (i = 0; i < n; ++i) s = cx_add(s, a[i * as_]);
    *acc = s;
}}

#endif /* MATIC_TARGET_ASIP */
#endif /* MATIC_INTRINSICS_H */
"#,
        name = spec.name,
        p = p
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rt_header_is_self_contained() {
        assert!(RT_HEADER.contains("matic_arr_alloc"));
        assert!(RT_HEADER.contains("cx_mul"));
        assert!(RT_HEADER.contains("MATIC_POOL_BYTES"));
    }

    #[test]
    fn intrinsics_use_prefix() {
        let spec = IsaSpec::dsp16();
        let h = intrinsics_header(&spec);
        assert!(h.contains("__asip_vmac"));
        assert!(h.contains("__asip_cmul"));
        assert!(h.contains("__asip_vcmac"));
        let mut other = spec;
        other.intrinsic_prefix = "__dsp".to_string();
        let h2 = intrinsics_header(&other);
        assert!(h2.contains("__dsp_vmac"));
        assert!(!h2.contains("__asip_vmac"));
    }
}
