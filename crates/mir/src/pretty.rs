//! Human-readable MIR dumps for debugging and golden tests.

use crate::ir::*;
use std::fmt::Write as _;

/// Renders a whole program.
pub fn print_program(program: &MirProgram) -> String {
    let mut out = String::new();
    for f in &program.functions {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

/// Renders one function.
pub fn print_function(func: &MirFunction) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .map(|p| format!("{}: {}", func.var(*p).name, func.var_ty(*p)))
        .collect();
    let outputs: Vec<String> = func
        .outputs
        .iter()
        .map(|o| func.var(*o).name.clone())
        .collect();
    let _ = writeln!(
        out,
        "func @{}({}) -> ({})",
        func.name,
        params.join(", "),
        outputs.join(", ")
    );
    print_stmts(&mut out, func, &func.body, 1);
    out.push_str("end\n");
    out
}

fn ind(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmts(out: &mut String, f: &MirFunction, stmts: &[Stmt], level: usize) {
    for s in stmts {
        print_stmt(out, f, s, level);
    }
}

fn name(f: &MirFunction, v: VarId) -> String {
    format!("{}({})", f.var(v).name, v)
}

fn fmt_index(f: &MirFunction, idx: &Index) -> String {
    match idx {
        Index::Scalar(o) => fmt_op(f, o),
        Index::Range { start, step, stop } => format!(
            "{}:{}:{}",
            fmt_op(f, start),
            fmt_op(f, step),
            fmt_op(f, stop)
        ),
        Index::Full => ":".to_string(),
    }
}

fn fmt_op(f: &MirFunction, op: &Operand) -> String {
    match op {
        Operand::Var(v) => name(f, *v),
        Operand::Const(c) => format!("{c}"),
        Operand::ConstC(re, im) => format!("({re}+{im}i)"),
    }
}

fn fmt_vecref(f: &MirFunction, r: &VecRef) -> String {
    match r {
        VecRef::Slice { array, start, step } => format!(
            "{}[{} by {}]",
            name(f, *array),
            fmt_op(f, start),
            fmt_op(f, step)
        ),
        VecRef::Splat(o) => format!("splat({})", fmt_op(f, o)),
    }
}

fn print_stmt(out: &mut String, f: &MirFunction, s: &Stmt, level: usize) {
    ind(out, level);
    match s {
        Stmt::Def { dst, rv, .. } => {
            let _ = write!(out, "{} = ", name(f, *dst));
            match rv {
                Rvalue::Use(o) => {
                    let _ = write!(out, "{}", fmt_op(f, o));
                }
                Rvalue::Unary { op, a } => {
                    let _ = write!(out, "{op}{}", fmt_op(f, a));
                }
                Rvalue::Binary { op, a, b } => {
                    let _ = write!(out, "{} {op} {}", fmt_op(f, a), fmt_op(f, b));
                }
                Rvalue::Transpose { a, conjugate } => {
                    let _ = write!(
                        out,
                        "{}{}",
                        fmt_op(f, a),
                        if *conjugate { "'" } else { ".'" }
                    );
                }
                Rvalue::Index { array, indices } => {
                    let idx: Vec<String> = indices.iter().map(|i| fmt_index(f, i)).collect();
                    let _ = write!(out, "{}[{}]", name(f, *array), idx.join(", "));
                }
                Rvalue::Range { start, step, stop } => {
                    let _ = write!(
                        out,
                        "range({}, {}, {})",
                        fmt_op(f, start),
                        fmt_op(f, step),
                        fmt_op(f, stop)
                    );
                }
                Rvalue::Alloc { kind, rows, cols } => {
                    let k = match kind {
                        AllocKind::Zeros => "zeros",
                        AllocKind::Ones => "ones",
                        AllocKind::Eye => "eye",
                    };
                    let _ = write!(out, "{k}({}, {})", fmt_op(f, rows), fmt_op(f, cols));
                }
                Rvalue::Builtin { name: n, args } => {
                    let a: Vec<String> = args.iter().map(|x| fmt_op(f, x)).collect();
                    let _ = write!(out, "@{n}({})", a.join(", "));
                }
                Rvalue::Call { func, args } => {
                    let a: Vec<String> = args.iter().map(|x| fmt_op(f, x)).collect();
                    let _ = write!(out, "call {func}({})", a.join(", "));
                }
                Rvalue::MatrixLit { rows } => {
                    let rs: Vec<String> = rows
                        .iter()
                        .map(|r| r.iter().map(|x| fmt_op(f, x)).collect::<Vec<_>>().join(" "))
                        .collect();
                    let _ = write!(out, "[{}]", rs.join("; "));
                }
                Rvalue::StrLit(s) => {
                    let _ = write!(out, "{s:?}");
                }
            }
            let _ = writeln!(out, " : {}", f.var_ty(*dst));
        }
        Stmt::Store {
            array,
            indices,
            value,
            ..
        } => {
            let idx: Vec<String> = indices.iter().map(|i| fmt_index(f, i)).collect();
            let _ = writeln!(
                out,
                "{}[{}] <- {}",
                name(f, *array),
                idx.join(", "),
                fmt_op(f, value)
            );
        }
        Stmt::CallMulti {
            dsts, func, args, ..
        } => {
            let ds: Vec<String> = dsts
                .iter()
                .map(|d| match d {
                    Some(v) => name(f, *v),
                    None => "~".to_string(),
                })
                .collect();
            let a: Vec<String> = args.iter().map(|x| fmt_op(f, x)).collect();
            let _ = writeln!(out, "[{}] = call {func}({})", ds.join(", "), a.join(", "));
        }
        Stmt::Effect { name: n, args, .. } => {
            let a: Vec<String> = args.iter().map(|x| fmt_op(f, x)).collect();
            let _ = writeln!(out, "effect @{n}({})", a.join(", "));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "if {} {{", fmt_op(f, cond));
            print_stmts(out, f, then_body, level + 1);
            if !else_body.is_empty() {
                ind(out, level);
                out.push_str("} else {\n");
                print_stmts(out, f, else_body, level + 1);
            }
            ind(out, level);
            out.push_str("}\n");
        }
        Stmt::For {
            var,
            start,
            step,
            stop,
            body,
            ..
        } => {
            let _ = writeln!(
                out,
                "for {} = {} : {} : {} {{",
                name(f, *var),
                fmt_op(f, start),
                fmt_op(f, step),
                fmt_op(f, stop)
            );
            print_stmts(out, f, body, level + 1);
            ind(out, level);
            out.push_str("}\n");
        }
        Stmt::While {
            cond_defs,
            cond,
            body,
            ..
        } => {
            out.push_str("while {\n");
            print_stmts(out, f, cond_defs, level + 1);
            ind(out, level + 1);
            let _ = writeln!(out, "test {}", fmt_op(f, cond));
            ind(out, level);
            out.push_str("} do {\n");
            print_stmts(out, f, body, level + 1);
            ind(out, level);
            out.push_str("}\n");
        }
        Stmt::Break(_) => out.push_str("break\n"),
        Stmt::Continue(_) => out.push_str("continue\n"),
        Stmt::Return(_) => out.push_str("return\n"),
        Stmt::VectorOp(vop) => {
            let kind = match &vop.kind {
                VecKind::Map(op) => format!("vmap[{op}]"),
                VecKind::MapUnary(op) => format!("vmap[{op}]"),
                VecKind::MapBuiltin(n) => format!("vmap[{n}]"),
                VecKind::Mac => "vmac".to_string(),
                VecKind::Reduce(ReduceKind::Sum) => "vred[+]".to_string(),
                VecKind::Reduce(ReduceKind::Prod) => "vred[*]".to_string(),
                VecKind::Reduce(ReduceKind::Min) => "vred[min]".to_string(),
                VecKind::Reduce(ReduceKind::Max) => "vred[max]".to_string(),
                VecKind::Copy => "vcopy".to_string(),
            };
            let b = vop
                .b
                .as_ref()
                .map(|b| format!(", {}", fmt_vecref(f, b)))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{} {} <- {}{} len={} {}",
                kind,
                fmt_vecref(f, &vop.dst),
                fmt_vecref(f, &vop.a),
                b,
                fmt_op(f, &vop.len),
                if vop.complex { "complex" } else { "real" }
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_frontend::parse;
    use matic_sema::{analyze, Ty};

    #[test]
    fn dump_is_stable_and_informative() {
        let (p, _) =
            parse("function s = acc(x)\ns = 0;\nfor i = 1:length(x)\n s = s + x(i);\nend\nend");
        let a = analyze(
            &p,
            "acc",
            &[Ty::new(
                matic_sema::Class::Double,
                matic_sema::Shape::row(matic_sema::Dim::Known(8)),
            )],
        );
        let (mir, _) = crate::lower::lower_program(&p, &a);
        let text = print_program(&mir);
        assert!(text.contains("func @acc"));
        assert!(text.contains("for "));
        assert!(text.contains("end"));
    }
}
