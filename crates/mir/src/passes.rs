//! MIR optimization passes: constant folding, algebraic simplification,
//! copy propagation and dead-code elimination.
//!
//! All passes are semantics-preserving and conservative in the presence of
//! loops: values flowing around a back edge are only rewritten when the
//! rewrite is valid for every iteration (single-assignment temporaries).

use crate::ir::*;
use matic_frontend::ast::{BinOp, UnOp};
use std::collections::HashMap;

/// Runs the standard pass pipeline to a fixpoint (bounded).
pub fn optimize(func: &mut MirFunction) {
    for _ in 0..4 {
        let a = constant_fold(func);
        let b = copy_propagate(func);
        let c = dead_code_eliminate(func);
        if !(a || b || c) {
            break;
        }
    }
}

/// Runs [`optimize`] on every function.
pub fn optimize_program(program: &mut MirProgram) {
    for f in &mut program.functions {
        optimize(f);
    }
}

// ---- constant folding ---------------------------------------------------

/// Folds arithmetic on constant operands and simplifies algebraic
/// identities (`x*1`, `x+0`, `x^1`). Returns whether anything changed.
pub fn constant_fold(func: &mut MirFunction) -> bool {
    let mut changed = false;
    let mut body = std::mem::take(&mut func.body);
    fold_stmts(&mut body, &mut changed);
    func.body = body;
    changed
}

fn fold_stmts(stmts: &mut [Stmt], changed: &mut bool) {
    for s in stmts {
        match s {
            Stmt::Def { rv, .. } => {
                if let Some(new_rv) = fold_rvalue(rv) {
                    *rv = new_rv;
                    *changed = true;
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                fold_stmts(then_body, changed);
                fold_stmts(else_body, changed);
            }
            Stmt::For { body, .. } => fold_stmts(body, changed),
            Stmt::While {
                cond_defs, body, ..
            } => {
                fold_stmts(cond_defs, changed);
                fold_stmts(body, changed);
            }
            _ => {}
        }
    }
}

fn fold_rvalue(rv: &Rvalue) -> Option<Rvalue> {
    match rv {
        Rvalue::Binary { op, a, b } => {
            // Complex-aware constant folding.
            if let (Some((ar, ai)), Some((br, bi))) = (const_c(*a), const_c(*b)) {
                if let Some((re, im)) = fold_complex(*op, ar, ai, br, bi) {
                    return Some(Rvalue::Use(make_const(re, im)));
                }
            }
            // Algebraic identities (element-wise safe: the identity holds
            // lane-wise, and scalar broadcast of the neutral element keeps
            // the other operand's shape only when that operand is the
            // non-scalar one — using `Use` preserves it exactly).
            match (op, a.as_const(), b.as_const()) {
                (BinOp::Add, Some(0.0), _) => Some(Rvalue::Use(*b)),
                (BinOp::Add, _, Some(0.0)) => Some(Rvalue::Use(*a)),
                (BinOp::Sub, _, Some(0.0)) => Some(Rvalue::Use(*a)),
                (BinOp::ElemMul | BinOp::MatMul, Some(1.0), _) => Some(Rvalue::Use(*b)),
                (BinOp::ElemMul | BinOp::MatMul, _, Some(1.0)) => Some(Rvalue::Use(*a)),
                (BinOp::ElemDiv | BinOp::MatDiv, _, Some(1.0)) => Some(Rvalue::Use(*a)),
                (BinOp::ElemPow | BinOp::MatPow, _, Some(1.0)) => Some(Rvalue::Use(*a)),
                _ => None,
            }
        }
        Rvalue::Unary { op, a } => {
            let (re, im) = const_c(*a)?;
            match op {
                UnOp::Neg => Some(Rvalue::Use(make_const(-re, -im))),
                UnOp::Plus => Some(Rvalue::Use(*a)),
                UnOp::Not => {
                    let v = if re == 0.0 && im == 0.0 { 1.0 } else { 0.0 };
                    Some(Rvalue::Use(Operand::Const(v)))
                }
            }
        }
        _ => None,
    }
}

fn const_c(op: Operand) -> Option<(f64, f64)> {
    match op {
        Operand::Const(v) => Some((v, 0.0)),
        Operand::ConstC(re, im) => Some((re, im)),
        Operand::Var(_) => None,
    }
}

fn make_const(re: f64, im: f64) -> Operand {
    if im == 0.0 {
        Operand::Const(re)
    } else {
        Operand::ConstC(re, im)
    }
}

fn fold_complex(op: BinOp, ar: f64, ai: f64, br: f64, bi: f64) -> Option<(f64, f64)> {
    let real = ai == 0.0 && bi == 0.0;
    match op {
        BinOp::Add => Some((ar + br, ai + bi)),
        BinOp::Sub => Some((ar - br, ai - bi)),
        BinOp::ElemMul | BinOp::MatMul => Some((ar * br - ai * bi, ar * bi + ai * br)),
        BinOp::ElemDiv | BinOp::MatDiv => {
            let d = br * br + bi * bi;
            if d == 0.0 && !real {
                return None;
            }
            if bi == 0.0 {
                Some((ar / br, ai / br))
            } else {
                Some(((ar * br + ai * bi) / d, (ai * br - ar * bi) / d))
            }
        }
        BinOp::ElemPow | BinOp::MatPow if real => {
            let v = ar.powf(br);
            // Keep complex-producing powers (negative base, fractional
            // exponent) un-folded so runtime semantics decide.
            if v.is_nan() {
                None
            } else {
                Some((v, 0.0))
            }
        }
        BinOp::Eq if real => Some(((ar == br) as u8 as f64, 0.0)),
        BinOp::Ne if real => Some(((ar != br) as u8 as f64, 0.0)),
        BinOp::Lt if real => Some(((ar < br) as u8 as f64, 0.0)),
        BinOp::Le if real => Some(((ar <= br) as u8 as f64, 0.0)),
        BinOp::Gt if real => Some(((ar > br) as u8 as f64, 0.0)),
        BinOp::Ge if real => Some(((ar >= br) as u8 as f64, 0.0)),
        _ => None,
    }
}

// ---- copy propagation -----------------------------------------------------

/// Replaces uses of single-assignment temporaries defined as `t = Use(x)`
/// with `x`, when `x` is a constant or itself a single-assignment register.
/// Returns whether anything changed.
pub fn copy_propagate(func: &mut MirFunction) -> bool {
    let def_counts = count_defs(func);
    // Build substitution map from single-def copies.
    let mut subst: HashMap<VarId, Operand> = HashMap::new();
    walk_stmts(&func.body, &mut |s| {
        if let Stmt::Def {
            dst,
            rv: Rvalue::Use(src),
            ..
        } = s
        {
            if def_counts.get(dst).copied().unwrap_or(0) == 1 {
                let ok = match src {
                    Operand::Const(_) | Operand::ConstC(..) => true,
                    Operand::Var(v) => def_counts.get(v).copied().unwrap_or(0) == 1,
                };
                if ok {
                    subst.insert(*dst, *src);
                }
            }
        }
    });
    if subst.is_empty() {
        return false;
    }
    // Resolve chains.
    let resolve = |mut op: Operand| -> Operand {
        let mut hops = 0;
        while let Operand::Var(v) = op {
            match subst.get(&v) {
                Some(next) if hops < 32 => {
                    op = *next;
                    hops += 1;
                }
                _ => break,
            }
        }
        op
    };
    let mut changed = false;
    let mut body = std::mem::take(&mut func.body);
    rewrite_operands(&mut body, &mut |op| {
        let new = resolve(*op);
        if new != *op {
            *op = new;
            changed = true;
        }
    });
    func.body = body;
    changed
}

fn count_defs(func: &MirFunction) -> HashMap<VarId, u32> {
    let mut counts: HashMap<VarId, u32> = HashMap::new();
    for &p in &func.params {
        *counts.entry(p).or_default() += 1;
    }
    walk_stmts(&func.body, &mut |s| match s {
        Stmt::Def { dst, .. } => *counts.entry(*dst).or_default() += 1,
        Stmt::Store { array, .. } => *counts.entry(*array).or_default() += 1,
        Stmt::CallMulti { dsts, .. } => {
            for d in dsts.iter().flatten() {
                *counts.entry(*d).or_default() += 1;
            }
        }
        Stmt::For { var, .. } => *counts.entry(*var).or_default() += 1,
        Stmt::VectorOp(vop) => {
            if let VecRef::Slice { array, .. } = &vop.dst {
                *counts.entry(*array).or_default() += 1;
            } else if let VecRef::Splat(Operand::Var(v)) = &vop.dst {
                *counts.entry(*v).or_default() += 1;
            }
        }
        _ => {}
    });
    counts
}

/// Applies `rewrite` to every operand *read* in the body (destinations are
/// untouched).
fn rewrite_operands(stmts: &mut [Stmt], rewrite: &mut dyn FnMut(&mut Operand)) {
    let rewrite_index = |idx: &mut Index, rewrite: &mut dyn FnMut(&mut Operand)| match idx {
        Index::Scalar(o) => rewrite(o),
        Index::Range { start, step, stop } => {
            rewrite(start);
            rewrite(step);
            rewrite(stop);
        }
        Index::Full => {}
    };
    for s in stmts {
        match s {
            Stmt::Def { rv, .. } => match rv {
                Rvalue::Use(a) | Rvalue::Unary { a, .. } | Rvalue::Transpose { a, .. } => {
                    rewrite(a)
                }
                Rvalue::Binary { a, b, .. } => {
                    rewrite(a);
                    rewrite(b);
                }
                Rvalue::Index { indices, .. } => {
                    for i in indices {
                        rewrite_index(i, rewrite);
                    }
                }
                Rvalue::Range { start, step, stop } => {
                    rewrite(start);
                    rewrite(step);
                    rewrite(stop);
                }
                Rvalue::Alloc { rows, cols, .. } => {
                    rewrite(rows);
                    rewrite(cols);
                }
                Rvalue::Builtin { args, .. } | Rvalue::Call { args, .. } => {
                    for a in args {
                        rewrite(a);
                    }
                }
                Rvalue::MatrixLit { rows } => {
                    for row in rows {
                        for a in row {
                            rewrite(a);
                        }
                    }
                }
                Rvalue::StrLit(_) => {}
            },
            Stmt::Store { indices, value, .. } => {
                for i in indices {
                    rewrite_index(i, rewrite);
                }
                rewrite(value);
            }
            Stmt::CallMulti { args, .. } | Stmt::Effect { args, .. } => {
                for a in args {
                    rewrite(a);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                rewrite(cond);
                rewrite_operands(then_body, rewrite);
                rewrite_operands(else_body, rewrite);
            }
            Stmt::For {
                start,
                step,
                stop,
                body,
                ..
            } => {
                rewrite(start);
                rewrite(step);
                rewrite(stop);
                rewrite_operands(body, rewrite);
            }
            Stmt::While {
                cond_defs,
                cond,
                body,
                ..
            } => {
                rewrite_operands(cond_defs, rewrite);
                rewrite(cond);
                rewrite_operands(body, rewrite);
            }
            Stmt::VectorOp(vop) => {
                let mut fix = |r: &mut VecRef| match r {
                    VecRef::Slice { start, step, .. } => {
                        rewrite(start);
                        rewrite(step);
                    }
                    VecRef::Splat(o) => rewrite(o),
                };
                fix(&mut vop.a);
                if let Some(b) = &mut vop.b {
                    fix(b);
                }
                if let VecRef::Slice { start, step, .. } = &mut vop.dst {
                    rewrite(start);
                    rewrite(step);
                }
                rewrite(&mut vop.len);
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Return(_) => {}
        }
    }
}

// ---- dead code elimination -------------------------------------------------

/// Removes `Def`s whose destination is never read and is not an output.
/// Returns whether anything changed.
pub fn dead_code_eliminate(func: &mut MirFunction) -> bool {
    let mut used: HashMap<VarId, u32> = HashMap::new();
    for &o in &func.outputs {
        *used.entry(o).or_default() += 1;
    }
    walk_stmts(&func.body, &mut |s| {
        visit_stmt_operands(s, &mut |op| {
            if let Operand::Var(v) = op {
                *used.entry(*v).or_default() += 1;
            }
        });
        // Arrays written by Store / VectorOp must stay live.
        match s {
            Stmt::Store { array, .. } => {
                *used.entry(*array).or_default() += 1;
            }
            Stmt::VectorOp(vop) => match &vop.dst {
                VecRef::Slice { array, .. } => {
                    *used.entry(*array).or_default() += 1;
                }
                VecRef::Splat(Operand::Var(v)) => {
                    *used.entry(*v).or_default() += 1;
                }
                _ => {}
            },
            _ => {}
        }
    });
    let mut changed = false;
    let mut body = std::mem::take(&mut func.body);
    eliminate(&mut body, &used, &mut changed);
    func.body = body;
    changed
}

fn eliminate(stmts: &mut Vec<Stmt>, used: &HashMap<VarId, u32>, changed: &mut bool) {
    stmts.retain(|s| match s {
        Stmt::Def { dst, rv, .. } => {
            let live = used.get(dst).copied().unwrap_or(0) > 0;
            // Calls may have side effects (e.g. callee prints); keep them.
            let effectful = matches!(rv, Rvalue::Call { .. });
            if !live && !effectful {
                *changed = true;
                false
            } else {
                true
            }
        }
        _ => true,
    });
    for s in stmts {
        match s {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                eliminate(then_body, used, changed);
                eliminate(else_body, used, changed);
            }
            Stmt::For { body, .. } => eliminate(body, used, changed),
            Stmt::While {
                cond_defs, body, ..
            } => {
                eliminate(cond_defs, used, changed);
                eliminate(body, used, changed);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_frontend::span::Span;
    use matic_sema::Ty;

    fn def(dst: VarId, rv: Rvalue) -> Stmt {
        Stmt::Def {
            dst,
            rv,
            span: Span::dummy(),
        }
    }

    #[test]
    fn folds_constants() {
        let mut f = MirFunction::new("f");
        let t = f.add_temp(Ty::double_scalar());
        let out = f.add_var("y", Ty::double_scalar());
        f.outputs.push(out);
        f.body = vec![
            def(
                t,
                Rvalue::Binary {
                    op: BinOp::Add,
                    a: Operand::Const(2.0),
                    b: Operand::Const(3.0),
                },
            ),
            def(out, Rvalue::Use(Operand::Var(t))),
        ];
        optimize(&mut f);
        // After folding + copy prop + DCE only the output def remains.
        assert_eq!(f.body.len(), 1);
        match &f.body[0] {
            Stmt::Def {
                rv: Rvalue::Use(Operand::Const(v)),
                ..
            } => assert_eq!(*v, 5.0),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn folds_complex_multiplication() {
        let mut f = MirFunction::new("f");
        let out = f.add_var("y", Ty::double_scalar());
        f.outputs.push(out);
        f.body = vec![def(
            out,
            Rvalue::Binary {
                op: BinOp::ElemMul,
                a: Operand::ConstC(0.0, 1.0),
                b: Operand::ConstC(0.0, 1.0),
            },
        )];
        optimize(&mut f);
        match &f.body[0] {
            Stmt::Def {
                rv: Rvalue::Use(Operand::Const(v)),
                ..
            } => assert_eq!(*v, -1.0),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn algebraic_identities() {
        let mut f = MirFunction::new("f");
        let x = f.add_var("x", Ty::double_scalar());
        f.params.push(x);
        f.vars[x.0 as usize].is_param = true;
        let out = f.add_var("y", Ty::double_scalar());
        f.outputs.push(out);
        f.body = vec![def(
            out,
            Rvalue::Binary {
                op: BinOp::ElemMul,
                a: Operand::Var(x),
                b: Operand::Const(1.0),
            },
        )];
        constant_fold(&mut f);
        match &f.body[0] {
            Stmt::Def {
                rv: Rvalue::Use(Operand::Var(v)),
                ..
            } => assert_eq!(*v, x),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn dce_keeps_stores_and_outputs() {
        let mut f = MirFunction::new("f");
        let arr = f.add_var("a", Ty::unknown());
        let dead = f.add_temp(Ty::double_scalar());
        let out = f.add_var("y", Ty::double_scalar());
        f.outputs.push(out);
        f.body = vec![
            def(dead, Rvalue::Use(Operand::Const(1.0))),
            def(
                arr,
                Rvalue::Alloc {
                    kind: AllocKind::Zeros,
                    rows: Operand::Const(1.0),
                    cols: Operand::Const(4.0),
                },
            ),
            Stmt::Store {
                array: arr,
                indices: vec![Index::Scalar(Operand::Const(1.0))],
                value: Operand::Const(9.0),
                span: Span::dummy(),
            },
            def(
                out,
                Rvalue::Index {
                    array: arr,
                    indices: vec![Index::Scalar(Operand::Const(1.0))],
                },
            ),
        ];
        dead_code_eliminate(&mut f);
        assert_eq!(f.body.len(), 3, "only the dead temp is removed");
    }

    #[test]
    fn dce_keeps_user_calls() {
        let mut f = MirFunction::new("f");
        let t = f.add_temp(Ty::double_scalar());
        f.body = vec![def(
            t,
            Rvalue::Call {
                func: "noisy".to_string(),
                args: vec![],
            },
        )];
        dead_code_eliminate(&mut f);
        assert_eq!(f.body.len(), 1, "calls may have side effects");
    }

    #[test]
    fn copy_prop_resolves_chains() {
        let mut f = MirFunction::new("f");
        let a = f.add_temp(Ty::double_scalar());
        let b = f.add_temp(Ty::double_scalar());
        let out = f.add_var("y", Ty::double_scalar());
        f.outputs.push(out);
        f.body = vec![
            def(a, Rvalue::Use(Operand::Const(7.0))),
            def(b, Rvalue::Use(Operand::Var(a))),
            def(
                out,
                Rvalue::Binary {
                    op: BinOp::Add,
                    a: Operand::Var(b),
                    b: Operand::Const(1.0),
                },
            ),
        ];
        optimize(&mut f);
        assert_eq!(f.body.len(), 1);
        match &f.body[0] {
            Stmt::Def {
                rv: Rvalue::Use(Operand::Const(v)),
                ..
            } => assert_eq!(*v, 8.0),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn copy_prop_respects_multiple_defs() {
        // `x` defined twice: must not propagate its first value.
        let mut f = MirFunction::new("f");
        let x = f.add_var("x", Ty::double_scalar());
        let out = f.add_var("y", Ty::double_scalar());
        f.outputs.push(out);
        f.body = vec![
            def(x, Rvalue::Use(Operand::Const(1.0))),
            def(x, Rvalue::Use(Operand::Const(2.0))),
            def(out, Rvalue::Use(Operand::Var(x))),
        ];
        copy_propagate(&mut f);
        // out must still read x, not 1.0.
        match &f.body[2] {
            Stmt::Def {
                rv: Rvalue::Use(op),
                ..
            } => assert_eq!(*op, Operand::Var(x)),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
