//! Function inlining — the paper's "inline expansion" / "interprocedural
//! optimization" keywords.
//!
//! Inlining matters doubly for this compiler: besides removing call
//! overhead, it exposes callee loops and array operations to the
//! vectorizer, which only matches idioms *within* one function body.
//!
//! Strategy: repeatedly inline calls whose callee is a **leaf** (contains
//! no further user calls), contains no early `return`, and is small
//! enough. Iterating leaf-first linearizes call DAGs bottom-up and leaves
//! recursive functions alone (a recursive function is never a leaf at its
//! own call sites).

use crate::ir::*;
use std::collections::HashMap;

/// Default statement-count ceiling for an inlinable callee.
pub const DEFAULT_INLINE_LIMIT: usize = 64;

/// Runs inlining over the whole program; returns the number of call sites
/// expanded.
pub fn inline_program(program: &mut MirProgram, limit: usize) -> usize {
    let mut total = 0;
    // Bounded iteration: each round inlines leaves; chains of depth d
    // settle in d rounds.
    for _ in 0..8 {
        let snapshot = program.clone();
        let mut round = 0;
        for f in &mut program.functions {
            round += inline_into(f, &snapshot, limit);
        }
        if round == 0 {
            break;
        }
        total += round;
    }
    total
}

/// Whether `callee` may be expanded at a call site.
fn inlinable(callee: &MirFunction, limit: usize) -> bool {
    if callee.stmt_count() > limit {
        return false;
    }
    let mut ok = true;
    walk_stmts(&callee.body, &mut |s| match s {
        Stmt::Return(_) => ok = false,
        Stmt::Def {
            rv: Rvalue::Call { .. },
            ..
        } => ok = false,
        Stmt::CallMulti { user: true, .. } => ok = false,
        _ => {}
    });
    ok
}

/// Expands eligible calls inside `f`, looking callees up in `snapshot`.
fn inline_into(f: &mut MirFunction, snapshot: &MirProgram, limit: usize) -> usize {
    let mut count = 0;
    let mut body = std::mem::take(&mut f.body);
    inline_in_body(f, &mut body, snapshot, limit, &mut count);
    f.body = body;
    count
}

fn inline_in_body(
    f: &mut MirFunction,
    stmts: &mut Vec<Stmt>,
    snapshot: &MirProgram,
    limit: usize,
    count: &mut usize,
) {
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for mut stmt in std::mem::take(stmts) {
        match &mut stmt {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                inline_in_body(f, then_body, snapshot, limit, count);
                inline_in_body(f, else_body, snapshot, limit, count);
                out.push(stmt);
            }
            Stmt::For { body, .. } => {
                inline_in_body(f, body, snapshot, limit, count);
                out.push(stmt);
            }
            Stmt::While {
                cond_defs, body, ..
            } => {
                inline_in_body(f, cond_defs, snapshot, limit, count);
                inline_in_body(f, body, snapshot, limit, count);
                out.push(stmt);
            }
            Stmt::Def {
                dst,
                rv: Rvalue::Call { func, args },
                span,
            } => match snapshot.function(func) {
                Some(callee) if callee.name != f.name && inlinable(callee, limit) => {
                    expand(f, &mut out, callee, args, &[Some(*dst)], *span);
                    *count += 1;
                }
                _ => out.push(stmt),
            },
            Stmt::CallMulti {
                dsts,
                func,
                args,
                user: true,
                span,
            } => match snapshot.function(func) {
                Some(callee) if callee.name != f.name && inlinable(callee, limit) => {
                    expand(f, &mut out, callee, args, dsts, *span);
                    *count += 1;
                }
                _ => out.push(stmt),
            },
            _ => out.push(stmt),
        }
    }
    *stmts = out;
}

/// Splices a remapped copy of `callee`'s body into `out`.
fn expand(
    f: &mut MirFunction,
    out: &mut Vec<Stmt>,
    callee: &MirFunction,
    args: &[Operand],
    dsts: &[Option<VarId>],
    span: matic_frontend::span::Span,
) {
    // Fresh registers for every callee register.
    let mut remap: HashMap<VarId, VarId> = HashMap::new();
    for (i, info) in callee.vars.iter().enumerate() {
        let nv = f.add_var(format!("inl_{}_{}", callee.name, info.name), info.ty);
        remap.insert(VarId(i as u32), nv);
    }
    // Bind parameters.
    for (&p, &a) in callee.params.iter().zip(args) {
        out.push(Stmt::Def {
            dst: remap[&p],
            rv: Rvalue::Use(a),
            span,
        });
    }
    // Missing trailing arguments (MATLAB allows them) stay unset; sound
    // because the interpreter/simulator would trap the same read.
    let mut body = callee.body.clone();
    remap_body(&mut body, &remap);
    out.extend(body);
    // Bind outputs.
    for (d, &o) in dsts.iter().zip(&callee.outputs) {
        if let Some(d) = d {
            out.push(Stmt::Def {
                dst: *d,
                rv: Rvalue::Use(Operand::Var(remap[&o])),
                span,
            });
        }
    }
}

fn remap_op(op: &mut Operand, remap: &HashMap<VarId, VarId>) {
    if let Operand::Var(v) = op {
        *v = remap[v];
    }
}

fn remap_index(idx: &mut Index, remap: &HashMap<VarId, VarId>) {
    match idx {
        Index::Scalar(o) => remap_op(o, remap),
        Index::Range { start, step, stop } => {
            remap_op(start, remap);
            remap_op(step, remap);
            remap_op(stop, remap);
        }
        Index::Full => {}
    }
}

fn remap_vecref(r: &mut VecRef, remap: &HashMap<VarId, VarId>) {
    match r {
        VecRef::Slice { array, start, step } => {
            *array = remap[array];
            remap_op(start, remap);
            remap_op(step, remap);
        }
        VecRef::Splat(o) => remap_op(o, remap),
    }
}

fn remap_body(stmts: &mut [Stmt], remap: &HashMap<VarId, VarId>) {
    for s in stmts {
        match s {
            Stmt::Def { dst, rv, .. } => {
                *dst = remap[dst];
                match rv {
                    Rvalue::Use(a) | Rvalue::Unary { a, .. } | Rvalue::Transpose { a, .. } => {
                        remap_op(a, remap)
                    }
                    Rvalue::Binary { a, b, .. } => {
                        remap_op(a, remap);
                        remap_op(b, remap);
                    }
                    Rvalue::Index { array, indices } => {
                        *array = remap[array];
                        for i in indices {
                            remap_index(i, remap);
                        }
                    }
                    Rvalue::Range { start, step, stop } => {
                        remap_op(start, remap);
                        remap_op(step, remap);
                        remap_op(stop, remap);
                    }
                    Rvalue::Alloc { rows, cols, .. } => {
                        remap_op(rows, remap);
                        remap_op(cols, remap);
                    }
                    Rvalue::Builtin { args, .. } | Rvalue::Call { args, .. } => {
                        for a in args {
                            remap_op(a, remap);
                        }
                    }
                    Rvalue::MatrixLit { rows } => {
                        for row in rows {
                            for a in row {
                                remap_op(a, remap);
                            }
                        }
                    }
                    Rvalue::StrLit(_) => {}
                }
            }
            Stmt::Store {
                array,
                indices,
                value,
                ..
            } => {
                *array = remap[array];
                for i in indices {
                    remap_index(i, remap);
                }
                remap_op(value, remap);
            }
            Stmt::CallMulti { dsts, args, .. } => {
                for d in dsts.iter_mut().flatten() {
                    *d = remap[d];
                }
                for a in args {
                    remap_op(a, remap);
                }
            }
            Stmt::Effect { args, .. } => {
                for a in args {
                    remap_op(a, remap);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                remap_op(cond, remap);
                remap_body(then_body, remap);
                remap_body(else_body, remap);
            }
            Stmt::For {
                var,
                start,
                step,
                stop,
                body,
                ..
            } => {
                *var = remap[var];
                remap_op(start, remap);
                remap_op(step, remap);
                remap_op(stop, remap);
                remap_body(body, remap);
            }
            Stmt::While {
                cond_defs,
                cond,
                body,
                ..
            } => {
                remap_body(cond_defs, remap);
                remap_op(cond, remap);
                remap_body(body, remap);
            }
            Stmt::VectorOp(vop) => {
                remap_vecref(&mut vop.dst, remap);
                remap_vecref(&mut vop.a, remap);
                if let Some(b) = &mut vop.b {
                    remap_vecref(b, remap);
                }
                remap_op(&mut vop.len, remap);
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Return(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_frontend::parse;
    use matic_sema::{analyze, Class, Dim, Shape, Ty};

    fn lower(src: &str, entry: &str, args: &[Ty]) -> MirProgram {
        let (p, d) = parse(src);
        assert!(!d.has_errors());
        let a = analyze(&p, entry, args);
        assert!(!a.diags.has_errors());
        let (mir, d) = crate::lower::lower_program(&p, &a);
        assert!(!d.has_errors());
        mir
    }

    fn count_calls(f: &MirFunction) -> usize {
        let mut n = 0;
        walk_stmts(&f.body, &mut |s| match s {
            Stmt::Def {
                rv: Rvalue::Call { .. },
                ..
            } => n += 1,
            Stmt::CallMulti { user: true, .. } => n += 1,
            _ => {}
        });
        n
    }

    #[test]
    fn leaf_helper_is_inlined() {
        let src =
            "function y = top(x)\ny = sq(x) + sq(x + 1);\nend\nfunction z = sq(t)\nz = t * t;\nend";
        let mut mir = lower(src, "top", &[Ty::double_scalar()]);
        let n = inline_program(&mut mir, DEFAULT_INLINE_LIMIT);
        assert_eq!(n, 2);
        assert_eq!(count_calls(mir.function("top").unwrap()), 0);
    }

    #[test]
    fn call_chain_is_flattened_bottom_up() {
        let src = "function y = top(x)\ny = mid(x);\nend\n\
                   function y = mid(x)\ny = leaf(x) + 1;\nend\n\
                   function y = leaf(x)\ny = 2 * x;\nend";
        let mut mir = lower(src, "top", &[Ty::double_scalar()]);
        let n = inline_program(&mut mir, DEFAULT_INLINE_LIMIT);
        assert!(n >= 2, "expected both levels inlined, got {n}");
        assert_eq!(count_calls(mir.function("top").unwrap()), 0);
    }

    #[test]
    fn recursion_is_never_inlined() {
        let src = "function y = f(n)\nif n <= 1\n y = 1;\nelse\n y = n * f(n - 1);\nend\nend";
        let mut mir = lower(src, "f", &[Ty::double_scalar()]);
        let n = inline_program(&mut mir, DEFAULT_INLINE_LIMIT);
        assert_eq!(n, 0);
        assert_eq!(count_calls(mir.function("f").unwrap()), 1);
    }

    #[test]
    fn early_return_blocks_inlining() {
        let src = "function y = top(x)\ny = g(x);\nend\n\
                   function y = g(x)\ny = 0;\nif x > 0\n y = x;\n return\nend\ny = -x;\nend";
        let mut mir = lower(src, "top", &[Ty::double_scalar()]);
        let n = inline_program(&mut mir, DEFAULT_INLINE_LIMIT);
        assert_eq!(n, 0, "early return cannot be expressed inline");
    }

    #[test]
    fn size_limit_is_respected() {
        let src = "function y = top(x)\ny = big(x);\nend\n\
                   function y = big(x)\ny = x;\nfor i = 1:3\n y = y + i;\n y = y * 2;\n y = y - 1;\nend\nend";
        let mut mir = lower(src, "top", &[Ty::double_scalar()]);
        assert_eq!(inline_program(&mut mir, 2), 0);
        assert_eq!(inline_program(&mut mir, DEFAULT_INLINE_LIMIT), 1);
    }

    #[test]
    fn multi_output_callee_inlines() {
        let src = "function y = top(x)\n[a, b] = two(x);\ny = a + b;\nend\n\
                   function [p, q] = two(x)\np = x + 1;\nq = x - 1;\nend";
        let mut mir = lower(src, "top", &[Ty::double_scalar()]);
        assert_eq!(inline_program(&mut mir, DEFAULT_INLINE_LIMIT), 1);
        assert_eq!(count_calls(mir.function("top").unwrap()), 0);
    }

    #[test]
    fn vector_helper_exposes_idiom_after_inlining() {
        // Without inlining the loop body contains a call; with inlining
        // the MAC idiom becomes visible to the vectorizer.
        let src =
            "function s = top(a, b, n)\ns = 0;\nfor i = 1:n\n s = s + prodat(a, b, i);\nend\nend\n\
                   function p = prodat(a, b, i)\np = a(i) * b(i);\nend";
        let v = Ty::new(Class::Double, Shape::row(Dim::Known(32)));
        let mut mir = lower(src, "top", &[v, v, Ty::double_scalar()]);
        let n = inline_program(&mut mir, DEFAULT_INLINE_LIMIT);
        assert_eq!(n, 1);
        crate::passes::optimize_program(&mut mir);
        // The accumulator pattern is now a plain body the vectorizer can
        // recognize — verified end to end in the vectorize crate; here we
        // only check the call disappeared from the loop.
        assert_eq!(count_calls(mir.function("top").unwrap()), 0);
    }
}
