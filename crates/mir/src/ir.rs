//! IR data structures.
//!
//! The MIR is *structured* (loops and conditionals stay explicit rather
//! than being flattened to a CFG), in the style of MLIR's `scf`/`affine`
//! dialects. For this compiler that is the right altitude: the paper's
//! core transformation — recognizing vectorizable loop idioms and mapping
//! them onto custom instructions — is a pattern match over `for` loops,
//! which structured IR exposes directly. Expressions are three-address:
//! every intermediate value lives in a typed virtual register.

use matic_frontend::ast::{BinOp, UnOp};
use matic_frontend::span::Span;
use matic_sema::Ty;
use std::fmt;

/// Identifier of a virtual register (variable or temporary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Metadata for one virtual register.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source name, or a `$tN` name for compiler temporaries.
    pub name: String,
    /// Inferred type.
    pub ty: Ty,
    /// Whether this is a formal parameter.
    pub is_param: bool,
}

/// An operand: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Virtual register.
    Var(VarId),
    /// Real immediate.
    Const(f64),
    /// Complex immediate.
    ConstC(f64, f64),
}

impl Operand {
    /// The constant real value, if this is a real immediate.
    pub fn as_const(self) -> Option<f64> {
        match self {
            Operand::Const(v) => Some(v),
            _ => None,
        }
    }

    /// The register, if this is one.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Operand {
        Operand::Var(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Const(c) => write!(f, "{c}"),
            Operand::ConstC(re, im) => write!(f, "({re}+{im}i)"),
        }
    }
}

/// One subscript in an indexing operation (1-based, like the source).
#[derive(Debug, Clone, PartialEq)]
pub enum Index {
    /// A single scalar subscript.
    Scalar(Operand),
    /// `start : step : stop` slice.
    Range {
        /// First index.
        start: Operand,
        /// Stride.
        step: Operand,
        /// Last index (inclusive).
        stop: Operand,
    },
    /// `:` — the whole extent of this dimension.
    Full,
}

/// What `zeros`/`ones`/`eye` allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// All zeros.
    Zeros,
    /// All ones.
    Ones,
    /// Identity.
    Eye,
}

/// A reduction operator, used by reduce-style vector operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceKind {
    /// Sum of elements.
    Sum,
    /// Product of elements.
    Prod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// A right-hand-side value computation.
#[derive(Debug, Clone, PartialEq)]
pub enum Rvalue {
    /// Copy of an operand.
    Use(Operand),
    /// Unary operation (element-wise on arrays).
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// Binary operation (element-wise or linear-algebra per `op`).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Matrix transpose.
    Transpose {
        /// Operand.
        a: Operand,
        /// `'` (true) vs `.'` (false).
        conjugate: bool,
    },
    /// Read `array(indices...)`.
    Index {
        /// Array register.
        array: VarId,
        /// Subscripts (1 or 2).
        indices: Vec<Index>,
    },
    /// `start : step : stop` row vector.
    Range {
        /// First value.
        start: Operand,
        /// Stride.
        step: Operand,
        /// Last value (inclusive).
        stop: Operand,
    },
    /// Array allocation.
    Alloc {
        /// Fill pattern.
        kind: AllocKind,
        /// Row count.
        rows: Operand,
        /// Column count.
        cols: Operand,
    },
    /// Builtin call with one (primary) result.
    Builtin {
        /// Builtin name.
        name: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// User-function call with one result.
    Call {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Matrix literal from operand rows.
    MatrixLit {
        /// Rows of horizontally concatenated operands.
        rows: Vec<Vec<Operand>>,
    },
    /// String literal (format strings, messages).
    StrLit(String),
}

/// A reference to a dense strided view of an array, or a broadcast scalar —
/// what vector instructions read and write.
#[derive(Debug, Clone, PartialEq)]
pub enum VecRef {
    /// `array(start : step : start + step*(len-1))`, 1-based `start`.
    Slice {
        /// Array register.
        array: VarId,
        /// First element (1-based).
        start: Operand,
        /// Stride in elements.
        step: Operand,
    },
    /// A scalar operand broadcast across all lanes.
    Splat(Operand),
}

/// The operation a [`Stmt::VectorOp`] performs, lane-wise over `len`
/// elements.
#[derive(Debug, Clone, PartialEq)]
pub enum VecKind {
    /// `dst[i] = a[i] op b[i]` element-wise binary map.
    Map(BinOp),
    /// `dst[i] = op a[i]` element-wise unary map.
    MapUnary(UnOp),
    /// `dst[i] = f(a[i])` element-wise builtin map (abs, conj, sqrt…).
    MapBuiltin(String),
    /// `acc = acc + a[i] * b[i]` — multiply-accumulate reduction.
    Mac,
    /// `acc = reduce(acc, a[i])` — plain reduction.
    Reduce(ReduceKind),
    /// `dst[i] = a[i]` block copy.
    Copy,
}

/// A recognized data-parallel operation produced by the vectorizer.
///
/// Semantics: for `i` in `0..len`, combine lane `i` of `a` (and `b`) into
/// lane `i` of `dst` (maps/copies) or fold into the scalar register
/// `dst` (MAC/reductions).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorOp {
    /// Operation kind.
    pub kind: VecKind,
    /// Destination: slice for maps, scalar register for reductions.
    pub dst: VecRef,
    /// First input.
    pub a: VecRef,
    /// Second input (maps with two operands, MAC).
    pub b: Option<VecRef>,
    /// Trip count in elements.
    pub len: Operand,
    /// Whether lanes are complex pairs (selects complex instructions).
    pub complex: bool,
    /// Source location the op was recognized from.
    pub span: Span,
}

/// A structured MIR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst = rvalue`.
    Def {
        /// Destination register.
        dst: VarId,
        /// Computation.
        rv: Rvalue,
        /// Source location.
        span: Span,
    },
    /// `array(indices...) = value`.
    Store {
        /// Array register being written.
        array: VarId,
        /// Subscripts (1 or 2).
        indices: Vec<Index>,
        /// Stored value.
        value: Operand,
        /// Source location.
        span: Span,
    },
    /// `[d1, d2, ...] = f(args...)` — multi-output call.
    CallMulti {
        /// Destinations (`None` = discarded output).
        dsts: Vec<Option<VarId>>,
        /// Callee.
        func: String,
        /// Arguments.
        args: Vec<Operand>,
        /// Whether the callee is a user function (vs builtin).
        user: bool,
        /// Source location.
        span: Span,
    },
    /// Output-only builtin (`disp`, `fprintf`, `error`, `rng`).
    Effect {
        /// Builtin name.
        name: String,
        /// Arguments.
        args: Vec<Operand>,
        /// Source location.
        span: Span,
    },
    /// Two-way conditional.
    If {
        /// Condition register/immediate (MATLAB truthiness).
        cond: Operand,
        /// Taken when true.
        then_body: Vec<Stmt>,
        /// Taken when false.
        else_body: Vec<Stmt>,
        /// Source location of the `if` header.
        span: Span,
    },
    /// Counted loop `for var = start : step : stop`.
    For {
        /// Induction register.
        var: VarId,
        /// First value.
        start: Operand,
        /// Stride.
        step: Operand,
        /// Final value (inclusive).
        stop: Operand,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location of the `for` header.
        span: Span,
    },
    /// `while`: `cond_defs` re-evaluate the condition each iteration.
    While {
        /// Statements computing the condition.
        cond_defs: Vec<Stmt>,
        /// Condition operand (evaluated after `cond_defs`).
        cond: Operand,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location of the `while` header.
        span: Span,
    },
    /// Loop break.
    Break(Span),
    /// Loop continue.
    Continue(Span),
    /// Early function return.
    Return(Span),
    /// A vectorized operation (inserted by `matic-vectorize`).
    VectorOp(VectorOp),
}

impl Stmt {
    /// The source location this statement was lowered from.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Def { span, .. }
            | Stmt::Store { span, .. }
            | Stmt::CallMulti { span, .. }
            | Stmt::Effect { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. } => *span,
            Stmt::Break(span) | Stmt::Continue(span) | Stmt::Return(span) => *span,
            Stmt::VectorOp(vop) => vop.span,
        }
    }
}

/// A lowered function.
#[derive(Debug, Clone)]
pub struct MirFunction {
    /// Function name.
    pub name: String,
    /// Parameter registers, in order.
    pub params: Vec<VarId>,
    /// Output registers, in order.
    pub outputs: Vec<VarId>,
    /// Register table.
    pub vars: Vec<VarInfo>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Span of the source `function` header line.
    pub span: Span,
}

impl MirFunction {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>) -> MirFunction {
        MirFunction {
            name: name.into(),
            params: Vec::new(),
            outputs: Vec::new(),
            vars: Vec::new(),
            body: Vec::new(),
            span: Span::dummy(),
        }
    }

    /// Adds a register and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            ty,
            is_param: false,
        });
        id
    }

    /// Adds a fresh compiler temporary.
    pub fn add_temp(&mut self, ty: Ty) -> VarId {
        let n = self.vars.len();
        self.add_var(format!("$t{n}"), ty)
    }

    /// The type of a register.
    pub fn var_ty(&self, id: VarId) -> Ty {
        self.vars[id.0 as usize].ty
    }

    /// The metadata of a register.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }

    /// The type of an operand.
    pub fn operand_ty(&self, op: Operand) -> Ty {
        match op {
            Operand::Var(v) => self.var_ty(v),
            Operand::Const(c) => Ty::constant(c),
            Operand::ConstC(..) => Ty::new(matic_sema::Class::Complex, matic_sema::Shape::scalar()),
        }
    }

    /// Looks up a register by source name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Total number of statements, recursively.
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => 1 + count(then_body) + count(else_body),
                    Stmt::For { body, .. } => 1 + count(body),
                    Stmt::While {
                        cond_defs, body, ..
                    } => 1 + count(cond_defs) + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

/// A lowered program: functions in source order, entry first.
#[derive(Debug, Clone)]
pub struct MirProgram {
    /// All lowered functions.
    pub functions: Vec<MirFunction>,
}

impl MirProgram {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&MirFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut MirFunction> {
        self.functions.iter_mut().find(|f| f.name == name)
    }
}

/// Walks every statement in a body tree, depth-first, pre-order.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], visit: &mut dyn FnMut(&'a Stmt)) {
    for s in stmts {
        visit(s);
        match s {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk_stmts(then_body, visit);
                walk_stmts(else_body, visit);
            }
            Stmt::For { body, .. } => walk_stmts(body, visit),
            Stmt::While {
                cond_defs, body, ..
            } => {
                walk_stmts(cond_defs, visit);
                walk_stmts(body, visit);
            }
            _ => {}
        }
    }
}

/// Calls `visit` with every operand read by `stmt` (not recursing into
/// nested bodies).
pub fn visit_stmt_operands(stmt: &Stmt, visit: &mut dyn FnMut(&Operand)) {
    let visit_index = |idx: &Index, visit: &mut dyn FnMut(&Operand)| match idx {
        Index::Scalar(o) => visit(o),
        Index::Range { start, step, stop } => {
            visit(start);
            visit(step);
            visit(stop);
        }
        Index::Full => {}
    };
    let visit_vecref = |r: &VecRef, visit: &mut dyn FnMut(&Operand)| match r {
        VecRef::Slice { array, start, step } => {
            visit(&Operand::Var(*array));
            visit(start);
            visit(step);
        }
        VecRef::Splat(o) => visit(o),
    };
    match stmt {
        Stmt::Def { rv, .. } => match rv {
            Rvalue::Use(a) | Rvalue::Unary { a, .. } | Rvalue::Transpose { a, .. } => visit(a),
            Rvalue::Binary { a, b, .. } => {
                visit(a);
                visit(b);
            }
            Rvalue::Index { array, indices } => {
                visit(&Operand::Var(*array));
                for i in indices {
                    visit_index(i, visit);
                }
            }
            Rvalue::Range { start, step, stop } => {
                visit(start);
                visit(step);
                visit(stop);
            }
            Rvalue::Alloc { rows, cols, .. } => {
                visit(rows);
                visit(cols);
            }
            Rvalue::Builtin { args, .. } | Rvalue::Call { args, .. } => {
                for a in args {
                    visit(a);
                }
            }
            Rvalue::MatrixLit { rows } => {
                for row in rows {
                    for a in row {
                        visit(a);
                    }
                }
            }
            Rvalue::StrLit(_) => {}
        },
        Stmt::Store {
            array,
            indices,
            value,
            ..
        } => {
            visit(&Operand::Var(*array));
            for i in indices {
                visit_index(i, visit);
            }
            visit(value);
        }
        Stmt::CallMulti { args, .. } | Stmt::Effect { args, .. } => {
            for a in args {
                visit(a);
            }
        }
        Stmt::If { cond, .. } => visit(cond),
        Stmt::For {
            start, step, stop, ..
        } => {
            visit(start);
            visit(step);
            visit(stop);
        }
        Stmt::While { cond, .. } => visit(cond),
        Stmt::VectorOp(vop) => {
            visit_vecref(&vop.dst, visit);
            visit_vecref(&vop.a, visit);
            if let Some(b) = &vop.b {
                visit_vecref(b, visit);
            }
            visit(&vop.len);
        }
        Stmt::Break(_) | Stmt::Continue(_) | Stmt::Return(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_sema::Ty;

    #[test]
    fn var_table_roundtrip() {
        let mut f = MirFunction::new("f");
        let a = f.add_var("a", Ty::double_scalar());
        let t = f.add_temp(Ty::double_scalar());
        assert_eq!(f.var(a).name, "a");
        assert!(f.var(t).name.starts_with("$t"));
        assert_eq!(f.var_by_name("a"), Some(a));
        assert_eq!(f.var_by_name("zz"), None);
    }

    #[test]
    fn stmt_count_recurses() {
        let mut f = MirFunction::new("f");
        let c = f.add_var("c", Ty::double_scalar());
        f.body.push(Stmt::If {
            cond: Operand::Var(c),
            then_body: vec![Stmt::Return(Span::dummy()), Stmt::Break(Span::dummy())],
            else_body: vec![Stmt::Continue(Span::dummy())],
            span: Span::dummy(),
        });
        assert_eq!(f.stmt_count(), 4);
    }

    #[test]
    fn walk_visits_nested() {
        let mut f = MirFunction::new("f");
        let i = f.add_var("i", Ty::double_scalar());
        f.body.push(Stmt::For {
            var: i,
            start: Operand::Const(1.0),
            step: Operand::Const(1.0),
            stop: Operand::Const(8.0),
            body: vec![Stmt::Return(Span::dummy())],
            span: Span::dummy(),
        });
        let mut n = 0;
        walk_stmts(&f.body, &mut |_| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn operand_visiting() {
        let mut f = MirFunction::new("f");
        let a = f.add_var("a", Ty::double_scalar());
        let stmt = Stmt::Def {
            dst: a,
            rv: Rvalue::Binary {
                op: BinOp::Add,
                a: Operand::Var(a),
                b: Operand::Const(1.0),
            },
            span: Span::dummy(),
        };
        let mut ops = Vec::new();
        visit_stmt_operands(&stmt, &mut |o| ops.push(*o));
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn operand_const_helpers() {
        assert_eq!(Operand::Const(2.0).as_const(), Some(2.0));
        assert_eq!(Operand::Var(VarId(0)).as_const(), None);
        assert_eq!(Operand::Var(VarId(3)).as_var(), Some(VarId(3)));
    }
}
