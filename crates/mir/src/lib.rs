//! # matic-mir
//!
//! Typed, structured mid-level IR for the matic MATLAB-to-C compiler,
//! plus AST lowering and scalar optimization passes.
//!
//! The MIR keeps loops and conditionals structured (MLIR `scf`-style)
//! because the compiler's central transformation — recognizing
//! vectorizable loop idioms and mapping them to ASIP custom instructions —
//! is a pattern match over `for` loops. Expressions are flattened to
//! three-address form over typed virtual registers; the vectorizer later
//! replaces recognized loops with [`ir::VectorOp`] statements that the C
//! and ASIP backends map to intrinsics.
//!
//! # Examples
//!
//! ```
//! use matic_mir::{lower_program, optimize_program};
//! use matic_sema::{analyze, Ty, Class, Shape, Dim};
//!
//! let (program, diags) = matic_frontend::parse(
//!     "function y = gain(x, k)\ny = k .* x;\nend",
//! );
//! assert!(!diags.has_errors());
//! let args = [
//!     Ty::new(Class::Double, Shape::row(Dim::Known(64))),
//!     Ty::double_scalar(),
//! ];
//! let analysis = analyze(&program, "gain", &args);
//! let (mut mir, diags) = lower_program(&program, &analysis);
//! assert!(!diags.has_errors());
//! optimize_program(&mut mir);
//! assert!(mir.function("gain").is_some());
//! ```

pub mod inline;
pub mod ir;
pub mod lower;
pub mod passes;
pub mod pretty;

pub use inline::{inline_program, DEFAULT_INLINE_LIMIT};
pub use ir::{
    visit_stmt_operands, walk_stmts, AllocKind, Index, MirFunction, MirProgram, Operand,
    ReduceKind, Rvalue, Stmt, VarId, VarInfo, VecKind, VecRef, VectorOp,
};
pub use lower::{lower_function, lower_program, range_len_const};
pub use passes::{constant_fold, copy_propagate, dead_code_eliminate, optimize, optimize_program};
pub use pretty::{print_function, print_program};
