//! AST → MIR lowering.
//!
//! Lowering consumes the sema [`Analysis`] so every register gets the
//! inferred type, resolves the call-vs-index ambiguity with MATLAB's
//! actual rule (a name is a variable iff it is assigned somewhere in the
//! function), rewrites `end` into explicit `numel`/`size` queries, and
//! flattens expressions to three-address form.

use crate::ir::*;
use matic_frontend::ast::{self, BinOp, Expr, LValue, UnOp};
use matic_frontend::diag::DiagnosticBag;
use matic_frontend::span::Span;
use matic_sema::{builtin_nargout_types, builtin_result, Analysis, Class, Dim, Shape, Ty};
use std::collections::{HashMap, HashSet};

/// Lowers every analyzed function of `program` to MIR.
///
/// Functions never reached by the analysis entry point are skipped (they
/// have no inferred signatures to lower against).
pub fn lower_program(program: &ast::Program, analysis: &Analysis) -> (MirProgram, DiagnosticBag) {
    let mut diags = DiagnosticBag::new();
    let mut functions = Vec::new();
    for f in &program.functions {
        if analysis.function(&f.name).is_some() {
            let (mir, fd) = lower_function(f, program, analysis);
            diags.extend(fd);
            functions.push(mir);
        }
    }
    (MirProgram { functions }, diags)
}

/// Lowers one function.
pub fn lower_function(
    func: &ast::Function,
    program: &ast::Program,
    analysis: &Analysis,
) -> (MirFunction, DiagnosticBag) {
    let info = analysis
        .function(&func.name)
        .cloned()
        .unwrap_or_else(|| matic_sema::FunctionInfo {
            name: func.name.clone(),
            params: vec![],
            vars: HashMap::new(),
            outputs: vec![],
        });

    // MATLAB's rule: a name is a variable iff assigned anywhere in the
    // function (including as a parameter or output).
    let mut assigned: HashSet<String> = HashSet::new();
    assigned.extend(func.params.iter().cloned());
    assigned.extend(func.outputs.iter().cloned());
    collect_assigned(&func.body, &mut assigned);

    let mut lx = Lowerer {
        func: {
            let mut f = MirFunction::new(func.name.clone());
            f.span = func.span;
            f
        },
        program,
        analysis,
        info,
        assigned,
        map: HashMap::new(),
        diags: DiagnosticBag::new(),
        out: vec![Vec::new()],
    };

    for p in &func.params {
        let ty = lx.info.var_ty(p);
        let id = lx.func.add_var(p.clone(), ty);
        lx.func.vars[id.0 as usize].is_param = true;
        lx.func.params.push(id);
        lx.map.insert(p.clone(), id);
    }
    for stmt in &func.body {
        lx.lower_stmt(stmt);
    }
    for o in &func.outputs {
        let id = lx.var_id(o);
        lx.func.outputs.push(id);
    }
    let body = lx.out.pop().expect("root emission frame");
    lx.func.body = body;
    (lx.func, lx.diags)
}

fn collect_assigned(stmts: &[ast::Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            ast::Stmt::Assign { target, .. } => {
                out.insert(target.name().to_string());
            }
            ast::Stmt::MultiAssign { targets, .. } => {
                for t in targets.iter().flatten() {
                    out.insert(t.name().to_string());
                }
            }
            ast::Stmt::If {
                arms, else_body, ..
            } => {
                for (_, body) in arms {
                    collect_assigned(body, out);
                }
                if let Some(b) = else_body {
                    collect_assigned(b, out);
                }
            }
            ast::Stmt::For { var, body, .. } => {
                out.insert(var.clone());
                collect_assigned(body, out);
            }
            ast::Stmt::While { body, .. } => collect_assigned(body, out),
            ast::Stmt::Global { names, .. } => {
                out.extend(names.iter().cloned());
            }
            _ => {}
        }
    }
}

struct Lowerer<'a> {
    func: MirFunction,
    program: &'a ast::Program,
    analysis: &'a Analysis,
    info: matic_sema::FunctionInfo,
    assigned: HashSet<String>,
    map: HashMap<String, VarId>,
    diags: DiagnosticBag,
    /// Stack of emission buffers for nested bodies.
    out: Vec<Vec<Stmt>>,
}

/// Builtins that are pure side effects (no value result).
const EFFECT_BUILTINS: &[&str] = &["disp", "fprintf", "error", "rng"];

impl<'a> Lowerer<'a> {
    fn emit(&mut self, stmt: Stmt) {
        self.out.last_mut().expect("emission frame").push(stmt);
    }

    /// Runs `f` capturing emissions into a fresh buffer.
    fn capture(&mut self, f: impl FnOnce(&mut Self)) -> Vec<Stmt> {
        self.out.push(Vec::new());
        f(self);
        self.out.pop().expect("capture frame")
    }

    fn var_id(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let ty = self.info.var_ty(name);
        let id = self.func.add_var(name.to_string(), ty);
        self.map.insert(name.to_string(), id);
        id
    }

    fn temp(&mut self, ty: Ty) -> VarId {
        self.func.add_temp(ty)
    }

    fn def_temp(&mut self, rv: Rvalue, ty: Ty, span: Span) -> Operand {
        let t = self.temp(ty);
        self.emit(Stmt::Def { dst: t, rv, span });
        Operand::Var(t)
    }

    // ---- statements ----------------------------------------------------

    fn lower_stmt(&mut self, stmt: &ast::Stmt) {
        match stmt {
            ast::Stmt::Assign {
                target,
                value,
                span,
                ..
            } => self.lower_assign(target, value, *span),
            ast::Stmt::MultiAssign {
                targets,
                call,
                span,
                ..
            } => self.lower_multi_assign(targets, call, *span),
            ast::Stmt::ExprStmt { expr, span, .. } => {
                // Effect builtins become Effect statements; other bare
                // expressions evaluate into `ans`.
                if let Expr::Call { name, args, .. } = expr {
                    if !self.assigned.contains(name) && EFFECT_BUILTINS.contains(&name.as_str()) {
                        let ops: Vec<Operand> = args.iter().map(|a| self.lower_expr(a)).collect();
                        self.emit(Stmt::Effect {
                            name: name.clone(),
                            args: ops,
                            span: *span,
                        });
                        return;
                    }
                }
                let op = self.lower_expr(expr);
                let ans = self.var_id("ans");
                self.emit(Stmt::Def {
                    dst: ans,
                    rv: Rvalue::Use(op),
                    span: *span,
                });
            }
            ast::Stmt::If {
                arms,
                else_body,
                span,
            } => self.lower_if(arms, else_body.as_deref(), *span),
            ast::Stmt::For {
                var,
                iter,
                body,
                span,
            } => self.lower_for(var, iter, body, *span),
            ast::Stmt::While { cond, body, span } => {
                let mut cond_op = Operand::Const(0.0);
                let cond_defs = self.capture(|lx| {
                    cond_op = lx.lower_cond(cond);
                });
                let body_stmts = self.capture(|lx| {
                    for s in body {
                        lx.lower_stmt(s);
                    }
                });
                self.emit(Stmt::While {
                    cond_defs,
                    cond: cond_op,
                    body: body_stmts,
                    span: *span,
                });
            }
            ast::Stmt::Break(span) => self.emit(Stmt::Break(*span)),
            ast::Stmt::Continue(span) => self.emit(Stmt::Continue(*span)),
            ast::Stmt::Return(span) => self.emit(Stmt::Return(*span)),
            ast::Stmt::Global { span, .. } => {
                self.diags.warning(
                    "`global` is not supported in compiled functions; treated as empty locals",
                    *span,
                );
            }
        }
    }

    fn lower_assign(&mut self, target: &LValue, value: &Expr, span: Span) {
        match target {
            LValue::Name { name, .. } => {
                let dst = self.var_id(name);
                let rv = self.lower_expr_rvalue(value);
                self.emit(Stmt::Def { dst, rv, span });
            }
            LValue::Index { name, indices, .. } => {
                let array = self.var_id(name);
                let idx = self.lower_indices(array, indices);
                let v = self.lower_expr(value);
                self.emit(Stmt::Store {
                    array,
                    indices: idx,
                    value: v,
                    span,
                });
            }
        }
    }

    fn lower_multi_assign(&mut self, targets: &[Option<LValue>], call: &Expr, span: Span) {
        let Expr::Call { name, args, .. } = call else {
            self.diags
                .error("multi-output assignment requires a function call", span);
            return;
        };
        let ops: Vec<Operand> = args.iter().map(|a| self.lower_expr(a)).collect();
        let arg_tys: Vec<Ty> = ops.iter().map(|o| self.func.operand_ty(*o)).collect();
        let user = self.program.function(name).is_some();
        let out_tys: Vec<Ty> = if user {
            self.analysis
                .function(name)
                .map(|fi| fi.outputs.clone())
                .unwrap_or_default()
        } else {
            builtin_nargout_types(name, &arg_tys, targets.len()).unwrap_or_default()
        };
        // Direct name targets get defined in place; indexed targets go
        // through a temporary + store.
        let mut dsts: Vec<Option<VarId>> = Vec::new();
        let mut stores: Vec<(VarId, Vec<Index>, VarId)> = Vec::new();
        for (k, t) in targets.iter().enumerate() {
            let out_ty = out_tys.get(k).copied().unwrap_or_else(Ty::unknown);
            match t {
                None => dsts.push(None),
                Some(LValue::Name { name, .. }) => {
                    dsts.push(Some(self.var_id(name)));
                }
                Some(LValue::Index { name, indices, .. }) => {
                    let tmp = self.temp(out_ty);
                    let array = self.var_id(name);
                    let idx = self.lower_indices(array, indices);
                    stores.push((array, idx, tmp));
                    dsts.push(Some(tmp));
                }
            }
        }
        self.emit(Stmt::CallMulti {
            dsts,
            func: name.clone(),
            args: ops,
            user,
            span,
        });
        for (array, indices, tmp) in stores {
            self.emit(Stmt::Store {
                array,
                indices,
                value: Operand::Var(tmp),
                span,
            });
        }
    }

    fn lower_if(
        &mut self,
        arms: &[(Expr, Vec<ast::Stmt>)],
        else_body: Option<&[ast::Stmt]>,
        span: Span,
    ) {
        let Some(((cond, body), rest)) = arms.split_first() else {
            if let Some(b) = else_body {
                for s in b {
                    self.lower_stmt(s);
                }
            }
            return;
        };
        let c = self.lower_cond(cond);
        let then_body = self.capture(|lx| {
            for s in body {
                lx.lower_stmt(s);
            }
        });
        let else_stmts = self.capture(|lx| {
            lx.lower_if(rest, else_body, span);
        });
        self.emit(Stmt::If {
            cond: c,
            then_body,
            else_body: else_stmts,
            span,
        });
    }

    fn lower_for(&mut self, var: &str, iter: &Expr, body: &[ast::Stmt], span: Span) {
        let var_id = self.var_id(var);
        if let Expr::Range {
            start, step, stop, ..
        } = iter
        {
            let s = self.lower_expr(start);
            let st = match step {
                Some(e) => self.lower_expr(e),
                None => Operand::Const(1.0),
            };
            let e = self.lower_expr(stop);
            let body_stmts = self.capture(|lx| {
                for s in body {
                    lx.lower_stmt(s);
                }
            });
            self.emit(Stmt::For {
                var: var_id,
                start: s,
                step: st,
                stop: e,
                body: body_stmts,
                span,
            });
            return;
        }
        // General iteration: seq = iter; for k = 1:numel(seq) { var = seq(k); ... }
        let seq_op = self.lower_expr(iter);
        let Some(seq_var) = seq_op.as_var() else {
            // Iterating a constant: single-trip loop.
            let body_stmts = self.capture(|lx| {
                lx.emit(Stmt::Def {
                    dst: var_id,
                    rv: Rvalue::Use(seq_op),
                    span,
                });
                for s in body {
                    lx.lower_stmt(s);
                }
            });
            let trip = self.func.add_temp(Ty::double_scalar());
            self.emit(Stmt::For {
                var: trip,
                start: Operand::Const(1.0),
                step: Operand::Const(1.0),
                stop: Operand::Const(1.0),
                body: body_stmts,
                span,
            });
            return;
        };
        let n = self.def_temp(
            Rvalue::Builtin {
                name: "numel".to_string(),
                args: vec![Operand::Var(seq_var)],
            },
            Ty::double_scalar(),
            span,
        );
        let k = self.temp(Ty::double_scalar());
        let elem_ty = Ty::new(self.func.var_ty(seq_var).class, Shape::scalar());
        let body_stmts = self.capture(|lx| {
            lx.emit(Stmt::Def {
                dst: var_id,
                rv: Rvalue::Index {
                    array: seq_var,
                    indices: vec![Index::Scalar(Operand::Var(k))],
                },
                span,
            });
            let _ = elem_ty;
            for s in body {
                lx.lower_stmt(s);
            }
        });
        self.emit(Stmt::For {
            var: k,
            start: Operand::Const(1.0),
            step: Operand::Const(1.0),
            stop: n,
            body: body_stmts,
            span,
        });
    }

    /// Lowers a condition expression to a scalar-truthiness operand.
    fn lower_cond(&mut self, expr: &Expr) -> Operand {
        let op = self.lower_expr(expr);
        let ty = self.func.operand_ty(op);
        if ty.shape.is_scalar() {
            op
        } else {
            // MATLAB truthiness of an array: all elements nonzero.
            self.def_temp(
                Rvalue::Builtin {
                    name: "all".to_string(),
                    args: vec![op],
                },
                Ty::new(Class::Logical, Shape::scalar()),
                expr.span(),
            )
        }
    }

    // ---- expressions ---------------------------------------------------

    /// Lowers an expression directly to an [`Rvalue`] (used when the value
    /// lands in a named register, avoiding a copy through a temp).
    fn lower_expr_rvalue(&mut self, expr: &Expr) -> Rvalue {
        match expr {
            Expr::Binary { op, lhs, rhs, .. } if !matches!(op, BinOp::AndAnd | BinOp::OrOr) => {
                let a = self.lower_expr(lhs);
                let b = self.lower_expr(rhs);
                Rvalue::Binary { op: *op, a, b }
            }
            // Indexed reads land directly in the destination register —
            // `u = y(a:b)` must not clone through a temporary.
            Expr::Call { name, args, .. } if self.assigned.contains(name) => {
                let array = self.var_id(name);
                let indices = self.lower_indices(array, args);
                Rvalue::Index { array, indices }
            }
            Expr::Unary { op, operand, .. } => {
                let a = self.lower_expr(operand);
                Rvalue::Unary { op: *op, a }
            }
            Expr::Transpose {
                operand, conjugate, ..
            } => {
                let a = self.lower_expr(operand);
                Rvalue::Transpose {
                    a,
                    conjugate: *conjugate,
                }
            }
            Expr::Range {
                start, step, stop, ..
            } => {
                let s = self.lower_expr(start);
                let st = match step {
                    Some(e) => self.lower_expr(e),
                    None => Operand::Const(1.0),
                };
                let e = self.lower_expr(stop);
                Rvalue::Range {
                    start: s,
                    step: st,
                    stop: e,
                }
            }
            _ => {
                let op = self.lower_expr(expr);
                Rvalue::Use(op)
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr) -> Operand {
        let span = expr.span();
        match expr {
            Expr::Number { value, .. } => Operand::Const(*value),
            Expr::Imaginary { value, .. } => Operand::ConstC(0.0, *value),
            Expr::Str { value, .. } => self.def_temp(
                Rvalue::StrLit(value.clone()),
                Ty::new(Class::Char, Shape::row(Dim::Known(value.chars().count()))),
                span,
            ),
            Expr::Ident { name, .. } => {
                if self.assigned.contains(name) {
                    return Operand::Var(self.var_id(name));
                }
                // Builtin constant or zero-arg function.
                self.lower_call_like(name, &[], span)
            }
            Expr::Call { name, args, .. } => {
                if self.assigned.contains(name) {
                    let array = self.var_id(name);
                    let indices = self.lower_indices(array, args);
                    let ty = self.index_ty(array, &indices);
                    return self.def_temp(Rvalue::Index { array, indices }, ty, span);
                }
                let arg_ops: Vec<Operand> = args.iter().map(|a| self.lower_expr(a)).collect();
                self.lower_call_like(name, &arg_ops, span)
            }
            Expr::Binary { op, lhs, rhs, .. } => match op {
                BinOp::AndAnd | BinOp::OrOr => self.lower_short_circuit(*op, lhs, rhs, span),
                _ => {
                    let a = self.lower_expr(lhs);
                    let b = self.lower_expr(rhs);
                    let (ty, _) = matic_sema::binop_result(
                        *op,
                        self.func.operand_ty(a),
                        self.func.operand_ty(b),
                    );
                    self.def_temp(Rvalue::Binary { op: *op, a, b }, ty, span)
                }
            },
            Expr::Unary { op, operand, .. } => {
                let a = self.lower_expr(operand);
                let ty = matic_sema::unop_result(*op, self.func.operand_ty(a));
                self.def_temp(Rvalue::Unary { op: *op, a }, ty, span)
            }
            Expr::Transpose {
                operand, conjugate, ..
            } => {
                let a = self.lower_expr(operand);
                let at = self.func.operand_ty(a);
                let ty = Ty::new(at.class, at.shape.transpose());
                self.def_temp(
                    Rvalue::Transpose {
                        a,
                        conjugate: *conjugate,
                    },
                    ty,
                    span,
                )
            }
            Expr::Range {
                start, step, stop, ..
            } => {
                let s = self.lower_expr(start);
                let st = match step {
                    Some(e) => self.lower_expr(e),
                    None => Operand::Const(1.0),
                };
                let e = self.lower_expr(stop);
                let len = range_len_const(s, st, e);
                let ty = Ty::new(
                    Class::Double,
                    Shape::row(len.map_or(Dim::Unknown, Dim::Known)),
                );
                self.def_temp(
                    Rvalue::Range {
                        start: s,
                        step: st,
                        stop: e,
                    },
                    ty,
                    span,
                )
            }
            Expr::ColonAll { span } => {
                self.diags.error("`:` outside an index expression", *span);
                Operand::Const(0.0)
            }
            Expr::EndKeyword { span } => {
                self.diags.error("`end` outside an index expression", *span);
                Operand::Const(0.0)
            }
            Expr::Matrix { rows, .. } => self.lower_matrix(rows, span),
            Expr::AnonFn { span, .. } | Expr::FnHandle { span, .. } => {
                self.diags.error(
                    "function handles are not supported in compiled functions",
                    *span,
                );
                Operand::Const(0.0)
            }
        }
    }

    fn lower_call_like(&mut self, name: &str, args: &[Operand], span: Span) -> Operand {
        let arg_tys: Vec<Ty> = args.iter().map(|o| self.func.operand_ty(*o)).collect();
        if self.program.function(name).is_some() {
            let ty = self
                .analysis
                .function(name)
                .and_then(|fi| fi.outputs.first().copied())
                .unwrap_or_else(Ty::unknown);
            return self.def_temp(
                Rvalue::Call {
                    func: name.to_string(),
                    args: args.to_vec(),
                },
                ty,
                span,
            );
        }
        // Allocation builtins become explicit Allocs.
        if matches!(name, "zeros" | "ones" | "eye") {
            let kind = match name {
                "zeros" => AllocKind::Zeros,
                "ones" => AllocKind::Ones,
                _ => AllocKind::Eye,
            };
            let (rows, cols) = match args.len() {
                0 => (Operand::Const(1.0), Operand::Const(1.0)),
                1 => (args[0], args[0]),
                _ => (args[0], args[1]),
            };
            let ty = builtin_result(name, &arg_tys).unwrap_or_else(Ty::unknown);
            return self.def_temp(Rvalue::Alloc { kind, rows, cols }, ty, span);
        }
        match builtin_result(name, &arg_tys) {
            Some(ty) => self.def_temp(
                Rvalue::Builtin {
                    name: name.to_string(),
                    args: args.to_vec(),
                },
                ty,
                span,
            ),
            None => {
                self.diags
                    .error(format!("call to unknown function `{name}`"), span);
                Operand::Const(0.0)
            }
        }
    }

    fn lower_short_circuit(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, span: Span) -> Operand {
        let result = self.temp(Ty::new(Class::Logical, Shape::scalar()));
        let a = self.lower_cond(lhs);
        let then_body;
        let else_body;
        match op {
            BinOp::AndAnd => {
                then_body = self.capture(|lx| {
                    let b = lx.lower_cond(rhs);
                    lx.emit(Stmt::Def {
                        dst: result,
                        rv: Rvalue::Binary {
                            op: BinOp::Ne,
                            a: b,
                            b: Operand::Const(0.0),
                        },
                        span,
                    });
                });
                else_body = vec![Stmt::Def {
                    dst: result,
                    rv: Rvalue::Use(Operand::Const(0.0)),
                    span,
                }];
            }
            _ => {
                then_body = vec![Stmt::Def {
                    dst: result,
                    rv: Rvalue::Use(Operand::Const(1.0)),
                    span,
                }];
                else_body = self.capture(|lx| {
                    let b = lx.lower_cond(rhs);
                    lx.emit(Stmt::Def {
                        dst: result,
                        rv: Rvalue::Binary {
                            op: BinOp::Ne,
                            a: b,
                            b: Operand::Const(0.0),
                        },
                        span,
                    });
                });
            }
        }
        self.emit(Stmt::If {
            cond: a,
            then_body,
            else_body,
            span,
        });
        Operand::Var(result)
    }

    fn lower_matrix(&mut self, rows: &[Vec<Expr>], span: Span) -> Operand {
        let mut op_rows: Vec<Vec<Operand>> = Vec::new();
        let mut class = Class::Double;
        let mut all_scalar = true;
        for row in rows {
            let mut ops = Vec::new();
            for e in row {
                let o = self.lower_expr(e);
                let t = self.func.operand_ty(o);
                class = class.join(match t.class {
                    Class::Logical | Class::Char => Class::Double,
                    c => c,
                });
                if !t.shape.is_scalar() {
                    all_scalar = false;
                }
                ops.push(o);
            }
            op_rows.push(ops);
        }
        let shape = if rows.is_empty() {
            Shape::known(0, 0)
        } else if all_scalar {
            Shape::known(rows.len(), rows[0].len())
        } else {
            Shape::unknown()
        };
        self.def_temp(
            Rvalue::MatrixLit { rows: op_rows },
            Ty::new(class, shape),
            span,
        )
    }

    /// Lowers the index list of `array(...)`, rewriting `end`.
    fn lower_indices(&mut self, array: VarId, args: &[Expr]) -> Vec<Index> {
        let n = args.len();
        args.iter()
            .enumerate()
            .map(|(k, a)| self.lower_index(array, a, k, n))
            .collect()
    }

    fn lower_index(&mut self, array: VarId, expr: &Expr, position: usize, total: usize) -> Index {
        match expr {
            Expr::ColonAll { .. } => Index::Full,
            Expr::Range {
                start, step, stop, ..
            } => {
                let s = self.lower_index_scalar(array, start, position, total);
                let st = match step {
                    Some(e) => self.lower_index_scalar(array, e, position, total),
                    None => Operand::Const(1.0),
                };
                let e = self.lower_index_scalar(array, stop, position, total);
                Index::Range {
                    start: s,
                    step: st,
                    stop: e,
                }
            }
            _ => Index::Scalar(self.lower_index_scalar(array, expr, position, total)),
        }
    }

    /// Lowers a scalar index expression, substituting `end`.
    fn lower_index_scalar(
        &mut self,
        array: VarId,
        expr: &Expr,
        position: usize,
        total: usize,
    ) -> Operand {
        match expr {
            Expr::EndKeyword { span } => {
                // `end` in 1-D indexing is numel; in 2-D it is size(A, dim).
                // When the extent is statically known, fold it.
                let ty = self.func.var_ty(array);
                if total == 1 {
                    if let Some(n) = ty.shape.numel() {
                        return Operand::Const(n as f64);
                    }
                    self.def_temp(
                        Rvalue::Builtin {
                            name: "numel".to_string(),
                            args: vec![Operand::Var(array)],
                        },
                        Ty::double_scalar(),
                        *span,
                    )
                } else {
                    let dim = if position == 0 {
                        ty.shape.rows
                    } else {
                        ty.shape.cols
                    };
                    if let Some(n) = dim.known() {
                        return Operand::Const(n as f64);
                    }
                    self.def_temp(
                        Rvalue::Builtin {
                            name: "size".to_string(),
                            args: vec![Operand::Var(array), Operand::Const((position + 1) as f64)],
                        },
                        Ty::double_scalar(),
                        *span,
                    )
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let a = self.lower_index_scalar(array, lhs, position, total);
                let b = self.lower_index_scalar(array, rhs, position, total);
                if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                    if let Some(v) = fold_real(*op, x, y) {
                        return Operand::Const(v);
                    }
                }
                let (ty, _) =
                    matic_sema::binop_result(*op, self.func.operand_ty(a), self.func.operand_ty(b));
                self.def_temp(Rvalue::Binary { op: *op, a, b }, ty, *span)
            }
            Expr::Unary {
                op: UnOp::Neg,
                operand,
                span,
            } => {
                let a = self.lower_index_scalar(array, operand, position, total);
                if let Some(x) = a.as_const() {
                    return Operand::Const(-x);
                }
                let ty = matic_sema::unop_result(UnOp::Neg, self.func.operand_ty(a));
                self.def_temp(Rvalue::Unary { op: UnOp::Neg, a }, ty, *span)
            }
            _ => self.lower_expr(expr),
        }
    }

    /// Result type of indexing `array` with `indices`.
    fn index_ty(&self, array: VarId, indices: &[Index]) -> Ty {
        let base = self.func.var_ty(array);
        let class = base.class;
        match indices {
            [Index::Scalar(op)] => {
                // Gather with a vector operand keeps the operand's shape.
                let it = self.func.operand_ty(*op);
                if it.shape.is_scalar() {
                    Ty::new(class, Shape::scalar())
                } else {
                    Ty::new(class, it.shape)
                }
            }
            [Index::Full] => Ty::new(class, Shape::col(Dim::Unknown)),
            [Index::Range { start, step, stop }] => {
                let len = range_len_const(*start, *step, *stop);
                Ty::new(class, Shape::row(len.map_or(Dim::Unknown, Dim::Known)))
            }
            [r, c] => {
                let rows = match r {
                    Index::Scalar(_) => Dim::Known(1),
                    Index::Full => base.shape.rows,
                    Index::Range { start, step, stop } => {
                        range_len_const(*start, *step, *stop).map_or(Dim::Unknown, Dim::Known)
                    }
                };
                let cols = match c {
                    Index::Scalar(_) => Dim::Known(1),
                    Index::Full => base.shape.cols,
                    Index::Range { start, step, stop } => {
                        range_len_const(*start, *step, *stop).map_or(Dim::Unknown, Dim::Known)
                    }
                };
                Ty::new(class, Shape { rows, cols })
            }
            _ => Ty::new(class, Shape::unknown()),
        }
    }
}

fn fold_real(op: BinOp, a: f64, b: f64) -> Option<f64> {
    match op {
        BinOp::Add => Some(a + b),
        BinOp::Sub => Some(a - b),
        BinOp::MatMul | BinOp::ElemMul => Some(a * b),
        BinOp::MatDiv | BinOp::ElemDiv => Some(a / b),
        BinOp::MatPow | BinOp::ElemPow => Some(a.powf(b)),
        _ => None,
    }
}

/// Statically known length of `start:step:stop` when all three are
/// constants.
pub fn range_len_const(start: Operand, step: Operand, stop: Operand) -> Option<usize> {
    let (s, st, e) = (start.as_const()?, step.as_const()?, stop.as_const()?);
    if st == 0.0 || (st > 0.0 && s > e) || (st < 0.0 && s < e) {
        return Some(0);
    }
    Some(((e - s) / st + 1e-10).floor() as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_frontend::parse;
    use matic_sema::analyze;

    fn lower_src(src: &str, entry: &str, args: &[Ty]) -> MirProgram {
        let (p, diags) = parse(src);
        assert!(!diags.has_errors(), "parse: {:?}", diags.into_vec());
        let analysis = analyze(&p, entry, args);
        assert!(
            !analysis.diags.has_errors(),
            "sema: {:?}",
            analysis.diags.clone().into_vec()
        );
        let (mir, diags) = lower_program(&p, &analysis);
        assert!(!diags.has_errors(), "lower: {:?}", diags.into_vec());
        mir
    }

    fn vec_arg(n: usize) -> Ty {
        Ty::new(Class::Double, Shape::row(Dim::Known(n)))
    }

    #[test]
    fn lowers_simple_function() {
        let mir = lower_src(
            "function y = f(x)\ny = 2 * x + 1;\nend",
            "f",
            &[Ty::double_scalar()],
        );
        let f = mir.function("f").unwrap();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.outputs.len(), 1);
        assert!(f.stmt_count() >= 2);
    }

    #[test]
    fn for_loop_structure_preserved() {
        let mir = lower_src(
            "function s = f(x)\ns = 0;\nfor i = 1:length(x)\n s = s + x(i);\nend\nend",
            "f",
            &[vec_arg(16)],
        );
        let f = mir.function("f").unwrap();
        let has_for = f.body.iter().any(|s| matches!(s, Stmt::For { .. }));
        assert!(has_for, "for loop should stay structured: {:#?}", f.body);
    }

    #[test]
    fn end_becomes_constant_when_shape_known() {
        let mir = lower_src("function y = f(x)\ny = x(end);\nend", "f", &[vec_arg(64)]);
        let f = mir.function("f").unwrap();
        // The index should be folded to the constant 64.
        let mut found = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::Def {
                rv: Rvalue::Index { indices, .. },
                ..
            } = s
            {
                if let [Index::Scalar(Operand::Const(v))] = indices[..] {
                    assert_eq!(v, 64.0);
                    found = true;
                }
            }
        });
        assert!(found, "constant-folded end index expected");
    }

    #[test]
    fn end_becomes_numel_when_shape_unknown() {
        let mir = lower_src(
            "function y = f(x, n)\nz = x(1:n);\ny = z(end);\nend",
            "f",
            &[vec_arg(64), Ty::double_scalar()],
        );
        let f = mir.function("f").unwrap();
        let mut saw_numel = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::Def {
                rv: Rvalue::Builtin { name, .. },
                ..
            } = s
            {
                if name == "numel" {
                    saw_numel = true;
                }
            }
        });
        assert!(saw_numel);
    }

    #[test]
    fn effect_builtin_becomes_effect() {
        let mir = lower_src(
            "function f(x)\nfprintf('%f\\n', x);\nend",
            "f",
            &[Ty::double_scalar()],
        );
        let f = mir.function("f").unwrap();
        assert!(f
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Effect { name, .. } if name == "fprintf")));
    }

    #[test]
    fn zeros_becomes_alloc() {
        let mir = lower_src("function y = f()\ny = zeros(1, 8);\nend", "f", &[]);
        let f = mir.function("f").unwrap();
        assert!(f.body.iter().any(|s| matches!(
            s,
            Stmt::Def {
                rv: Rvalue::Alloc {
                    kind: AllocKind::Zeros,
                    ..
                },
                ..
            }
        )));
    }

    #[test]
    fn indexed_store() {
        let mir = lower_src(
            "function y = f(x)\ny = zeros(1, 4);\ny(2) = x;\nend",
            "f",
            &[Ty::double_scalar()],
        );
        let f = mir.function("f").unwrap();
        assert!(f.body.iter().any(|s| matches!(s, Stmt::Store { .. })));
    }

    #[test]
    fn multi_output_call() {
        let mir = lower_src(
            "function i = f(x)\n[~, i] = max(x);\nend",
            "f",
            &[vec_arg(8)],
        );
        let f = mir.function("f").unwrap();
        let cm = f.body.iter().find_map(|s| match s {
            Stmt::CallMulti { dsts, user, .. } => Some((dsts.clone(), *user)),
            _ => None,
        });
        let (dsts, user) = cm.expect("CallMulti present");
        assert!(!user);
        assert_eq!(dsts.len(), 2);
        assert!(dsts[0].is_none());
        assert!(dsts[1].is_some());
    }

    #[test]
    fn user_call_lowered() {
        let mir = lower_src(
            "function y = top(x)\ny = helper(x) + 1;\nend\nfunction z = helper(x)\nz = 2 * x;\nend",
            "top",
            &[Ty::double_scalar()],
        );
        assert!(mir.function("helper").is_some());
        let top = mir.function("top").unwrap();
        let mut saw_call = false;
        walk_stmts(&top.body, &mut |s| {
            if let Stmt::Def {
                rv: Rvalue::Call { func, .. },
                ..
            } = s
            {
                assert_eq!(func, "helper");
                saw_call = true;
            }
        });
        assert!(saw_call);
    }

    #[test]
    fn short_circuit_becomes_if() {
        let mir = lower_src(
            "function y = f(a, b)\nif a > 0 && b > 0\n y = 1;\nelse\n y = 0;\nend\nend",
            "f",
            &[Ty::double_scalar(), Ty::double_scalar()],
        );
        let f = mir.function("f").unwrap();
        // Expect two If statements: one from &&, one from the user's if.
        let mut ifs = 0;
        walk_stmts(&f.body, &mut |s| {
            if matches!(s, Stmt::If { .. }) {
                ifs += 1;
            }
        });
        assert!(ifs >= 2);
    }

    #[test]
    fn while_cond_defs_captured() {
        let mir = lower_src(
            "function y = f(n)\ny = n;\nwhile y > 1\n y = y / 2;\nend\nend",
            "f",
            &[Ty::double_scalar()],
        );
        let f = mir.function("f").unwrap();
        let w = f.body.iter().find_map(|s| match s {
            Stmt::While {
                cond_defs, cond, ..
            } => Some((cond_defs.len(), *cond)),
            _ => None,
        });
        let (n_defs, cond) = w.expect("while present");
        assert!(n_defs >= 1, "condition computation captured");
        assert!(matches!(cond, Operand::Var(_)));
    }

    #[test]
    fn colon_index_is_full() {
        let mir = lower_src(
            "function y = f(a)\ny = a(:, 2);\nend",
            "f",
            &[Ty::new(Class::Double, Shape::known(4, 4))],
        );
        let f = mir.function("f").unwrap();
        let mut saw_full = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::Def {
                rv: Rvalue::Index { indices, .. },
                ..
            } = s
            {
                if matches!(indices[0], Index::Full) {
                    saw_full = true;
                }
            }
        });
        assert!(saw_full);
    }

    #[test]
    fn slice_index_range() {
        let mir = lower_src(
            "function y = f(x)\ny = x(2:end-1);\nend",
            "f",
            &[vec_arg(10)],
        );
        let f = mir.function("f").unwrap();
        let mut ok = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::Def {
                rv: Rvalue::Index { indices, .. },
                ..
            } = s
            {
                if let [Index::Range { start, stop, .. }] = &indices[..] {
                    assert_eq!(start.as_const(), Some(2.0));
                    assert_eq!(stop.as_const(), Some(9.0));
                    ok = true;
                }
            }
        });
        assert!(ok, "range index with folded end-1 expected");
    }

    #[test]
    fn matrix_literal_operands() {
        let mir = lower_src("function y = f()\ny = [1 2; 3 4];\nend", "f", &[]);
        let f = mir.function("f").unwrap();
        let mut ok = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::Def {
                rv: Rvalue::MatrixLit { rows },
                ..
            } = s
            {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
                ok = true;
            }
        });
        assert!(ok);
    }

    #[test]
    fn function_handle_rejected() {
        let (p, _) = parse("function y = f(x)\ng = @(t) t;\ny = g(x);\nend");
        let analysis = analyze(&p, "f", &[Ty::double_scalar()]);
        let (_, diags) = lower_program(&p, &analysis);
        assert!(diags.has_errors());
    }

    #[test]
    fn general_for_iteration_lowered_to_indexed_loop() {
        let mir = lower_src(
            "function s = f(v)\ns = 0;\nfor x = v\n s = s + x;\nend\nend",
            "f",
            &[vec_arg(8)],
        );
        let f = mir.function("f").unwrap();
        let mut saw_numel = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::Def {
                rv: Rvalue::Builtin { name, .. },
                ..
            } = s
            {
                if name == "numel" {
                    saw_numel = true;
                }
            }
        });
        assert!(saw_numel, "general for should iterate via numel");
    }
}
