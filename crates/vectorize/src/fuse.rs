//! MAC fusion: an element-wise multiply whose only consumer is a sum
//! reduction becomes a single multiply-accumulate vector operation —
//! `s = sum(a .* b)` compiles to the ASIP's `vmac` instruction instead of
//! a multiply pass plus a reduce pass over a temporary array.

use matic_mir::{
    walk_stmts, MirFunction, Operand, ReduceKind, Rvalue, Stmt, VarId, VecKind, VecRef, VectorOp,
};
use std::collections::HashMap;

/// Statistics from the fusion pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuseReport {
    /// Map(×) + Reduce(+) pairs fused into MACs.
    pub macs_fused: usize,
}

/// Runs MAC fusion over `func`.
pub fn fuse_mac(func: &mut MirFunction) -> FuseReport {
    let mut report = FuseReport::default();
    let uses = count_uses(func);
    let mut body = std::mem::take(&mut func.body);
    process(&mut body, &uses, &mut report);
    func.body = body;
    report
}

/// Counts how many statements reference each register anywhere in the
/// function (conservative: includes reads and writes).
fn count_uses(func: &MirFunction) -> HashMap<VarId, u32> {
    let mut uses: HashMap<VarId, u32> = HashMap::new();
    for &o in &func.outputs {
        *uses.entry(o).or_default() += 1;
    }
    walk_stmts(&func.body, &mut |s| {
        matic_mir::visit_stmt_operands(s, &mut |op| {
            if let Operand::Var(v) = op {
                *uses.entry(*v).or_default() += 1;
            }
        });
    });
    uses
}

fn process(stmts: &mut Vec<Stmt>, uses: &HashMap<VarId, u32>, report: &mut FuseReport) {
    // Recurse first.
    for s in stmts.iter_mut() {
        match s {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                process(then_body, uses, report);
                process(else_body, uses, report);
            }
            Stmt::For { body, .. } => process(body, uses, report),
            Stmt::While {
                cond_defs, body, ..
            } => {
                process(cond_defs, uses, report);
                process(body, uses, report);
            }
            _ => {}
        }
    }

    // Pattern (produced by the array pass for `sum(a .* b)`):
    //   k+0: Def   t = Alloc …            (temporary product array)
    //   k+1: VectorOp Map(×) dst=t, a, b, len
    //   k+2: Def   s = Use(0)
    //   k+3: VectorOp Reduce(+) dst=splat(s), a=t, len
    // with `t` referenced nowhere else.
    let mut k = 0;
    while k + 3 < stmts.len() {
        let fused = match (&stmts[k], &stmts[k + 1], &stmts[k + 2], &stmts[k + 3]) {
            (
                Stmt::Def {
                    dst: t_alloc,
                    rv: Rvalue::Alloc { .. },
                    ..
                },
                Stmt::VectorOp(map),
                Stmt::Def {
                    dst: s_init,
                    rv: Rvalue::Use(init),
                    span: init_span,
                },
                Stmt::VectorOp(red),
            ) => {
                let is_mul_map =
                    matches!(map.kind, VecKind::Map(matic_frontend::ast::BinOp::ElemMul));
                let map_writes_t = matches!(
                    &map.dst,
                    VecRef::Slice { array, .. } if array == t_alloc
                );
                let red_is_sum = matches!(red.kind, VecKind::Reduce(ReduceKind::Sum));
                let red_reads_t = matches!(
                    &red.a,
                    VecRef::Slice { array, .. } if array == t_alloc
                );
                let red_into_s = matches!(
                    &red.dst,
                    VecRef::Splat(Operand::Var(v)) if v == s_init
                );
                // `t` must be used exactly by the map (write) and reduce
                // (read): 2 references besides the alloc itself.
                let t_private = uses.get(t_alloc).copied().unwrap_or(0) <= 2;
                let same_len = map.len == red.len;
                if is_mul_map
                    && map_writes_t
                    && red_is_sum
                    && red_reads_t
                    && red_into_s
                    && t_private
                    && same_len
                {
                    Some((
                        *s_init,
                        *init,
                        *init_span,
                        map.a.clone(),
                        map.b.clone(),
                        map.len,
                        map.complex || red.complex,
                        red.span,
                    ))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some((s, init, init_span, a, b, len, complex, span)) = fused {
            let replacement = vec![
                Stmt::Def {
                    dst: s,
                    rv: Rvalue::Use(init),
                    span: init_span,
                },
                Stmt::VectorOp(VectorOp {
                    kind: VecKind::Mac,
                    dst: VecRef::Splat(Operand::Var(s)),
                    a,
                    b,
                    len,
                    complex,
                    span,
                }),
            ];
            stmts.splice(k..k + 4, replacement);
            report.macs_fused += 1;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrays::vectorize_arrays;
    use matic_frontend::parse;
    use matic_sema::{analyze, Class, Dim, Shape, Ty};

    fn pipeline(src: &str, entry: &str, args: &[Ty]) -> (MirFunction, FuseReport) {
        let (p, diags) = parse(src);
        assert!(!diags.has_errors());
        let analysis = analyze(&p, entry, args);
        let (mut mir, _) = matic_mir::lower_program(&p, &analysis);
        matic_mir::optimize_program(&mut mir);
        let mut f = mir.function(entry).unwrap().clone();
        vectorize_arrays(&mut f);
        let report = fuse_mac(&mut f);
        (f, report)
    }

    fn vec_ty(n: usize) -> Ty {
        Ty::new(Class::Double, Shape::row(Dim::Known(n)))
    }

    #[test]
    fn sum_of_product_fuses_to_mac() {
        let (f, report) = pipeline(
            "function s = f(a, b)\ns = sum(a .* b);\nend",
            "f",
            &[vec_ty(64), vec_ty(64)],
        );
        assert_eq!(report.macs_fused, 1);
        let mut macs = 0;
        let mut maps = 0;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                match v.kind {
                    VecKind::Mac => macs += 1,
                    VecKind::Map(_) => maps += 1,
                    _ => {}
                }
            }
        });
        assert_eq!(macs, 1);
        assert_eq!(maps, 0, "the multiply map is consumed by the fusion");
    }

    #[test]
    fn product_used_elsewhere_blocks_fusion() {
        let (_, report) = pipeline(
            "function [s, p] = f(a, b)\np = a .* b;\ns = sum(p);\nend",
            "f",
            &[vec_ty(16), vec_ty(16)],
        );
        assert_eq!(report.macs_fused, 0, "p escapes — no fusion");
    }

    #[test]
    fn complex_product_fuses_with_complex_flag() {
        let c = Ty::new(Class::Complex, Shape::row(Dim::Known(32)));
        let (f, report) = pipeline("function s = f(a, b)\ns = sum(a .* b);\nend", "f", &[c, c]);
        assert_eq!(report.macs_fused, 1);
        let mut complex = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                if matches!(v.kind, VecKind::Mac) {
                    complex = v.complex;
                }
            }
        });
        assert!(complex);
    }

    #[test]
    fn plain_sum_not_affected() {
        let (f, report) = pipeline("function s = f(a)\ns = sum(a);\nend", "f", &[vec_ty(16)]);
        assert_eq!(report.macs_fused, 0);
        let mut reduces = 0;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                if matches!(v.kind, VecKind::Reduce(_)) {
                    reduces += 1;
                }
            }
        });
        assert_eq!(reduces, 1);
    }
}
