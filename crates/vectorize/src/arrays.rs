//! Implicit data parallelism: array-level operations (`y = a .* b`,
//! `s = sum(v)`, slices) become [`VectorOp`]s directly — MATLAB's
//! vectorized style compiles to custom instructions without the user ever
//! writing a loop.

use matic_frontend::ast::{BinOp, UnOp};
use matic_frontend::span::Span;
use matic_mir::{
    AllocKind, Index, MirFunction, Operand, ReduceKind, Rvalue, Stmt, VarId, VecKind, VecRef,
    VectorOp,
};
use matic_sema::{Class, Ty};

use crate::loops::LANE_BUILTINS;

/// Statistics from the array-operation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArrayReport {
    /// Element-wise array expressions strip-mined to vector maps.
    pub maps: usize,
    /// Reductions (`sum`, `prod`, `min`, `max`, `dot`) vectorized.
    pub reductions: usize,
    /// Slice reads/writes converted to strided copies.
    pub copies: usize,
}

/// Runs the pass over `func`.
pub fn vectorize_arrays(func: &mut MirFunction) -> ArrayReport {
    let mut report = ArrayReport::default();
    let mut body = std::mem::take(&mut func.body);
    process(func, &mut body, &mut report);
    func.body = body;
    report
}

fn process(func: &mut MirFunction, stmts: &mut Vec<Stmt>, report: &mut ArrayReport) {
    let mut out = Vec::with_capacity(stmts.len());
    for mut stmt in std::mem::take(stmts) {
        match &mut stmt {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                process(func, then_body, report);
                process(func, else_body, report);
                out.push(stmt);
            }
            Stmt::For { body, .. } => {
                process(func, body, report);
                out.push(stmt);
            }
            Stmt::While {
                cond_defs, body, ..
            } => {
                process(func, cond_defs, report);
                process(func, body, report);
                out.push(stmt);
            }
            Stmt::Def { dst, rv, span } => {
                if let Some(repl) = rewrite_def(func, *dst, rv, *span, report) {
                    out.extend(repl);
                } else {
                    out.push(stmt);
                }
            }
            Stmt::Store {
                array,
                indices,
                value,
                span,
            } => {
                if let Some(repl) = rewrite_store(func, *array, indices, *value, *span, report) {
                    out.extend(repl);
                } else {
                    out.push(stmt);
                }
            }
            _ => out.push(stmt),
        }
    }
    *stmts = out;
}

/// Whether a type is a provably dense array (vector or fully-known
/// matrix) with a numeric class.
fn dense_array(ty: Ty) -> bool {
    !ty.shape.is_scalar()
        && (ty.shape.is_vector() || ty.shape.numel().is_some())
        && matches!(ty.class, Class::Double | Class::Complex)
}

fn scalar_like(ty: Ty) -> bool {
    ty.shape.is_scalar()
}

/// Emits `numel(v)` (folding when static) as the lane count.
fn emit_numel(func: &mut MirFunction, out: &mut Vec<Stmt>, v: VarId, span: Span) -> Operand {
    if let Some(n) = func.var_ty(v).shape.numel() {
        return Operand::Const(n as f64);
    }
    let t = func.add_temp(Ty::double_scalar());
    out.push(Stmt::Def {
        dst: t,
        rv: Rvalue::Builtin {
            name: "numel".to_string(),
            args: vec![Operand::Var(v)],
        },
        span,
    });
    Operand::Var(t)
}

/// Emits an allocation for `dst` matching the shape of `like`, plus the
/// lane count. The same `numel` temp serves both (keeping reference
/// counts low enough for the slice-forwarding pass).
fn emit_alloc_like(
    func: &mut MirFunction,
    out: &mut Vec<Stmt>,
    dst: VarId,
    like: VarId,
    span: Span,
) -> Operand {
    let shape = func.var_ty(dst).shape;
    let len = emit_numel(func, out, like, span);
    let (rows, cols) = match (shape.rows.known(), shape.cols.known()) {
        (Some(r), Some(c)) => (Operand::Const(r as f64), Operand::Const(c as f64)),
        (Some(1), None) => (Operand::Const(1.0), len),
        (None, Some(1)) => (len, Operand::Const(1.0)),
        _ => {
            let r = func.add_temp(Ty::double_scalar());
            out.push(Stmt::Def {
                dst: r,
                rv: Rvalue::Builtin {
                    name: "size".to_string(),
                    args: vec![Operand::Var(like), Operand::Const(1.0)],
                },
                span,
            });
            let c = func.add_temp(Ty::double_scalar());
            out.push(Stmt::Def {
                dst: c,
                rv: Rvalue::Builtin {
                    name: "size".to_string(),
                    args: vec![Operand::Var(like), Operand::Const(2.0)],
                },
                span,
            });
            (Operand::Var(r), Operand::Var(c))
        }
    };
    out.push(Stmt::Def {
        dst,
        rv: Rvalue::Alloc {
            kind: AllocKind::Zeros,
            rows,
            cols,
        },
        span,
    });
    len
}

/// Emits `if numel(a) ~= numel(b) then error(...)`.
fn emit_dim_guard(func: &mut MirFunction, out: &mut Vec<Stmt>, a: VarId, b: VarId, span: Span) {
    let na = func.add_temp(Ty::double_scalar());
    out.push(Stmt::Def {
        dst: na,
        rv: Rvalue::Builtin {
            name: "numel".to_string(),
            args: vec![Operand::Var(a)],
        },
        span,
    });
    let nb = func.add_temp(Ty::double_scalar());
    out.push(Stmt::Def {
        dst: nb,
        rv: Rvalue::Builtin {
            name: "numel".to_string(),
            args: vec![Operand::Var(b)],
        },
        span,
    });
    let ne = func.add_temp(Ty::new(Class::Logical, matic_sema::Shape::scalar()));
    out.push(Stmt::Def {
        dst: ne,
        rv: Rvalue::Binary {
            op: BinOp::Ne,
            a: Operand::Var(na),
            b: Operand::Var(nb),
        },
        span,
    });
    let msg = func.add_temp(Ty::new(
        Class::Char,
        matic_sema::Shape::row(matic_sema::Dim::Unknown),
    ));
    out.push(Stmt::If {
        cond: Operand::Var(ne),
        then_body: vec![
            Stmt::Def {
                dst: msg,
                rv: Rvalue::StrLit("matrix dimensions must agree".to_string()),
                span,
            },
            Stmt::Effect {
                name: "error".to_string(),
                args: vec![Operand::Var(msg)],
                span,
            },
        ],
        else_body: vec![],
        span,
    });
}

fn unit_slice(v: VarId) -> VecRef {
    VecRef::Slice {
        array: v,
        start: Operand::Const(1.0),
        step: Operand::Const(1.0),
    }
}

/// Classifies an operand as a lane source.
fn lane_ref(func: &MirFunction, op: Operand) -> Option<(VecRef, bool /*is_array*/)> {
    match op {
        Operand::Const(_) | Operand::ConstC(..) => Some((VecRef::Splat(op), false)),
        Operand::Var(v) => {
            let ty = func.var_ty(v);
            if scalar_like(ty) {
                Some((VecRef::Splat(op), false))
            } else if dense_array(ty) {
                Some((unit_slice(v), true))
            } else {
                None
            }
        }
    }
}

fn is_complex_op(func: &MirFunction, op: Operand) -> bool {
    match op {
        Operand::ConstC(..) => true,
        Operand::Var(v) => func.var_ty(v).class == Class::Complex,
        Operand::Const(_) => false,
    }
}

fn rewrite_def(
    func: &mut MirFunction,
    dst: VarId,
    rv: &Rvalue,
    span: Span,
    report: &mut ArrayReport,
) -> Option<Vec<Stmt>> {
    let dst_ty = func.var_ty(dst);
    match rv {
        // y = a op b, element-wise on dense arrays.
        Rvalue::Binary { op, a, b }
            if dense_array(dst_ty)
                && matches!(
                    op,
                    BinOp::Add
                        | BinOp::Sub
                        | BinOp::ElemMul
                        | BinOp::ElemDiv
                        | BinOp::MatMul
                        | BinOp::MatDiv
                ) =>
        {
            // In-place updates (`x = x .* y`) must not be rewritten: the
            // allocation of the destination would clobber the source.
            if a.as_var() == Some(dst) || b.as_var() == Some(dst) {
                return None;
            }
            // `*` and `/` are element-wise only when one side is scalar.
            let (ra, a_arr) = lane_ref(func, *a)?;
            let (rb, b_arr) = lane_ref(func, *b)?;
            if matches!(op, BinOp::MatMul | BinOp::MatDiv) && a_arr && b_arr {
                return None;
            }
            if !a_arr && !b_arr {
                return None;
            }
            let ew_op = match op {
                BinOp::MatMul => BinOp::ElemMul,
                BinOp::MatDiv => BinOp::ElemDiv,
                other => *other,
            };
            let like = if a_arr { a.as_var()? } else { b.as_var()? };
            let mut out = Vec::new();
            // MATLAB semantics demand a dimension check when both sides
            // are arrays; elide it only when shapes are statically equal.
            if a_arr && b_arr {
                let (av, bv) = (a.as_var()?, b.as_var()?);
                let (sa, sb) = (func.var_ty(av).shape, func.var_ty(bv).shape);
                let statically_equal = sa.numel().is_some() && sa.numel() == sb.numel();
                if !statically_equal {
                    emit_dim_guard(func, &mut out, av, bv, span);
                }
            }
            let len = emit_alloc_like(func, &mut out, dst, like, span);
            let complex = dst_ty.class == Class::Complex
                || is_complex_op(func, *a)
                || is_complex_op(func, *b);
            out.push(Stmt::VectorOp(VectorOp {
                kind: VecKind::Map(ew_op),
                dst: unit_slice(dst),
                a: ra,
                b: Some(rb),
                len,
                complex,
                span,
            }));
            report.maps += 1;
            Some(out)
        }
        // y = x .^ k on a dense real array with a small constant integer
        // exponent: strength-reduced to element-wise multiply chains
        // (`vmul` on SIMD targets) instead of per-lane `pow` calls.
        Rvalue::Binary {
            op: BinOp::ElemPow,
            a,
            b,
        } if dense_array(dst_ty) && dst_ty.class == Class::Double => {
            // In-place updates must not be rewritten (the allocation of
            // the destination would clobber the source).
            if a.as_var() == Some(dst) {
                return None;
            }
            let x = a.as_var()?;
            if !(dense_array(func.var_ty(x)) && func.var_ty(x).class == Class::Double) {
                return None;
            }
            let k = match b {
                Operand::Const(c) if c.fract() == 0.0 && (2.0..=4.0).contains(c) => *c as u32,
                _ => return None,
            };
            let mut out = Vec::new();
            let len = emit_alloc_like(func, &mut out, dst, x, span);
            let square = |dst_ref: VecRef, src: VecRef, out: &mut Vec<Stmt>| {
                out.push(Stmt::VectorOp(VectorOp {
                    kind: VecKind::Map(BinOp::ElemMul),
                    dst: dst_ref,
                    a: src.clone(),
                    b: Some(src),
                    len,
                    complex: false,
                    span,
                }));
            };
            match k {
                2 => square(unit_slice(dst), unit_slice(x), &mut out),
                3 => {
                    // t = x .* x; dst = t .* x
                    let t = func.add_temp(func.var_ty(dst));
                    let _ = emit_alloc_like(func, &mut out, t, x, span);
                    square(unit_slice(t), unit_slice(x), &mut out);
                    out.push(Stmt::VectorOp(VectorOp {
                        kind: VecKind::Map(BinOp::ElemMul),
                        dst: unit_slice(dst),
                        a: unit_slice(t),
                        b: Some(unit_slice(x)),
                        len,
                        complex: false,
                        span,
                    }));
                    report.maps += 1;
                }
                4 => {
                    // t = x .* x; dst = t .* t
                    let t = func.add_temp(func.var_ty(dst));
                    let _ = emit_alloc_like(func, &mut out, t, x, span);
                    square(unit_slice(t), unit_slice(x), &mut out);
                    square(unit_slice(dst), unit_slice(t), &mut out);
                    report.maps += 1;
                }
                _ => return None,
            }
            report.maps += 1;
            Some(out)
        }
        // y = -a on a dense array.
        Rvalue::Unary { op: UnOp::Neg, a } if dense_array(dst_ty) => {
            let (ra, is_arr) = lane_ref(func, *a)?;
            if !is_arr {
                return None;
            }
            let like = a.as_var()?;
            let mut out = Vec::new();
            let len = emit_alloc_like(func, &mut out, dst, like, span);
            out.push(Stmt::VectorOp(VectorOp {
                kind: VecKind::MapUnary(UnOp::Neg),
                dst: unit_slice(dst),
                a: ra,
                b: None,
                len,
                complex: is_complex_op(func, *a),
                span,
            }));
            report.maps += 1;
            Some(out)
        }
        // y = abs/conj/sqrt/...(a) on a dense array.
        Rvalue::Builtin { name, args }
            if args.len() == 1 && LANE_BUILTINS.contains(&name.as_str()) && dense_array(dst_ty) =>
        {
            let like = args[0].as_var()?;
            if !dense_array(func.var_ty(like)) {
                return None;
            }
            let mut out = Vec::new();
            let len = emit_alloc_like(func, &mut out, dst, like, span);
            out.push(Stmt::VectorOp(VectorOp {
                kind: VecKind::MapBuiltin(name.clone()),
                dst: unit_slice(dst),
                a: unit_slice(like),
                b: None,
                len,
                complex: is_complex_op(func, args[0]),
                span,
            }));
            report.maps += 1;
            Some(out)
        }
        // s = sum/prod(v), v a dense vector.
        Rvalue::Builtin { name, args }
            if args.len() == 1 && matches!(name.as_str(), "sum" | "prod") =>
        {
            let v = args[0].as_var()?;
            let vty = func.var_ty(v);
            if !(dense_array(vty) && vty.shape.is_vector()) {
                return None;
            }
            let (kind, init) = match name.as_str() {
                "sum" => (ReduceKind::Sum, 0.0),
                _ => (ReduceKind::Prod, 1.0),
            };
            let mut out = Vec::new();
            out.push(Stmt::Def {
                dst,
                rv: Rvalue::Use(Operand::Const(init)),
                span,
            });
            let len = emit_numel(func, &mut out, v, span);
            out.push(Stmt::VectorOp(VectorOp {
                kind: VecKind::Reduce(kind),
                dst: VecRef::Splat(Operand::Var(dst)),
                a: unit_slice(v),
                b: None,
                len,
                complex: vty.class == Class::Complex,
                span,
            }));
            report.reductions += 1;
            Some(out)
        }
        // s = dot(a, b) on real dense vectors (complex dot conjugates and
        // stays on the scalar path).
        Rvalue::Builtin { name, args } if name == "dot" && args.len() == 2 => {
            let a = args[0].as_var()?;
            let b = args[1].as_var()?;
            let (ta, tb) = (func.var_ty(a), func.var_ty(b));
            if !(dense_array(ta) && dense_array(tb))
                || ta.class == Class::Complex
                || tb.class == Class::Complex
            {
                return None;
            }
            let mut out = Vec::new();
            out.push(Stmt::Def {
                dst,
                rv: Rvalue::Use(Operand::Const(0.0)),
                span,
            });
            let len = emit_numel(func, &mut out, a, span);
            out.push(Stmt::VectorOp(VectorOp {
                kind: VecKind::Mac,
                dst: VecRef::Splat(Operand::Var(dst)),
                a: unit_slice(a),
                b: Some(unit_slice(b)),
                len,
                complex: false,
                span,
            }));
            report.reductions += 1;
            Some(out)
        }
        // y = x(r1:s:r2) — strided slice read.
        Rvalue::Index { array, indices } => {
            let (start, step, len_spec) = slice_spec(func, *array, indices)?;
            let mut out = Vec::new();
            let len = match len_spec {
                LenSpec::Op(o) => o,
                LenSpec::RangeLen { start, step, stop } => {
                    emit_range_len(func, &mut out, start, step, stop, span)
                }
            };
            // Allocate destination: same class, a vector of `len`.
            let (rows, cols) = if func.var_ty(dst).shape.cols.is_one() {
                (len, Operand::Const(1.0))
            } else {
                (Operand::Const(1.0), len)
            };
            out.push(Stmt::Def {
                dst,
                rv: Rvalue::Alloc {
                    kind: AllocKind::Zeros,
                    rows,
                    cols,
                },
                span,
            });
            out.push(Stmt::VectorOp(VectorOp {
                kind: VecKind::Copy,
                dst: unit_slice(dst),
                a: VecRef::Slice {
                    array: *array,
                    start,
                    step,
                },
                b: None,
                len,
                complex: func.var_ty(*array).class == Class::Complex,
                span,
            }));
            report.copies += 1;
            Some(out)
        }
        _ => None,
    }
}

fn rewrite_store(
    func: &mut MirFunction,
    array: VarId,
    indices: &[Index],
    value: Operand,
    span: Span,
    report: &mut ArrayReport,
) -> Option<Vec<Stmt>> {
    let (start, step, len_spec) = slice_spec(func, array, indices)?;
    let mut out = Vec::new();
    let len = match len_spec {
        LenSpec::Op(o) => o,
        LenSpec::RangeLen { start, step, stop } => {
            emit_range_len(func, &mut out, start, step, stop, span)
        }
    };
    let src = match value {
        Operand::Var(v) if dense_array(func.var_ty(v)) => unit_slice(v),
        // Scalar fan-out (`x(1:n) = 0`).
        other => VecRef::Splat(other),
    };
    let complex = func.var_ty(array).class == Class::Complex || is_complex_op(func, value);
    out.push(Stmt::VectorOp(VectorOp {
        kind: VecKind::Copy,
        dst: VecRef::Slice { array, start, step },
        a: src,
        b: None,
        len,
        complex,
        span,
    }));
    report.copies += 1;
    Some(out)
}

enum LenSpec {
    Op(Operand),
    RangeLen {
        start: Operand,
        step: Operand,
        stop: Operand,
    },
}

/// Linearizes a slice-like index list into `(start, step, len)`.
///
/// Supported: 1-D `Range`/`Full`, and 2-D `(scalar, Full)` / `(Full,
/// scalar)` row/column views.
fn slice_spec(
    func: &mut MirFunction,
    array: VarId,
    indices: &[Index],
) -> Option<(Operand, Operand, LenSpec)> {
    let aty = func.var_ty(array);
    match indices {
        [Index::Range { start, step, stop }] => Some((
            *start,
            *step,
            LenSpec::RangeLen {
                start: *start,
                step: *step,
                stop: *stop,
            },
        )),
        [Index::Full] => {
            let len = aty.shape.numel().map(|n| Operand::Const(n as f64))?;
            Some((Operand::Const(1.0), Operand::Const(1.0), LenSpec::Op(len)))
        }
        // Row view a(r, :): linear start r, stride = nrows.
        [Index::Scalar(r), Index::Full] => {
            let nrows = aty.shape.rows.known()?;
            let ncols = aty.shape.cols.known()?;
            Some((
                *r,
                Operand::Const(nrows as f64),
                LenSpec::Op(Operand::Const(ncols as f64)),
            ))
        }
        // Column view a(:, c): linear start (c-1)*nrows + 1, stride 1.
        [Index::Full, Index::Scalar(c)] => {
            let nrows = aty.shape.rows.known()?;
            let start = match c.as_const() {
                Some(cv) => Operand::Const((cv - 1.0) * nrows as f64 + 1.0),
                None => {
                    let t1 = func.add_temp(Ty::double_scalar());
                    let t2 = func.add_temp(Ty::double_scalar());
                    let t3 = func.add_temp(Ty::double_scalar());
                    // Emitted by caller? We need a buffer — use a small
                    // trick: return None for non-constant columns; the
                    // scalar path remains correct.
                    let _ = (t1, t2, t3);
                    return None;
                }
            };
            Some((
                start,
                Operand::Const(1.0),
                LenSpec::Op(Operand::Const(nrows as f64)),
            ))
        }
        _ => None,
    }
}

/// Emits `len = floor((stop - start) / step) + 1`, folding constants.
fn emit_range_len(
    func: &mut MirFunction,
    out: &mut Vec<Stmt>,
    start: Operand,
    step: Operand,
    stop: Operand,
    span: Span,
) -> Operand {
    if let Some(n) = matic_mir::range_len_const(start, step, stop) {
        return Operand::Const(n as f64);
    }
    let d = func.add_temp(Ty::double_scalar());
    out.push(Stmt::Def {
        dst: d,
        rv: Rvalue::Binary {
            op: BinOp::Sub,
            a: stop,
            b: start,
        },
        span,
    });
    let q = func.add_temp(Ty::double_scalar());
    out.push(Stmt::Def {
        dst: q,
        rv: Rvalue::Binary {
            op: BinOp::ElemDiv,
            a: Operand::Var(d),
            b: step,
        },
        span,
    });
    let fl = func.add_temp(Ty::double_scalar());
    out.push(Stmt::Def {
        dst: fl,
        rv: Rvalue::Builtin {
            name: "floor".to_string(),
            args: vec![Operand::Var(q)],
        },
        span,
    });
    let len = func.add_temp(Ty::double_scalar());
    out.push(Stmt::Def {
        dst: len,
        rv: Rvalue::Binary {
            op: BinOp::Add,
            a: Operand::Var(fl),
            b: Operand::Const(1.0),
        },
        span,
    });
    Operand::Var(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_frontend::parse;
    use matic_mir::walk_stmts;
    use matic_sema::{analyze, Dim, Shape};

    fn run(src: &str, entry: &str, args: &[Ty]) -> (MirFunction, ArrayReport) {
        let (p, diags) = parse(src);
        assert!(!diags.has_errors());
        let analysis = analyze(&p, entry, args);
        assert!(
            !analysis.diags.has_errors(),
            "{:?}",
            analysis.diags.clone().into_vec()
        );
        let (mut mir, diags) = matic_mir::lower_program(&p, &analysis);
        assert!(!diags.has_errors());
        matic_mir::optimize_program(&mut mir);
        let mut f = mir.function(entry).unwrap().clone();
        let report = vectorize_arrays(&mut f);
        (f, report)
    }

    fn vec_ty(n: usize) -> Ty {
        Ty::new(Class::Double, Shape::row(Dim::Known(n)))
    }

    fn vecops(f: &MirFunction) -> Vec<VectorOp> {
        let mut v = Vec::new();
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(op) = s {
                v.push(op.clone());
            }
        });
        v
    }

    #[test]
    fn elementwise_expression_strip_mined() {
        let (f, report) = run(
            "function y = f(a, b)\ny = a .* b + a;\nend",
            "f",
            &[vec_ty(64), vec_ty(64)],
        );
        assert_eq!(report.maps, 2);
        let ops = vecops(&f);
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0].kind, VecKind::Map(BinOp::ElemMul)));
        assert!(matches!(ops[1].kind, VecKind::Map(BinOp::Add)));
    }

    #[test]
    fn scalar_broadcast_splat() {
        let (f, report) = run(
            "function y = f(a, k)\ny = k * a;\nend",
            "f",
            &[vec_ty(32), Ty::double_scalar()],
        );
        assert_eq!(report.maps, 1);
        let ops = vecops(&f);
        assert!(matches!(ops[0].a, VecRef::Splat(_)));
        assert!(matches!(ops[0].kind, VecKind::Map(BinOp::ElemMul)));
    }

    #[test]
    fn matrix_matmul_not_strip_mined() {
        let m = Ty::new(Class::Double, Shape::known(8, 8));
        let (_, report) = run("function y = f(a, b)\ny = a * b;\nend", "f", &[m, m]);
        assert_eq!(report.maps, 0);
    }

    #[test]
    fn sum_becomes_reduction() {
        let (f, report) = run("function s = f(v)\ns = sum(v);\nend", "f", &[vec_ty(100)]);
        assert_eq!(report.reductions, 1);
        let ops = vecops(&f);
        assert!(matches!(ops[0].kind, VecKind::Reduce(ReduceKind::Sum)));
        assert_eq!(ops[0].len.as_const(), Some(100.0));
    }

    #[test]
    fn sum_of_matrix_stays_scalar() {
        // Column-wise sum has different semantics; must not vectorize.
        let m = Ty::new(Class::Double, Shape::known(4, 4));
        let (_, report) = run("function s = f(v)\ns = sum(v);\nend", "f", &[m]);
        assert_eq!(report.reductions, 0);
    }

    #[test]
    fn real_dot_becomes_mac() {
        let (f, report) = run(
            "function s = f(a, b)\ns = dot(a, b);\nend",
            "f",
            &[vec_ty(64), vec_ty(64)],
        );
        assert_eq!(report.reductions, 1);
        assert!(matches!(vecops(&f)[0].kind, VecKind::Mac));
    }

    #[test]
    fn complex_dot_stays_scalar() {
        let c = Ty::new(Class::Complex, Shape::row(Dim::Known(64)));
        let (_, report) = run("function s = f(a, b)\ns = dot(a, b);\nend", "f", &[c, c]);
        assert_eq!(report.reductions, 0, "complex dot conjugates — scalar path");
    }

    #[test]
    fn slice_read_becomes_strided_copy() {
        let (f, report) = run(
            "function y = f(x)\ny = x(1:2:end);\nend",
            "f",
            &[vec_ty(16)],
        );
        assert_eq!(report.copies, 1);
        let ops = vecops(&f);
        match &ops[0].a {
            VecRef::Slice { step, .. } => assert_eq!(step.as_const(), Some(2.0)),
            other => panic!("expected slice source: {other:?}"),
        }
        assert_eq!(ops[0].len.as_const(), Some(8.0));
    }

    #[test]
    fn slice_write_becomes_copy() {
        let (f, report) = run(
            "function y = f(x)\ny = zeros(1, 32);\ny(1:16) = x;\nend",
            "f",
            &[vec_ty(16)],
        );
        assert!(report.copies >= 1);
        let ops = vecops(&f);
        assert!(ops.iter().any(|o| matches!(o.kind, VecKind::Copy)));
    }

    #[test]
    fn scalar_fanout_store() {
        let (f, _) = run(
            "function y = f()\ny = zeros(1, 8);\ny(1:8) = 3;\nend",
            "f",
            &[],
        );
        let ops = vecops(&f);
        assert!(ops
            .iter()
            .any(|o| matches!(&o.a, VecRef::Splat(Operand::Const(v)) if *v == 3.0)));
    }

    #[test]
    fn elementwise_square_strength_reduced() {
        let (f, report) = run("function y = f(x)\ny = x .^ 2;\nend", "f", &[vec_ty(8)]);
        assert_eq!(report.maps, 1);
        let ops = vecops(&f);
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0].kind, VecKind::Map(BinOp::ElemMul)));
    }

    #[test]
    fn elementwise_cube_uses_mul_chain() {
        let (f, report) = run("function y = f(x)\ny = x .^ 3;\nend", "f", &[vec_ty(8)]);
        assert_eq!(report.maps, 2);
        let ops = vecops(&f);
        assert_eq!(ops.len(), 2);
        assert!(ops
            .iter()
            .all(|o| matches!(o.kind, VecKind::Map(BinOp::ElemMul))));
    }

    #[test]
    fn fourth_power_squares_twice() {
        let (f, report) = run("function y = f(x)\ny = x .^ 4;\nend", "f", &[vec_ty(8)]);
        assert_eq!(report.maps, 2);
        assert_eq!(vecops(&f).len(), 2);
    }

    #[test]
    fn non_integer_exponent_stays_scalar() {
        let (_, report) = run("function y = f(x)\ny = x .^ 2.5;\nend", "f", &[vec_ty(8)]);
        assert_eq!(report.maps, 0);
    }

    #[test]
    fn large_exponent_stays_scalar() {
        let (_, report) = run("function y = f(x)\ny = x .^ 9;\nend", "f", &[vec_ty(8)]);
        assert_eq!(report.maps, 0);
    }

    #[test]
    fn conj_map_on_complex_vector() {
        let c = Ty::new(Class::Complex, Shape::row(Dim::Known(16)));
        let (f, report) = run("function y = f(x)\ny = conj(x);\nend", "f", &[c]);
        assert_eq!(report.maps, 1);
        let ops = vecops(&f);
        assert!(matches!(&ops[0].kind, VecKind::MapBuiltin(n) if n == "conj"));
        assert!(ops[0].complex);
    }

    #[test]
    fn row_view_is_strided() {
        let m = Ty::new(Class::Double, Shape::known(4, 6));
        let (f, report) = run("function y = f(a)\ny = a(2, :);\nend", "f", &[m]);
        assert_eq!(report.copies, 1);
        let ops = vecops(&f);
        match &ops[0].a {
            VecRef::Slice { step, .. } => assert_eq!(step.as_const(), Some(4.0)),
            other => panic!("expected strided row view: {other:?}"),
        }
    }

    #[test]
    fn column_view_is_contiguous() {
        let m = Ty::new(Class::Double, Shape::known(4, 6));
        let (f, _) = run("function y = f(a)\ny = a(:, 3);\nend", "f", &[m]);
        let ops = vecops(&f);
        match &ops[0].a {
            VecRef::Slice { start, step, .. } => {
                assert_eq!(start.as_const(), Some(9.0));
                assert_eq!(step.as_const(), Some(1.0));
            }
            other => panic!("expected contiguous column view: {other:?}"),
        }
    }
}
