//! Explicit-loop idiom recognition.
//!
//! Recognizes the scalar `for` loops DSP code is written with and replaces
//! them by [`VectorOp`] statements:
//!
//! * **Map**: `for i = 1:n, y(f(i)) = a(g(i)) op b(h(i)); end` with affine
//!   subscripts;
//! * **MAC**: `for i = 1:n, acc = acc + a(g(i)) * b(h(i)); end`;
//! * **Reduce**: `for i = 1:n, acc = acc + a(g(i)); end`;
//! * **Copy**: `for i = 1:n, y(f(i)) = a(g(i)); end`.
//!
//! Loops with loop-carried dependences (e.g. IIR recurrences, which load
//! the stored array at a different offset) are left scalar — exactly the
//! behaviour that makes IIR the low-speedup anchor in the paper's
//! evaluation.

use crate::affine::{emit_affine, Affine, LoopEnv};
use matic_frontend::ast::{BinOp, UnOp};
use matic_frontend::span::Span;
use matic_mir::{
    visit_stmt_operands, walk_stmts, Index, MirFunction, Operand, ReduceKind, Rvalue, Stmt, VarId,
    VecKind, VecRef, VectorOp,
};
use matic_sema::{Class, Ty};
use std::collections::{HashMap, HashSet};

/// One-argument builtins a vector lane unit can apply element-wise.
pub const LANE_BUILTINS: &[&str] = &[
    "abs", "conj", "sqrt", "real", "imag", "floor", "ceil", "round",
];

/// One accept/reject decision made for a candidate `for` loop, carrying
/// the source span of the loop header so diagnostics can point at it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopDecision {
    /// Span of the loop header the decision concerns.
    pub span: Span,
    /// Whether the loop was converted to a vector operation.
    pub accepted: bool,
    /// Vector kind on accept (`map`, `mac`, `reduction`) or the rejection
    /// reason.
    pub detail: &'static str,
}

/// Statistics from the loop-vectorization pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopReport {
    /// Loops converted to map/copy vector operations.
    pub maps: usize,
    /// Loops converted to MAC reductions.
    pub macs: usize,
    /// Loops converted to plain reductions.
    pub reductions: usize,
    /// Candidate loops left scalar (dependence or unsupported shape).
    pub rejected: usize,
    /// Per-loop accept/reject decisions with spans, in visit order.
    pub decisions: Vec<LoopDecision>,
}

/// Runs loop idiom recognition over `func`, replacing recognized loops.
pub fn vectorize_loops(func: &mut MirFunction) -> LoopReport {
    let mut report = LoopReport::default();
    let live_after: HashSet<VarId> = func.outputs.iter().copied().collect();
    let mut body = std::mem::take(&mut func.body);
    process_body(func, &mut body, &live_after, &mut report);
    func.body = body;
    report
}

/// Rewrites loops in `stmts`; `live_after` is every register read after
/// this statement list completes.
fn process_body(
    func: &mut MirFunction,
    stmts: &mut Vec<Stmt>,
    live_after: &HashSet<VarId>,
    report: &mut LoopReport,
) {
    // Compute, for each position, the registers read at or after later
    // positions (plus live_after).
    let mut suffix_live: Vec<HashSet<VarId>> = vec![live_after.clone(); stmts.len() + 1];
    for k in (0..stmts.len()).rev() {
        let mut s = suffix_live[k + 1].clone();
        collect_reads(&stmts[k], &mut s);
        suffix_live[k] = s;
    }

    let mut out: Vec<Stmt> = Vec::new();
    for (k, mut stmt) in std::mem::take(stmts).into_iter().enumerate() {
        let after = &suffix_live[k + 1];
        match &mut stmt {
            Stmt::For {
                var,
                start,
                step,
                stop,
                body,
                span,
            } => {
                // Recurse into the body first (vectorizes inner loops of
                // nests; the outer loop then stays scalar around them).
                process_body(func, body, after, report);
                let decided = report.decisions.len();
                if let Some(replacement) =
                    try_vectorize_loop(func, *var, *start, *step, *stop, body, *span, after, report)
                {
                    out.extend(replacement);
                    continue;
                }
                // Candidates bailed out via `?` (or a non-straight-line
                // body) still get a decision entry, without disturbing
                // the rejection counter semantics.
                if report.decisions.len() == decided {
                    report.decisions.push(LoopDecision {
                        span: *span,
                        accepted: false,
                        detail: "unsupported loop body",
                    });
                }
                out.push(stmt);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                process_body(func, then_body, after, report);
                process_body(func, else_body, after, report);
                out.push(stmt);
            }
            Stmt::While {
                cond_defs: _, body, ..
            } => {
                // Conservatively treat everything as live after a while
                // body (it re-executes).
                let mut live = after.clone();
                walk_stmts(body, &mut |s| collect_reads_flat(s, &mut live));
                process_body(func, body, &live, report);
                out.push(stmt);
            }
            _ => out.push(stmt),
        }
    }
    *stmts = out;
}

fn collect_reads(stmt: &Stmt, out: &mut HashSet<VarId>) {
    walk_stmts(std::slice::from_ref(stmt), &mut |s| {
        collect_reads_flat(s, out)
    });
}

fn collect_reads_flat(stmt: &Stmt, out: &mut HashSet<VarId>) {
    visit_stmt_operands(stmt, &mut |op| {
        if let Operand::Var(v) = op {
            out.insert(*v);
        }
    });
    // A Store reads the array it partially updates.
    if let Stmt::Store { array, .. } = stmt {
        out.insert(*array);
    }
}

/// A symbolic lane value: an affine array load or a loop-invariant scalar.
#[derive(Debug, Clone)]
enum Leaf {
    Load { array: VarId, affine: Affine },
    Inv(Operand),
}

/// A recognized lane computation of depth ≤ 2.
#[derive(Debug, Clone)]
enum Sym {
    Leaf(Leaf),
    Un(UnOp, Leaf),
    Fn1(String, Leaf),
    Bin(BinOp, Leaf, Leaf),
}

#[allow(clippy::too_many_arguments)]
fn try_vectorize_loop(
    func: &mut MirFunction,
    induction: VarId,
    start: Operand,
    step: Operand,
    stop: Operand,
    body: &[Stmt],
    loop_span: Span,
    live_after: &HashSet<VarId>,
    report: &mut LoopReport,
) -> Option<Vec<Stmt>> {
    // Unit-stride counted loops only, forward (`1:n`) or reverse
    // (`n:-1:1`). Other strides are counted as rejections so the missed
    // vectorization is visible in the report instead of silent.
    let step_const = step.as_const();
    let dir = if step_const == Some(1.0) {
        1.0
    } else if step_const == Some(-1.0) {
        -1.0
    } else {
        return give_up(report, loop_span, "non-unit loop stride");
    };
    // The body must be straight-line Defs plus at most one Store.
    let mut stores = 0usize;
    for s in body {
        match s {
            Stmt::Def { .. } => {}
            Stmt::Store { .. } => stores += 1,
            _ => return None,
        }
    }
    if stores > 1 {
        report.rejected += 1;
        report.decisions.push(LoopDecision {
            span: loop_span,
            accepted: false,
            detail: "more than one store in loop body",
        });
        return None;
    }

    let env = LoopEnv::new(induction, body);
    let mut defs: Vec<(VarId, &Rvalue)> = Vec::new();
    let mut syms: Vec<(VarId, Sym)> = Vec::new();
    let mut acc_update: Option<(VarId, VarId, Span)> = None; // (acc, value temp, span)
    let mut store: Option<(VarId, &[Index], Operand, Span)> = None;
    // Body-local clones of invariant arrays (e.g. inlined parameter
    // bindings): loads through them resolve to the original array.
    let mut array_alias: HashMap<VarId, VarId> = HashMap::new();
    let resolve = |aliases: &HashMap<VarId, VarId>, mut v: VarId| -> VarId {
        let mut hops = 0;
        while let Some(&next) = aliases.get(&v) {
            v = next;
            hops += 1;
            if hops > 16 {
                break;
            }
        }
        v
    };

    let lookup_sym = |syms: &[(VarId, Sym)], v: VarId| -> Option<Sym> {
        syms.iter()
            .rev()
            .find(|(d, _)| *d == v)
            .map(|(_, s)| s.clone())
    };
    let as_leaf = |env: &LoopEnv, syms: &[(VarId, Sym)], op: Operand| -> Option<Leaf> {
        if env.is_invariant(op) {
            return Some(Leaf::Inv(op));
        }
        if let Operand::Var(v) = op {
            if let Some(Sym::Leaf(l)) = lookup_sym(syms, v) {
                return Some(l);
            }
        }
        None
    };

    for s in body {
        match s {
            Stmt::Def { dst, rv, span } => {
                // Accumulator update: acc = acc ± t / acc = t + acc.
                if let Rvalue::Binary {
                    op: BinOp::Add,
                    a,
                    b,
                } = rv
                {
                    let is_acc = |o: &Operand| o.as_var() == Some(*dst);
                    if !env.defined_before(*dst) {
                        // acc must exist before the loop
                    } else if is_acc(a) && !is_acc(b) {
                        if let Some(t) = b.as_var() {
                            if acc_update.is_none() {
                                acc_update = Some((*dst, t, *span));
                                defs.push((*dst, rv));
                                continue;
                            }
                        }
                        return give_up(report, loop_span, "unsupported accumulator update");
                    } else if is_acc(b) && !is_acc(a) {
                        if let Some(t) = a.as_var() {
                            if acc_update.is_none() {
                                acc_update = Some((*dst, t, *span));
                                defs.push((*dst, rv));
                                continue;
                            }
                        }
                        return give_up(report, loop_span, "unsupported accumulator update");
                    }
                }
                // Symbolic interpretation.
                let sym = match rv {
                    Rvalue::Use(Operand::Var(src))
                        if !f_var_scalar(func, *dst)
                            && env.is_invariant(Operand::Var(resolve(&array_alias, *src))) =>
                    {
                        // Clone of an invariant array: record the alias and
                        // treat the def as consumed.
                        array_alias.insert(*dst, resolve(&array_alias, *src));
                        defs.push((*dst, rv));
                        continue;
                    }
                    Rvalue::Use(op) => as_leaf(&env, &syms, *op).map(Sym::Leaf),
                    Rvalue::Index { array, indices } => match &indices[..] {
                        // Loads from the stored array are validated against
                        // the store's subscript (same-affine updates are
                        // legal; anything else is a loop-carried dependence
                        // caught below).
                        [Index::Scalar(op)] => {
                            let base = resolve(&array_alias, *array);
                            env.affine_of(*op, &defs).map(|affine| {
                                Sym::Leaf(Leaf::Load {
                                    array: base,
                                    affine,
                                })
                            })
                        }
                        _ => None,
                    },
                    Rvalue::Binary { op, a, b } => {
                        let la = as_leaf(&env, &syms, *a);
                        let lb = as_leaf(&env, &syms, *b);
                        match (la, lb) {
                            (Some(x), Some(y)) if elementwise_ok(*op) => Some(Sym::Bin(*op, x, y)),
                            _ => None,
                        }
                    }
                    Rvalue::Unary { op: UnOp::Neg, a } => {
                        as_leaf(&env, &syms, *a).map(|l| Sym::Un(UnOp::Neg, l))
                    }
                    Rvalue::Builtin { name, args }
                        if args.len() == 1 && LANE_BUILTINS.contains(&name.as_str()) =>
                    {
                        as_leaf(&env, &syms, args[0]).map(|l| Sym::Fn1(name.clone(), l))
                    }
                    _ => None,
                };
                match sym {
                    Some(sym) => {
                        syms.push((*dst, sym));
                        defs.push((*dst, rv));
                    }
                    None => {
                        // Still allow pure index arithmetic (affine) defs.
                        if env
                            .affine_of(Operand::Var(*dst), &with(&defs, *dst, rv))
                            .is_some()
                        {
                            defs.push((*dst, rv));
                        } else {
                            return give_up(report, loop_span, "unvectorizable statement in body");
                        }
                    }
                }
            }
            Stmt::Store {
                array,
                indices,
                value,
                span,
            } => {
                store = Some((*array, indices.as_slice(), *value, *span));
            }
            _ => unreachable!("filtered above"),
        }
    }

    // No Def result may be observed after the loop (we delete them all).
    for (d, _) in &defs {
        if live_after.contains(d) && acc_update.map(|(a, _, _)| a) != Some(*d) {
            return give_up(report, loop_span, "body temporary is live after the loop");
        }
    }

    let span = loop_span;
    let mut prelude: Vec<Stmt> = Vec::new();
    // A reverse loop has its bounds swapped: `n:-1:1` runs `n - 1 + 1`
    // iterations.
    let len = if dir < 0.0 {
        emit_len(func, &mut prelude, stop, start, span)
    } else {
        emit_len(func, &mut prelude, start, stop, span)
    };

    match (store, acc_update) {
        (Some((dst_arr, indices, value, sspan)), None) => {
            let [Index::Scalar(idx_op)] = indices else {
                return give_up(report, loop_span, "non-scalar store subscript");
            };
            let dst_affine = env.affine_of(*idx_op, &defs)?;
            if dst_affine.is_invariant() {
                return give_up(report, loop_span, "loop-invariant store subscript");
            }
            // The stored value's symbolic form.
            let sym = match value {
                Operand::Var(v) => lookup_sym(&syms, v).or_else(|| {
                    env.is_invariant(value)
                        .then_some(Sym::Leaf(Leaf::Inv(value)))
                })?,
                _ => Sym::Leaf(Leaf::Inv(value)),
            };
            // Dependence check: loads from the destination array must use
            // the identical affine subscript.
            for (_, s) in &syms {
                for l in sym_leaves(s) {
                    if let Leaf::Load { array, affine } = l {
                        if *array == dst_arr && *affine != dst_affine {
                            return give_up(report, loop_span, "loop-carried dependence");
                        }
                    }
                }
            }
            let complex = is_complex(func, dst_arr)
                || sym_leaves_owned(&sym).iter().any(|l| leaf_complex(func, l));
            let dst_ref = slice_from(func, &mut prelude, dst_arr, &dst_affine, start, dir, span);
            let (kind, a, b) = match sym {
                Sym::Leaf(l) => (
                    VecKind::Copy,
                    leaf_ref(func, &mut prelude, &env, &l, start, dir, span)?,
                    None,
                ),
                Sym::Un(op, l) => (
                    VecKind::MapUnary(op),
                    leaf_ref(func, &mut prelude, &env, &l, start, dir, span)?,
                    None,
                ),
                Sym::Fn1(name, l) => (
                    VecKind::MapBuiltin(name),
                    leaf_ref(func, &mut prelude, &env, &l, start, dir, span)?,
                    None,
                ),
                Sym::Bin(op, la, lb) => (
                    VecKind::Map(op),
                    leaf_ref(func, &mut prelude, &env, &la, start, dir, span)?,
                    Some(leaf_ref(func, &mut prelude, &env, &lb, start, dir, span)?),
                ),
            };
            report.maps += 1;
            report.decisions.push(LoopDecision {
                span: loop_span,
                accepted: true,
                detail: "map",
            });
            prelude.push(Stmt::VectorOp(VectorOp {
                kind,
                dst: dst_ref,
                a,
                b,
                len,
                complex,
                span: sspan,
            }));
            Some(prelude)
        }
        (None, Some((acc, tval, acc_span))) => {
            let sym = lookup_sym(&syms, tval)?;
            let complex = is_complex_var(func, acc)
                || sym_leaves_owned(&sym).iter().any(|l| leaf_complex(func, l));
            match sym {
                Sym::Bin(BinOp::ElemMul | BinOp::MatMul, la, lb) => {
                    let a = leaf_ref(func, &mut prelude, &env, &la, start, dir, span)?;
                    let b = leaf_ref(func, &mut prelude, &env, &lb, start, dir, span)?;
                    report.macs += 1;
                    report.decisions.push(LoopDecision {
                        span: loop_span,
                        accepted: true,
                        detail: "mac",
                    });
                    prelude.push(Stmt::VectorOp(VectorOp {
                        kind: VecKind::Mac,
                        dst: VecRef::Splat(Operand::Var(acc)),
                        a,
                        b: Some(b),
                        len,
                        complex,
                        span: acc_span,
                    }));
                    Some(prelude)
                }
                Sym::Leaf(l) => {
                    let a = leaf_ref(func, &mut prelude, &env, &l, start, dir, span)?;
                    report.reductions += 1;
                    report.decisions.push(LoopDecision {
                        span: loop_span,
                        accepted: true,
                        detail: "reduction",
                    });
                    prelude.push(Stmt::VectorOp(VectorOp {
                        kind: VecKind::Reduce(ReduceKind::Sum),
                        dst: VecRef::Splat(Operand::Var(acc)),
                        a,
                        b: None,
                        len,
                        complex,
                        span: acc_span,
                    }));
                    Some(prelude)
                }
                _ => give_up(report, loop_span, "unsupported reduction form"),
            }
        }
        _ => give_up(report, loop_span, "no vectorizable store or accumulator"),
    }
}

/// Whether a register holds a scalar value.
fn f_var_scalar(func: &MirFunction, v: VarId) -> bool {
    func.var_ty(v).shape.is_scalar()
}

fn give_up<T>(report: &mut LoopReport, span: Span, reason: &'static str) -> Option<T> {
    report.rejected += 1;
    report.decisions.push(LoopDecision {
        span,
        accepted: false,
        detail: reason,
    });
    None
}

fn with<'a>(defs: &[(VarId, &'a Rvalue)], d: VarId, rv: &'a Rvalue) -> Vec<(VarId, &'a Rvalue)> {
    let mut v = defs.to_vec();
    v.push((d, rv));
    v
}

fn elementwise_ok(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Sub | BinOp::ElemMul | BinOp::ElemDiv | BinOp::MatMul | BinOp::MatDiv
    )
}

fn sym_leaves(s: &Sym) -> Vec<&Leaf> {
    match s {
        Sym::Leaf(l) | Sym::Un(_, l) | Sym::Fn1(_, l) => vec![l],
        Sym::Bin(_, a, b) => vec![a, b],
    }
}

fn sym_leaves_owned(s: &Sym) -> Vec<Leaf> {
    sym_leaves(s).into_iter().cloned().collect()
}

fn is_complex(func: &MirFunction, v: VarId) -> bool {
    func.var_ty(v).class == Class::Complex
}

fn is_complex_var(func: &MirFunction, v: VarId) -> bool {
    is_complex(func, v)
}

fn leaf_complex(func: &MirFunction, l: &Leaf) -> bool {
    match l {
        Leaf::Load { array, .. } => is_complex(func, *array),
        Leaf::Inv(Operand::Var(v)) => is_complex(func, *v),
        Leaf::Inv(Operand::ConstC(..)) => true,
        Leaf::Inv(_) => false,
    }
}

fn slice_from(
    func: &mut MirFunction,
    prelude: &mut Vec<Stmt>,
    array: VarId,
    affine: &Affine,
    loop_start: Operand,
    dir: f64,
    span: Span,
) -> VecRef {
    let start = emit_affine(func, prelude, affine, loop_start, span);
    VecRef::Slice {
        array,
        start,
        step: Operand::Const(affine.i_coeff * dir),
    }
}

#[allow(clippy::too_many_arguments)]
fn leaf_ref(
    func: &mut MirFunction,
    prelude: &mut Vec<Stmt>,
    env: &LoopEnv,
    leaf: &Leaf,
    loop_start: Operand,
    dir: f64,
    span: Span,
) -> Option<VecRef> {
    match leaf {
        Leaf::Inv(op) => Some(VecRef::Splat(*op)),
        Leaf::Load { array, affine } => {
            if affine.is_invariant() {
                // Same element every iteration: load once, broadcast.
                let idx = emit_affine(func, prelude, affine, loop_start, span);
                let t = func.add_temp(Ty::new(
                    func.var_ty(*array).class,
                    matic_sema::Shape::scalar(),
                ));
                prelude.push(Stmt::Def {
                    dst: t,
                    rv: Rvalue::Index {
                        array: *array,
                        indices: vec![Index::Scalar(idx)],
                    },
                    span,
                });
                Some(VecRef::Splat(Operand::Var(t)))
            } else {
                let _ = env;
                Some(slice_from(
                    func, prelude, *array, affine, loop_start, dir, span,
                ))
            }
        }
    }
}

/// Emits `len = stop - start + 1` with constant folding.
fn emit_len(
    func: &mut MirFunction,
    prelude: &mut Vec<Stmt>,
    start: Operand,
    stop: Operand,
    span: Span,
) -> Operand {
    match (start.as_const(), stop.as_const()) {
        (Some(s), Some(e)) => Operand::Const((e - s + 1.0).max(0.0)),
        _ => {
            let t1 = func.add_temp(Ty::double_scalar());
            prelude.push(Stmt::Def {
                dst: t1,
                rv: Rvalue::Binary {
                    op: BinOp::Sub,
                    a: stop,
                    b: start,
                },
                span,
            });
            let t2 = func.add_temp(Ty::double_scalar());
            prelude.push(Stmt::Def {
                dst: t2,
                rv: Rvalue::Binary {
                    op: BinOp::Add,
                    a: Operand::Var(t1),
                    b: Operand::Const(1.0),
                },
                span,
            });
            Operand::Var(t2)
        }
    }
}

impl LoopEnv {
    /// Whether `v` exists before the loop (parameter or defined outside).
    fn defined_before(&self, v: VarId) -> bool {
        // An accumulator defined only inside the body would read garbage on
        // iteration one; sema would have flagged it. Here "defined before"
        // means: it is not purely body-local, which for recognition
        // purposes reduces to "it is also *read* by its own update", a
        // property the caller established. Treat any non-induction var as
        // acceptable.
        v != self.induction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_frontend::parse;
    use matic_sema::{analyze, Dim, Shape};

    fn vectorized(src: &str, entry: &str, args: &[Ty]) -> (MirFunction, LoopReport) {
        let (p, diags) = parse(src);
        assert!(!diags.has_errors());
        let analysis = analyze(&p, entry, args);
        assert!(!analysis.diags.has_errors());
        let (mut mir, diags) = matic_mir::lower_program(&p, &analysis);
        assert!(!diags.has_errors());
        matic_mir::optimize_program(&mut mir);
        let mut f = mir.function(entry).unwrap().clone();
        let report = vectorize_loops(&mut f);
        (f, report)
    }

    fn vec_ty(n: usize) -> Ty {
        Ty::new(Class::Double, Shape::row(Dim::Known(n)))
    }

    fn count_vecops(f: &MirFunction) -> usize {
        let mut n = 0;
        walk_stmts(&f.body, &mut |s| {
            if matches!(s, Stmt::VectorOp(_)) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn recognizes_elementwise_map_loop() {
        let (f, report) = vectorized(
            "function y = f(a, b)\ny = zeros(1, 64);\nfor i = 1:64\n y(i) = a(i) + b(i);\nend\nend",
            "f",
            &[vec_ty(64), vec_ty(64)],
        );
        assert_eq!(report.maps, 1);
        assert_eq!(count_vecops(&f), 1);
        // The For is gone.
        let mut fors = 0;
        walk_stmts(&f.body, &mut |s| {
            if matches!(s, Stmt::For { .. }) {
                fors += 1;
            }
        });
        assert_eq!(fors, 0);
    }

    #[test]
    fn recognizes_mac_loop() {
        let (f, report) = vectorized(
            "function s = f(a, b, n)\ns = 0;\nfor i = 1:n\n s = s + a(i) * b(i);\nend\nend",
            "f",
            &[vec_ty(64), vec_ty(64), Ty::double_scalar()],
        );
        assert_eq!(report.macs, 1);
        let mut found = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                assert_eq!(v.kind, VecKind::Mac);
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn recognizes_reduction_loop() {
        let (_, report) = vectorized(
            "function s = f(a, n)\ns = 0;\nfor i = 1:n\n s = s + a(i);\nend\nend",
            "f",
            &[vec_ty(64), Ty::double_scalar()],
        );
        assert_eq!(report.reductions, 1);
    }

    #[test]
    fn recognizes_reversed_access() {
        // Correlation-style kernel: b(n-i+1).
        let (f, report) = vectorized(
            "function s = f(a, b, n)\ns = 0;\nfor i = 1:n\n s = s + a(i) * b(n - i + 1);\nend\nend",
            "f",
            &[vec_ty(64), vec_ty(64), Ty::double_scalar()],
        );
        assert_eq!(report.macs, 1);
        let mut neg_step = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                if let Some(VecRef::Slice { step, .. }) = &v.b {
                    if step.as_const() == Some(-1.0) {
                        neg_step = true;
                    }
                }
            }
        });
        assert!(neg_step, "reversed access should give a -1 stride");
    }

    #[test]
    fn rejects_loop_carried_dependence() {
        // IIR-style recurrence: y(i) depends on y(i-1).
        let (f, report) = vectorized(
            "function y = f(x, n)\ny = zeros(1, 64);\ny(1) = x(1);\nfor i = 2:n\n y(i) = x(i) + y(i - 1);\nend\nend",
            "f",
            &[vec_ty(64), Ty::double_scalar()],
        );
        assert_eq!(report.maps, 0);
        assert!(report.rejected >= 1);
        assert_eq!(count_vecops(&f), 0);
    }

    #[test]
    fn allows_same_index_update() {
        let (_, report) = vectorized(
            "function y = f(y, a, n)\nfor i = 1:n\n y(i) = y(i) + a(i);\nend\nend",
            "f",
            &[vec_ty(64), vec_ty(64), Ty::double_scalar()],
        );
        assert_eq!(report.maps, 1);
    }

    #[test]
    fn rejects_non_unit_loop_step() {
        let (_, report) = vectorized(
            "function y = f(a, n)\ny = zeros(1, 64);\nfor i = 1:2:n\n y(i) = a(i);\nend\nend",
            "f",
            &[vec_ty(64), Ty::double_scalar()],
        );
        assert_eq!(report.maps, 0);
        assert_eq!(
            report.rejected, 1,
            "non-unit stride must be a visible rejection"
        );
    }

    #[test]
    fn recognizes_reverse_iteration_loop() {
        // `for i = n:-1:1` — copy-scale kernel written backwards.
        let (f, report) = vectorized(
            "function y = f(a, k, n)\ny = zeros(1, 64);\nfor i = n:-1:1\n y(i) = k * a(i);\nend\nend",
            "f",
            &[vec_ty(64), Ty::double_scalar(), Ty::double_scalar()],
        );
        assert_eq!(report.maps, 1);
        let mut neg_dst = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                if let VecRef::Slice { step, .. } = &v.dst {
                    if step.as_const() == Some(-1.0) {
                        neg_dst = true;
                    }
                }
            }
        });
        assert!(neg_dst, "reverse loop should write a -1-stride slice");
    }

    #[test]
    fn reverse_mac_loop_vectorizes() {
        let (_, report) = vectorized(
            "function s = f(a, b, n)\ns = 0;\nfor i = n:-1:1\n s = s + a(i) * b(i);\nend\nend",
            "f",
            &[vec_ty(64), vec_ty(64), Ty::double_scalar()],
        );
        assert_eq!(report.macs, 1);
    }

    #[test]
    fn scalar_times_vector_map() {
        let (f, report) = vectorized(
            "function y = f(a, k, n)\ny = zeros(1, 64);\nfor i = 1:n\n y(i) = k * a(i);\nend\nend",
            "f",
            &[vec_ty(64), Ty::double_scalar(), Ty::double_scalar()],
        );
        assert_eq!(report.maps, 1);
        let mut saw_splat = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                if matches!(v.a, VecRef::Splat(_)) || matches!(v.b, Some(VecRef::Splat(_))) {
                    saw_splat = true;
                }
            }
        });
        assert!(saw_splat);
    }

    #[test]
    fn complex_flag_propagates() {
        let cx = Ty::new(Class::Complex, Shape::row(Dim::Known(32)));
        let (f, report) = vectorized(
            "function y = f(a, b, n)\ny = zeros(1, 32);\nfor i = 1:n\n y(i) = a(i) * b(i);\nend\nend",
            "f",
            &[cx, cx, Ty::double_scalar()],
        );
        assert_eq!(report.maps, 1);
        let mut complex = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                complex |= v.complex;
            }
        });
        assert!(complex, "complex lanes should be flagged");
    }

    #[test]
    fn rejects_loop_with_inner_control_flow() {
        let (_, report) = vectorized(
            "function y = f(a, n)\ny = zeros(1, 64);\nfor i = 1:n\n if a(i) > 0\n  y(i) = a(i);\n end\nend\nend",
            "f",
            &[vec_ty(64), Ty::double_scalar()],
        );
        assert_eq!(report.maps, 0);
    }

    #[test]
    fn offset_slices_computed() {
        // y(i) = a(i + 2): slice of a starts at 3 for a 1-based loop.
        let (f, report) = vectorized(
            "function y = f(a)\ny = zeros(1, 8);\nfor i = 1:8\n y(i) = a(i + 2);\nend\nend",
            "f",
            &[vec_ty(16)],
        );
        assert_eq!(report.maps, 1);
        let mut start_ok = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                if let VecRef::Slice { start, .. } = &v.a {
                    start_ok = start.as_const() == Some(3.0);
                }
            }
        });
        assert!(start_ok, "slice start should fold to 3");
    }

    #[test]
    fn body_temp_live_after_loop_blocks_vectorization() {
        // `t` holds the last element after the loop and is returned.
        let (_, report) = vectorized(
            "function t = f(a, y, n)\nt = 0;\nfor i = 1:n\n t = a(i);\n y(i) = t;\nend\nend",
            "f",
            &[vec_ty(8), vec_ty(8), Ty::double_scalar()],
        );
        assert_eq!(report.maps, 0, "t is observed after the loop");
    }
}
