//! Affine index analysis for loop idiom recognition.
//!
//! Inside a candidate loop `for i = s : 1 : e`, an array subscript is
//! *affine in `i`* when it has the form `c·i + Σ inv_k` where `c` is a
//! compile-time constant and every `inv_k` is loop-invariant. Affine
//! subscripts translate directly to the strided slices that SIMD custom
//! instructions consume.

use matic_frontend::ast::BinOp;
use matic_frontend::span::Span;
use matic_mir::{MirFunction, Operand, Rvalue, Stmt, VarId};
use matic_sema::Ty;
use std::collections::HashSet;

/// `coeff · i + const_part + Σ var_terms` (each var term signed).
#[derive(Debug, Clone, PartialEq)]
pub struct Affine {
    /// Coefficient of the induction variable (0 = loop-invariant index).
    pub i_coeff: f64,
    /// Constant addend.
    pub const_part: f64,
    /// Loop-invariant variable addends with their signs.
    pub var_terms: Vec<(VarId, f64)>,
}

impl Affine {
    /// A pure constant.
    pub fn constant(c: f64) -> Affine {
        Affine {
            i_coeff: 0.0,
            const_part: c,
            var_terms: Vec::new(),
        }
    }

    /// Whether the index does not move with the loop.
    pub fn is_invariant(&self) -> bool {
        self.i_coeff == 0.0
    }

    fn add(mut self, other: Affine, sign: f64) -> Affine {
        self.i_coeff += sign * other.i_coeff;
        self.const_part += sign * other.const_part;
        for (v, s) in other.var_terms {
            self.var_terms.push((v, sign * s));
        }
        self
    }

    fn scale(mut self, k: f64) -> Affine {
        self.i_coeff *= k;
        self.const_part *= k;
        for t in &mut self.var_terms {
            t.1 *= k;
        }
        self
    }
}

/// Tracks which registers are loop-invariant for one candidate loop.
pub struct LoopEnv {
    /// The induction variable.
    pub induction: VarId,
    /// Registers (re)defined inside the loop body (not invariant).
    pub defined_in_body: HashSet<VarId>,
}

impl LoopEnv {
    /// Builds the environment for `body` of a loop over `induction`.
    pub fn new(induction: VarId, body: &[Stmt]) -> Self {
        let mut defined_in_body = HashSet::new();
        matic_mir::walk_stmts(body, &mut |s| match s {
            Stmt::Def { dst, .. } => {
                defined_in_body.insert(*dst);
            }
            Stmt::Store { array, .. } => {
                defined_in_body.insert(*array);
            }
            Stmt::CallMulti { dsts, .. } => {
                defined_in_body.extend(dsts.iter().flatten().copied());
            }
            Stmt::For { var, .. } => {
                defined_in_body.insert(*var);
            }
            _ => {}
        });
        LoopEnv {
            induction,
            defined_in_body,
        }
    }

    /// Whether an operand's value is fixed across loop iterations.
    pub fn is_invariant(&self, op: Operand) -> bool {
        match op {
            Operand::Const(_) | Operand::ConstC(..) => true,
            Operand::Var(v) => v != self.induction && !self.defined_in_body.contains(&v),
        }
    }

    /// Resolves `op` to an affine form over the induction variable.
    ///
    /// `local_defs` supplies symbolic bindings for temporaries defined
    /// earlier in the body (index arithmetic like `n - k + 1` lowers to a
    /// chain of scalar `Def`s).
    pub fn affine_of(&self, op: Operand, local_defs: &[(VarId, &Rvalue)]) -> Option<Affine> {
        match op {
            Operand::Const(c) => Some(Affine::constant(c)),
            Operand::ConstC(..) => None,
            Operand::Var(v) if v == self.induction => Some(Affine {
                i_coeff: 1.0,
                const_part: 0.0,
                var_terms: Vec::new(),
            }),
            Operand::Var(v) => {
                if !self.defined_in_body.contains(&v) {
                    return Some(Affine {
                        i_coeff: 0.0,
                        const_part: 0.0,
                        var_terms: vec![(v, 1.0)],
                    });
                }
                // A temporary defined in the body: follow its definition.
                let rv = local_defs
                    .iter()
                    .rev()
                    .find(|(d, _)| *d == v)
                    .map(|(_, rv)| *rv)?;
                match rv {
                    Rvalue::Use(inner) => self.affine_of(*inner, local_defs),
                    Rvalue::Binary { op, a, b } => {
                        let fa = self.affine_of(*a, local_defs)?;
                        let fb = self.affine_of(*b, local_defs)?;
                        match op {
                            BinOp::Add => Some(fa.add(fb, 1.0)),
                            BinOp::Sub => Some(fa.add(fb, -1.0)),
                            BinOp::ElemMul | BinOp::MatMul => {
                                // Only constant scaling keeps affinity.
                                if fb.i_coeff == 0.0 && fb.var_terms.is_empty() {
                                    Some(fa.scale(fb.const_part))
                                } else if fa.i_coeff == 0.0 && fa.var_terms.is_empty() {
                                    Some(fb.scale(fa.const_part))
                                } else {
                                    None
                                }
                            }
                            _ => None,
                        }
                    }
                    Rvalue::Unary {
                        op: matic_frontend::ast::UnOp::Neg,
                        a,
                    } => Some(self.affine_of(*a, local_defs)?.scale(-1.0)),
                    _ => None,
                }
            }
        }
    }
}

/// Emits statements computing the value of an affine form at `i = at`,
/// returning the operand holding the result. Constant parts fold away.
pub fn emit_affine(
    func: &mut MirFunction,
    out: &mut Vec<Stmt>,
    affine: &Affine,
    at: Operand,
    span: Span,
) -> Operand {
    // value = i_coeff * at + const_part + Σ var_terms
    let mut acc: Option<Operand> = None;
    let mut const_acc = affine.const_part;

    let push_term = |func: &mut MirFunction,
                     out: &mut Vec<Stmt>,
                     acc: &mut Option<Operand>,
                     term: Operand,
                     sign: f64| {
        match (*acc, term, sign) {
            (None, t, 1.0) => *acc = Some(t),
            (None, t, _) => {
                let tmp = func.add_temp(Ty::double_scalar());
                out.push(Stmt::Def {
                    dst: tmp,
                    rv: Rvalue::Unary {
                        op: matic_frontend::ast::UnOp::Neg,
                        a: t,
                    },
                    span,
                });
                *acc = Some(Operand::Var(tmp));
            }
            (Some(prev), t, s) => {
                let tmp = func.add_temp(Ty::double_scalar());
                out.push(Stmt::Def {
                    dst: tmp,
                    rv: Rvalue::Binary {
                        op: if s >= 0.0 { BinOp::Add } else { BinOp::Sub },
                        a: prev,
                        b: t,
                    },
                    span,
                });
                *acc = Some(Operand::Var(tmp));
            }
        }
    };

    if affine.i_coeff != 0.0 {
        match at.as_const() {
            Some(c) => const_acc += affine.i_coeff * c,
            None => {
                let scaled = if affine.i_coeff == 1.0 {
                    at
                } else {
                    let tmp = func.add_temp(Ty::double_scalar());
                    out.push(Stmt::Def {
                        dst: tmp,
                        rv: Rvalue::Binary {
                            op: BinOp::ElemMul,
                            a: Operand::Const(affine.i_coeff),
                            b: at,
                        },
                        span,
                    });
                    Operand::Var(tmp)
                };
                push_term(func, out, &mut acc, scaled, 1.0);
            }
        }
    }
    for &(v, s) in &affine.var_terms {
        push_term(func, out, &mut acc, Operand::Var(v), s);
    }
    match acc {
        None => Operand::Const(const_acc),
        Some(a) if const_acc == 0.0 => a,
        Some(a) => {
            let tmp = func.add_temp(Ty::double_scalar());
            out.push(Stmt::Def {
                dst: tmp,
                rv: Rvalue::Binary {
                    op: if const_acc >= 0.0 {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    },
                    a,
                    b: Operand::Const(const_acc.abs()),
                },
                span,
            });
            Operand::Var(tmp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_sema::Ty;

    fn setup() -> (MirFunction, VarId, VarId) {
        let mut f = MirFunction::new("t");
        let i = f.add_var("i", Ty::double_scalar());
        let n = f.add_var("n", Ty::double_scalar());
        (f, i, n)
    }

    #[test]
    fn direct_induction() {
        let (_f, i, _) = setup();
        let env = LoopEnv::new(i, &[]);
        let a = env.affine_of(Operand::Var(i), &[]).unwrap();
        assert_eq!(a.i_coeff, 1.0);
        assert_eq!(a.const_part, 0.0);
    }

    #[test]
    fn invariant_var() {
        let (_f, i, n) = setup();
        let env = LoopEnv::new(i, &[]);
        let a = env.affine_of(Operand::Var(n), &[]).unwrap();
        assert!(a.is_invariant());
        assert_eq!(a.var_terms, vec![(n, 1.0)]);
    }

    #[test]
    fn i_plus_const_through_temp() {
        let (mut f, i, _) = setup();
        let t = f.add_temp(Ty::double_scalar());
        let rv = Rvalue::Binary {
            op: BinOp::Add,
            a: Operand::Var(i),
            b: Operand::Const(3.0),
        };
        let body = [Stmt::Def {
            dst: t,
            rv: rv.clone(),
            span: Span::dummy(),
        }];
        let env = LoopEnv::new(i, &body);
        let defs = vec![(t, &rv)];
        let a = env.affine_of(Operand::Var(t), &defs).unwrap();
        assert_eq!(a.i_coeff, 1.0);
        assert_eq!(a.const_part, 3.0);
    }

    #[test]
    fn reversed_index_n_minus_i() {
        let (mut f, i, n) = setup();
        let t = f.add_temp(Ty::double_scalar());
        let rv = Rvalue::Binary {
            op: BinOp::Sub,
            a: Operand::Var(n),
            b: Operand::Var(i),
        };
        let body = [Stmt::Def {
            dst: t,
            rv: rv.clone(),
            span: Span::dummy(),
        }];
        let env = LoopEnv::new(i, &body);
        let defs = vec![(t, &rv)];
        let a = env.affine_of(Operand::Var(t), &defs).unwrap();
        assert_eq!(a.i_coeff, -1.0);
        assert_eq!(a.var_terms, vec![(n, 1.0)]);
    }

    #[test]
    fn scaled_induction() {
        let (mut f, i, _) = setup();
        let t = f.add_temp(Ty::double_scalar());
        let rv = Rvalue::Binary {
            op: BinOp::ElemMul,
            a: Operand::Const(2.0),
            b: Operand::Var(i),
        };
        let body = [Stmt::Def {
            dst: t,
            rv: rv.clone(),
            span: Span::dummy(),
        }];
        let env = LoopEnv::new(i, &body);
        let defs = vec![(t, &rv)];
        let a = env.affine_of(Operand::Var(t), &defs).unwrap();
        assert_eq!(a.i_coeff, 2.0);
    }

    #[test]
    fn body_defined_var_is_not_invariant() {
        let (mut f, i, _) = setup();
        let t = f.add_temp(Ty::double_scalar());
        let body = [Stmt::Def {
            dst: t,
            rv: Rvalue::Use(Operand::Const(0.0)),
            span: Span::dummy(),
        }];
        let env = LoopEnv::new(i, &body);
        assert!(!env.is_invariant(Operand::Var(t)));
        assert!(env.is_invariant(Operand::Const(4.0)));
        assert!(!env.is_invariant(Operand::Var(i)));
    }

    #[test]
    fn emit_affine_folds_constants() {
        let (mut f, i, _) = setup();
        let env = LoopEnv::new(i, &[]);
        let a = env.affine_of(Operand::Var(i), &[]).unwrap();
        let mut out = Vec::new();
        // i at i=start(=1) → 1.
        let v = emit_affine(&mut f, &mut out, &a, Operand::Const(1.0), Span::dummy());
        assert_eq!(v, Operand::Const(1.0));
        assert!(out.is_empty());
    }

    #[test]
    fn emit_affine_with_var_terms() {
        let (mut f, i, n) = setup();
        let affine = Affine {
            i_coeff: -1.0,
            const_part: 1.0,
            var_terms: vec![(n, 1.0)],
        };
        let mut out = Vec::new();
        // n - i + 1 at i = 1 → n - 1 + 1 → n: folds to the bare variable.
        let v = emit_affine(
            &mut f,
            &mut out,
            &affine,
            Operand::Const(1.0),
            Span::dummy(),
        );
        assert_eq!(v, Operand::Var(n));
        assert!(out.is_empty(), "no statements needed: {out:?}");
        let _ = i;
    }
}
