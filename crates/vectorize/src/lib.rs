//! # matic-vectorize
//!
//! The DATE'16 paper's core transformation: recognizing data-parallel and
//! complex-arithmetic idioms in MATLAB kernels and turning them into
//! [`matic_mir::VectorOp`] statements that the C and ASIP backends map to
//! the target's custom instructions.
//!
//! Three cooperating passes:
//!
//! 1. [`vectorize_loops`] — explicit scalar `for` loops (maps, MACs,
//!    reductions, reversed/strided accesses) with dependence checking;
//! 2. [`vectorize_arrays`] — MATLAB's vectorized style (`y = a .* b`,
//!    `sum(v)`, slices) strip-mined directly;
//! 3. [`fuse_mac`] — `sum(a .* b)` fused into one multiply-accumulate.
//!
//! The vectorizer is **target independent**: it emits abstract vector
//! operations whether or not the selected ISA has SIMD. Backends consult
//! the ISA description and fall back to scalar expansion for operations
//! the target lacks — that split is exactly what makes the compiler
//! retargetable.
//!
//! # Examples
//!
//! ```
//! use matic_sema::{analyze, Ty, Class, Shape, Dim};
//! use matic_vectorize::vectorize_function;
//!
//! let (program, diags) = matic_frontend::parse(
//!     "function s = dotp(a, b, n)\ns = 0;\nfor i = 1:n\n    s = s + a(i) * b(i);\nend\nend",
//! );
//! assert!(!diags.has_errors());
//! let v = Ty::new(Class::Double, Shape::row(Dim::Known(64)));
//! let analysis = analyze(&program, "dotp", &[v, v, Ty::double_scalar()]);
//! let (mut mir, _) = matic_mir::lower_program(&program, &analysis);
//! matic_mir::optimize_program(&mut mir);
//! let mut f = mir.function("dotp").unwrap().clone();
//! let report = vectorize_function(&mut f);
//! assert_eq!(report.loops.macs, 1);
//! ```

pub mod affine;
pub mod arrays;
pub mod forward;
pub mod fuse;
pub mod loops;

pub use affine::{Affine, LoopEnv};
pub use arrays::{vectorize_arrays, ArrayReport};
pub use forward::{forward_slices, ForwardReport};
pub use fuse::{fuse_mac, FuseReport};
pub use loops::{vectorize_loops, LoopDecision, LoopReport, LANE_BUILTINS};

use matic_mir::{MirFunction, MirProgram};

/// Combined report from all vectorization passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorizeReport {
    /// Explicit-loop recognition results.
    pub loops: LoopReport,
    /// Array-operation strip-mining results.
    pub arrays: ArrayReport,
    /// Fusion results.
    pub fuse: FuseReport,
    /// Slice-forwarding results.
    pub forward: ForwardReport,
}

impl VectorizeReport {
    /// Total vector operations produced.
    pub fn total_ops(&self) -> usize {
        self.loops.maps
            + self.loops.macs
            + self.loops.reductions
            + self.arrays.maps
            + self.arrays.reductions
            + self.arrays.copies
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &VectorizeReport) {
        self.loops.maps += other.loops.maps;
        self.loops.macs += other.loops.macs;
        self.loops.reductions += other.loops.reductions;
        self.loops.rejected += other.loops.rejected;
        self.loops
            .decisions
            .extend(other.loops.decisions.iter().copied());
        self.arrays.maps += other.arrays.maps;
        self.arrays.reductions += other.arrays.reductions;
        self.arrays.copies += other.arrays.copies;
        self.fuse.macs_fused += other.fuse.macs_fused;
        self.forward.inputs_forwarded += other.forward.inputs_forwarded;
        self.forward.outputs_forwarded += other.forward.outputs_forwarded;
    }
}

/// Runs the full vectorization pipeline on one function.
pub fn vectorize_function(func: &mut MirFunction) -> VectorizeReport {
    let loops = vectorize_loops(func);
    let arrays = vectorize_arrays(func);
    let fuse = fuse_mac(func);
    let forward = forward_slices(func);
    // Clean up dead prelude temps created by rejected candidates.
    matic_mir::optimize(func);
    VectorizeReport {
        loops,
        arrays,
        fuse,
        forward,
    }
}

/// Runs the full pipeline on every function of a program.
pub fn vectorize_program(program: &mut MirProgram) -> VectorizeReport {
    let mut report = VectorizeReport::default();
    for f in &mut program.functions {
        let r = vectorize_function(f);
        report.merge(&r);
    }
    report
}
