//! Slice forwarding: eliminates materialized slice temporaries around
//! vector operations.
//!
//! MATLAB's vectorized style produces chains like
//!
//! ```text
//! t   = alloc
//! t   <- copy  y[s by 1]          (u = y(s:e))
//! r   = alloc
//! r   <- vmap  t[1 by 1], v[1 by 1]
//! y[s by 1] <- copy r[1 by 1]     (y(s:e) = u + v)
//! ```
//!
//! Because the vector instructions address memory through (pointer,
//! stride) pairs, the copies are pure overhead: the map can read `y`'s
//! slice directly and write `y`'s slice directly. This pass performs both
//! rewrites under conservative aliasing conditions, turning the chain into
//! a single `y[s] <- vmap y[s], v` — which is what a human DSP programmer
//! would write against the intrinsics.

use matic_mir::{walk_stmts, MirFunction, Operand, Rvalue, Stmt, VarId, VecKind, VecRef};
use std::collections::{HashMap, HashSet};

/// Statistics from the forwarding pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForwardReport {
    /// Copy-in temporaries forwarded into consumers.
    pub inputs_forwarded: usize,
    /// Copy-out temporaries replaced by direct destination writes.
    pub outputs_forwarded: usize,
}

/// Runs slice forwarding over `func` until no more copies disappear.
pub fn forward_slices(func: &mut MirFunction) -> ForwardReport {
    let mut report = ForwardReport::default();
    for _ in 0..8 {
        let uses = count_refs(func);
        let live_outputs: HashSet<VarId> = func.outputs.iter().copied().collect();
        let mut body = std::mem::take(&mut func.body);
        let changed = process(&mut body, &uses, &live_outputs, &mut report);
        func.body = body;
        if !changed {
            break;
        }
    }
    report
}

/// Counts statement references (reads and writes) per register.
fn count_refs(func: &MirFunction) -> HashMap<VarId, u32> {
    let mut uses: HashMap<VarId, u32> = HashMap::new();
    for &o in &func.outputs {
        *uses.entry(o).or_default() += 10; // outputs are always live
    }
    walk_stmts(&func.body, &mut |s| {
        matic_mir::visit_stmt_operands(s, &mut |op| {
            if let Operand::Var(v) = op {
                *uses.entry(*v).or_default() += 1;
            }
        });
    });
    uses
}

/// Registers whose arrays are written by `stmt`.
fn written_arrays(stmt: &Stmt, out: &mut HashSet<VarId>) {
    match stmt {
        Stmt::Def { dst, .. } => {
            out.insert(*dst);
        }
        Stmt::Store { array, .. } => {
            out.insert(*array);
        }
        Stmt::CallMulti { dsts, .. } => out.extend(dsts.iter().flatten().copied()),
        Stmt::VectorOp(v) => match &v.dst {
            VecRef::Slice { array, .. } => {
                out.insert(*array);
            }
            VecRef::Splat(Operand::Var(a)) => {
                out.insert(*a);
            }
            _ => {}
        },
        _ => {}
    }
}

/// Arrays referenced (read) by a vecref.
fn vecref_arrays(r: &VecRef, out: &mut HashSet<VarId>) {
    match r {
        VecRef::Slice { array, start, step } => {
            out.insert(*array);
            if let Operand::Var(v) = start {
                out.insert(*v);
            }
            if let Operand::Var(v) = step {
                out.insert(*v);
            }
        }
        VecRef::Splat(Operand::Var(v)) => {
            out.insert(*v);
        }
        _ => {}
    }
}

/// Whether two constant slices of the same array cannot overlap for the
/// given constant length.
fn slices_provably_disjoint(a: &VecRef, b: &VecRef, len: Operand) -> bool {
    let (
        VecRef::Slice {
            start: sa,
            step: ta,
            ..
        },
        VecRef::Slice {
            start: sb,
            step: tb,
            ..
        },
    ) = (a, b)
    else {
        return false;
    };
    let (Some(sa), Some(ta), Some(sb), Some(tb), Some(n)) = (
        sa.as_const(),
        ta.as_const(),
        sb.as_const(),
        tb.as_const(),
        len.as_const(),
    ) else {
        return false;
    };
    if n <= 0.0 {
        return true;
    }
    let span = |s: f64, t: f64| -> (f64, f64) {
        let e = s + t * (n - 1.0);
        (s.min(e), s.max(e))
    };
    let (lo_a, hi_a) = span(sa, ta);
    let (lo_b, hi_b) = span(sb, tb);
    hi_a < lo_b || hi_b < lo_a
}

fn is_unit_slice_of(r: &VecRef, t: VarId) -> bool {
    matches!(
        r,
        VecRef::Slice { array, start, step }
            if *array == t
                && start.as_const() == Some(1.0)
                && step.as_const() == Some(1.0)
    )
}

fn process(
    stmts: &mut Vec<Stmt>,
    uses: &HashMap<VarId, u32>,
    live_outputs: &HashSet<VarId>,
    report: &mut ForwardReport,
) -> bool {
    let mut changed = false;
    // Recurse into nested bodies first.
    for s in stmts.iter_mut() {
        match s {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                changed |= process(then_body, uses, live_outputs, report);
                changed |= process(else_body, uses, live_outputs, report);
            }
            Stmt::For { body, .. } => {
                changed |= process(body, uses, live_outputs, report);
            }
            Stmt::While {
                cond_defs, body, ..
            } => {
                changed |= process(cond_defs, uses, live_outputs, report);
                changed |= process(body, uses, live_outputs, report);
            }
            _ => {}
        }
    }

    // ---- input forwarding -------------------------------------------------
    // k:   Def t = Alloc …
    // k+1: VectorOp Copy dst=t[1 by 1] <- SRC, len=L
    // j>k+1: VectorOp … with input t[1 by 1], len=L
    // with exactly these three references to t, and no write to any array
    // SRC mentions (nor to t) between k+1 and j.
    let mut k = 0;
    'outer_in: while k + 1 < stmts.len() {
        let (t, src, len) = match (&stmts[k], &stmts[k + 1]) {
            (
                Stmt::Def {
                    dst,
                    rv: Rvalue::Alloc { .. },
                    ..
                },
                Stmt::VectorOp(copy),
            ) if matches!(copy.kind, VecKind::Copy)
                && is_unit_slice_of(&copy.dst, *dst)
                && !live_outputs.contains(dst)
                // dst write + consumer read (+ possibly one numel(dst)
                // used as the consumer's length, validated below).
                && (2..=3).contains(&uses.get(dst).copied().unwrap_or(0)) =>
            {
                (*dst, copy.a.clone(), copy.len)
            }
            _ => {
                k += 1;
                continue;
            }
        };
        // Arrays the source depends on.
        let mut src_deps = HashSet::new();
        vecref_arrays(&src, &mut src_deps);
        src_deps.insert(t);
        // Find the single consumer in the same straight-line region,
        // tracking `numel(t)` definitions so length operands that merely
        // re-measure the copy can be resolved to the copy's length.
        let mut numel_of_t: Option<VarId> = None;
        let mut j = k + 2;
        while j < stmts.len() {
            // Stop at control flow: the temp may be consumed inside.
            if matches!(
                stmts[j],
                Stmt::If { .. } | Stmt::For { .. } | Stmt::While { .. }
            ) {
                break;
            }
            if let Stmt::Def {
                dst,
                rv: Rvalue::Builtin { name, args },
                ..
            } = &stmts[j]
            {
                if name == "numel" && args.first() == Some(&Operand::Var(t)) {
                    numel_of_t = Some(*dst);
                }
            }
            if let Stmt::VectorOp(consumer) = &stmts[j] {
                let reads_t = is_unit_slice_of(&consumer.a, t)
                    || consumer.b.as_ref().is_some_and(|b| is_unit_slice_of(b, t));
                let via_numel = matches!(
                    (consumer.len, numel_of_t),
                    (Operand::Var(l), Some(nt)) if l == nt
                );
                let len_matches = consumer.len == len || via_numel;
                // With 3 references the extra one must be the numel def
                // that we are about to make dead.
                let refs = uses.get(&t).copied().unwrap_or(0);
                let refs_ok = refs == 2 || (refs == 3 && via_numel);
                if reads_t && len_matches && refs_ok {
                    // Rewrite the consumer's matching input(s).
                    let src2 = src.clone();
                    if let Stmt::VectorOp(consumer) = &mut stmts[j] {
                        if is_unit_slice_of(&consumer.a, t) {
                            consumer.a = src2.clone();
                        }
                        if let Some(b) = &mut consumer.b {
                            if is_unit_slice_of(b, t) {
                                *b = src2;
                            }
                        }
                        consumer.len = len;
                    }
                    // A `numel(t)` measurement becomes the copy's length
                    // (its definition would otherwise dangle once `t`'s
                    // allocation is removed).
                    if let Some(nt) = numel_of_t {
                        for s2 in stmts[k + 2..j].iter_mut() {
                            if let Stmt::Def { dst, rv, .. } = s2 {
                                if *dst == nt
                                    && matches!(rv, Rvalue::Builtin { name, .. } if name == "numel")
                                {
                                    *rv = Rvalue::Use(len);
                                }
                            }
                        }
                    }
                    stmts.drain(k..k + 2);
                    report.inputs_forwarded += 1;
                    changed = true;
                    continue 'outer_in;
                }
                if reads_t {
                    break; // length mismatch — leave it alone
                }
            }
            // Abort the search if anything writes the source's arrays.
            let mut written = HashSet::new();
            written_arrays(&stmts[j], &mut written);
            if written.iter().any(|w| src_deps.contains(w)) {
                break;
            }
            j += 1;
        }
        k += 1;
    }

    // ---- output forwarding --------------------------------------------------
    // k:   Def t = Alloc …
    // k+1: VectorOp K dst=t[1 by 1] <- inputs, len=L
    // (scalar defs that do not touch K's inputs or t)
    // j:   VectorOp Copy dst=S <- t[1 by 1]
    // The producer K sinks into the copy's position writing S directly;
    // the alloc and the copy disappear.
    let mut k = 0;
    'outer_out: while k + 1 < stmts.len() {
        let (t, prod_inputs) = match (&stmts[k], &stmts[k + 1]) {
            (
                Stmt::Def {
                    dst,
                    rv: Rvalue::Alloc { .. },
                    ..
                },
                Stmt::VectorOp(producer),
            ) if is_unit_slice_of(&producer.dst, *dst)
                && !live_outputs.contains(dst)
                && !matches!(producer.kind, VecKind::Mac | VecKind::Reduce(_))
                && uses.get(dst).copied().unwrap_or(0) == 2 =>
            {
                let mut ins = HashSet::new();
                vecref_arrays(&producer.a, &mut ins);
                if let Some(b) = &producer.b {
                    vecref_arrays(b, &mut ins);
                }
                if let Operand::Var(v) = producer.len {
                    ins.insert(v);
                }
                (*dst, ins)
            }
            _ => {
                k += 1;
                continue;
            }
        };
        let mut j = k + 2;
        while j < stmts.len() {
            match &stmts[j] {
                Stmt::VectorOp(copy)
                    if matches!(copy.kind, VecKind::Copy) && is_unit_slice_of(&copy.a, t) =>
                {
                    // Aliasing: the producer must not read the final
                    // destination except through the identical slice or a
                    // provably disjoint constant one.
                    let (Stmt::VectorOp(producer_ref), Stmt::VectorOp(copy_ref)) =
                        (&stmts[k + 1], &stmts[j])
                    else {
                        break;
                    };
                    let safe = |input: &VecRef| -> bool {
                        let VecRef::Slice { array, .. } = input else {
                            return true;
                        };
                        let VecRef::Slice { array: darr, .. } = &copy_ref.dst else {
                            return true;
                        };
                        if array != darr {
                            return true;
                        }
                        if input == &copy_ref.dst {
                            return true;
                        }
                        slices_provably_disjoint(input, &copy_ref.dst, copy_ref.len)
                    };
                    if !(safe(&producer_ref.a) && producer_ref.b.as_ref().is_none_or(safe)) {
                        break;
                    }
                    let new_dst = copy_ref.dst.clone();
                    let mut producer = match stmts.remove(k + 1) {
                        Stmt::VectorOp(p) => p,
                        _ => unreachable!("checked above"),
                    };
                    producer.dst = new_dst;
                    // Indices shifted down by one after the removal.
                    stmts[j - 1] = Stmt::VectorOp(producer);
                    stmts.remove(k); // the alloc
                    report.outputs_forwarded += 1;
                    changed = true;
                    continue 'outer_out;
                }
                // Scalar definitions that touch neither the temp nor the
                // producer's inputs may sit between producer and copy.
                Stmt::Def { dst, rv, .. } => {
                    let mut reads_forbidden = false;
                    matic_mir::visit_stmt_operands(&stmts[j], &mut |op| {
                        if let Operand::Var(v) = op {
                            if *v == t {
                                reads_forbidden = true;
                            }
                        }
                    });
                    if reads_forbidden
                        || prod_inputs.contains(dst)
                        || matches!(rv, Rvalue::Alloc { .. })
                    {
                        break;
                    }
                }
                _ => break,
            }
            j += 1;
        }
        k += 1;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrays::vectorize_arrays;
    use matic_frontend::parse;
    use matic_sema::{analyze, Class, Dim, Shape, Ty};

    fn pipeline(src: &str, entry: &str, args: &[Ty]) -> (MirFunction, ForwardReport) {
        let (p, diags) = parse(src);
        assert!(!diags.has_errors());
        let analysis = analyze(&p, entry, args);
        assert!(!analysis.diags.has_errors());
        let (mut mir, _) = matic_mir::lower_program(&p, &analysis);
        matic_mir::optimize_program(&mut mir);
        let mut f = mir.function(entry).unwrap().clone();
        vectorize_arrays(&mut f);
        let report = forward_slices(&mut f);
        (f, report)
    }

    fn cxv(n: usize) -> Ty {
        Ty::new(Class::Complex, Shape::row(Dim::Known(n)))
    }

    fn count_vecops(f: &MirFunction) -> usize {
        let mut n = 0;
        walk_stmts(&f.body, &mut |s| {
            if matches!(s, Stmt::VectorOp(_)) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn butterfly_chain_collapses() {
        // u = y(1:8); v = y(9:16) .* w; y(1:8) = u + v  — after
        // forwarding, the adds/muls read and write y directly.
        let src = "function y = f(y, w)\nu = y(1:8);\nv = y(9:16) .* w;\ny(1:8) = u + v;\nend";
        let (f, report) = pipeline(src, "f", &[cxv(16), cxv(8)]);
        assert!(report.inputs_forwarded >= 1, "report: {report:?}");
        assert!(report.outputs_forwarded >= 1, "report: {report:?}");
        // Down from 5 vecops (2 copies-in, map, add, copy-out) to 2.
        assert_eq!(count_vecops(&f), 2, "{:#?}", f.body);
    }

    #[test]
    fn forwarding_respects_intervening_writes() {
        // The copy target y is overwritten between the slice read and its
        // use, so forwarding u into the add would read wrong data.
        let src = "function y = f(y, w)\nu = y(1:8);\ny(1:8) = w;\ny(1:8) = u + y(1:8);\nend";
        let (f, _) = pipeline(src, "f", &[cxv(16), cxv(8)]);
        // Semantics check is done by differential tests; here we only make
        // sure the pass did not fuse across the clobber.
        let mut reads_y_slice_in_add = false;
        walk_stmts(&f.body, &mut |s| {
            if let Stmt::VectorOp(v) = s {
                if matches!(v.kind, VecKind::Map(matic_frontend::ast::BinOp::Add)) {
                    // the `u` side must NOT have been replaced by y's slice
                    if let VecRef::Slice { array, .. } = &v.a {
                        if f.var(*array).name == "y" {
                            reads_y_slice_in_add = true;
                        }
                    }
                }
            }
        });
        assert!(
            !reads_y_slice_in_add,
            "must not forward across a clobbering store: {:#?}",
            f.body
        );
    }

    #[test]
    fn temp_used_twice_is_kept() {
        let src = "function [a, b] = f(y)\nu = y(1:8);\na = u + u;\nb = u .* u;\nend";
        let (_, report) = pipeline(src, "f", &[cxv(16)]);
        assert_eq!(report.inputs_forwarded, 0);
    }
}
