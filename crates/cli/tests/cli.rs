//! CLI-level regression tests for the failure-mode contract: malformed
//! or runaway input must exit nonzero with a single-line
//! `matic: <stage>: <message> at <span>` diagnostic on stderr — never a
//! panic, never a hang.
//!
//! These drive the actual `matic` binary (via `CARGO_BIN_EXE_matic`) so
//! the exact user-visible text and exit codes are pinned.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_matic")
}

/// Writes `src` to a unique temp file and returns its path.
fn source_file(tag: &str, src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("matic_cli_{}_{tag}", std::process::id(),));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("prog.m");
    std::fs::write(&path, src).expect("write source");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("matic runs")
}

fn stderr_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr)
        .lines()
        .next()
        .unwrap_or_default()
        .to_string()
}

#[test]
fn parse_error_is_diagnosed_not_panicked() {
    let file = source_file("parse", "function y = f(x)\ny = x +;\nend\n");
    let out = run(&[
        "compile",
        file.to_str().unwrap(),
        "--entry",
        "f",
        "--sig",
        "v8",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        stderr_line(&out),
        "matic: parse: error: expected expression, found `;` at 25..26"
    );
}

#[test]
fn signature_arity_mismatch_is_a_sema_error() {
    let file = source_file("arity", "function y = f(x, h)\ny = x + h;\nend\n");
    let out = run(&[
        "cycles",
        file.to_str().unwrap(),
        "--entry",
        "f",
        "--sig",
        "v8",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        stderr_line(&out),
        "matic: sema: error: entry `f` expects 2 arguments, signature provides 1 at 0..21"
    );
}

#[test]
fn out_of_bounds_read_is_diagnosed_at_simulation_time() {
    let file = source_file(
        "oob",
        "function y = f(x)\nk = numel(x) + 1;\ny = x(k) * x;\nend\n",
    );
    let out = run(&[
        "cycles",
        file.to_str().unwrap(),
        "--entry",
        "f",
        "--sig",
        "v4",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        stderr_line(&out),
        "matic: asip sim: index 5 out of bounds (4) at 40..44"
    );
}

#[test]
fn runaway_program_exhausts_fuel_instead_of_hanging() {
    let file = source_file(
        "spin",
        "function y = f(x)\ny = 0;\nwhile 1\ny = y + 1;\nend\nend\n",
    );
    let out = run(&[
        "cycles",
        file.to_str().unwrap(),
        "--entry",
        "f",
        "--sig",
        "s",
        "--max-cycles",
        "20000",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let line = stderr_line(&out);
    assert!(
        line.starts_with("matic: asip sim: simulation fuel exhausted at "),
        "unexpected diagnostic: {line}"
    );
}

#[test]
fn zero_max_cycles_is_rejected() {
    let file = source_file("zero", "function y = f(x)\ny = x;\nend\n");
    let out = run(&[
        "cycles",
        file.to_str().unwrap(),
        "--entry",
        "f",
        "--sig",
        "s",
        "--max-cycles",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        stderr_line(&out),
        "matic: --max-cycles expects a positive integer"
    );
}

#[test]
fn help_documents_max_cycles() {
    let out = run(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        text.contains("--max-cycles"),
        "usage must document the flag"
    );
}

#[test]
fn explore_quick_reports_frontier_and_writes_valid_json() {
    let dir = std::env::temp_dir().join(format!("matic_cli_{}_explore", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("explore.json");
    let out = run(&[
        "explore",
        "--benchmarks",
        "fir",
        "--quick",
        "--n",
        "64",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_line(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("frontier point"), "{text}");
    assert!(text.contains("== fir"), "{text}");
    let doc = std::fs::read_to_string(&json).expect("json written");
    let summary = matic_explore::validate_explore_json(&doc).expect("document validates");
    assert_eq!(summary.benchmarks, 1);
    assert!(summary.scalar_outperformed);
}

#[test]
fn explore_rejects_unknown_benchmarks_and_bad_grids() {
    let out = run(&["explore", "--benchmarks", "nope", "--quick"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_line(&out).contains("unknown benchmark `nope`"));

    let out = run(&["explore", "--benchmarks", "fir", "--widths", "0"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_line(&out).contains("width"), "{}", stderr_line(&out));
}

/// All three engines must print byte-identical cycle reports: the engine
/// choice is a wall-clock knob, never a semantics knob.
#[test]
fn cycles_report_is_identical_on_every_engine() {
    let file = source_file(
        "engines",
        "function y = f(x, h)\n\
         n = numel(x);\n\
         m = numel(h);\n\
         y = zeros(1, n);\n\
         for i = 1:n\n\
           acc = 0;\n\
           for k = 1:m\n\
             if i - k + 1 >= 1\n\
               acc = acc + h(k) * x(i - k + 1);\n\
             end\n\
           end\n\
           y(i) = acc;\n\
         end\n\
         end\n",
    );
    let mut reports = Vec::new();
    for engine in ["tree", "linear", "native"] {
        let out = run(&[
            "cycles",
            file.to_str().unwrap(),
            "--entry",
            "f",
            "--sig",
            "v64,v8",
            "--engine",
            engine,
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{engine}: {}",
            stderr_line(&out)
        );
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(text.contains("speedup"), "{engine}: {text}");
        reports.push((engine, text));
    }
    let (_, reference) = &reports[0];
    for (engine, text) in &reports[1..] {
        assert_eq!(text, reference, "engine {engine} diverges from tree");
    }
}

#[test]
fn unknown_engine_is_rejected() {
    let file = source_file("badengine", "function y = f(x)\ny = x;\nend\n");
    let out = run(&[
        "cycles",
        file.to_str().unwrap(),
        "--entry",
        "f",
        "--sig",
        "s",
        "--engine",
        "warp",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        stderr_line(&out),
        "matic: unknown engine `warp` (expected tree, linear, or native)"
    );
}

#[test]
fn well_formed_program_still_succeeds() {
    let file = source_file("ok", "function y = f(a, b)\ny = sum(a .* b);\nend\n");
    let out = run(&[
        "cycles",
        file.to_str().unwrap(),
        "--entry",
        "f",
        "--sig",
        "v64,v64",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_line(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("speedup"));
}
