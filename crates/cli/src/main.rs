//! `matic` — command-line driver for the MATLAB-to-C ASIP compiler.
//!
//! ```text
//! matic compile <file.m> --entry <fn> --sig <spec> [--target <json>]
//!       [--baseline] [-o <dir>]        compile to C (+ runtime headers)
//! matic mir     <file.m> --entry <fn> --sig <spec>   dump optimized MIR
//! matic cycles  <file.m> --entry <fn> --sig <spec>   baseline-vs-optimized
//!       [--n <size>] [--engine <e>] [--profile]        cycle comparison
//!       [--profile-json <p>]
//! matic targets [--dump <name>]                       list/export targets
//! matic explore [--benchmarks <ids>] [--widths <list>] [--scales <list>]
//!       [--engine <e>] [--area-model <json>] [--json <out>]  design-space search
//! ```
//!
//! `--sig` describes the entry signature, comma-separated:
//! `s` scalar, `cs` complex scalar, `v<N>` real vector, `cv<N>` complex
//! vector, `m<R>x<C>` matrix — e.g. `--sig v1024,v64` for `fir(x, h)`.

use matic::{arg, CValue, Compiler, Engine, IsaSpec, OptLevel, SimVal, Ty};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("matic: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(USAGE.to_string());
    };
    match cmd.as_str() {
        "compile" => cmd_compile(&args[1..]),
        "mir" => cmd_mir(&args[1..]),
        "cycles" => cmd_cycles(&args[1..]),
        "targets" => cmd_targets(&args[1..]),
        "explore" => cmd_explore(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "usage:
  matic compile <file.m> --entry <fn> --sig <spec> [--target <json>] [--baseline] [-o <dir>]
  matic mir     <file.m> --entry <fn> --sig <spec> [--target <json>]
  matic cycles  <file.m> --entry <fn> --sig <spec> [--target <json>] [--seed <k>] [--max-cycles <N>]
                [--engine tree|linear|native] [--profile] [--profile-json <path>]
  matic targets [--dump <name>]
  matic explore [--benchmarks <ids>] [--widths <list>] [--scales <list>] [--n <size>]
                [--seed <k>] [--max-cycles <N>] [--engine tree|linear|native]
                [--area-model <json>] [--json <out>] [--quick]
sig spec: s | cs | v<N> | cv<N> | m<R>x<C>, comma-separated (e.g. v1024,v64)
explore sweeps a grid of candidate ISAs (SIMD widths x feature subsets x
cost scalings) over the benchmark suite and reports the cycles-vs-area
Pareto frontier; --quick shrinks the grid for smoke runs, --json writes a
matic-explore-v1 document
--max-cycles caps the simulated step budget (default 100000000); runaway
programs stop with a fuel-exhaustion diagnostic instead of hanging
--engine picks the simulator implementation (default native, the fused
direct-threaded engine); cycle counts are identical on every engine, only
wall-clock differs
--profile prints a per-source-line cycle report for the optimized build;
--profile-json writes the same data as a matic-profile-v1 JSON document
--trace-passes (any command) prints per-pass wall-time and the
vectorizer's per-loop accept/reject decisions on stderr";

/// Parsed common options.
struct Opts {
    file: String,
    entry: String,
    sig: Vec<Ty>,
    target: IsaSpec,
    baseline: bool,
    out_dir: String,
    seed: u64,
    max_cycles: u64,
    engine: Engine,
    profile: bool,
    profile_json: Option<String>,
    trace_passes: bool,
}

/// Default simulation step budget for the CLI: large enough for any real
/// kernel, small enough that a `while 1` program errors out in seconds.
const DEFAULT_MAX_CYCLES: u64 = 100_000_000;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut file = None;
    let mut entry = None;
    let mut sig = None;
    let mut target = IsaSpec::dsp16();
    let mut baseline = false;
    let mut out_dir = "matic_out".to_string();
    let mut seed = 1u64;
    let mut max_cycles = DEFAULT_MAX_CYCLES;
    let mut engine = Engine::default();
    let mut profile = false;
    let mut profile_json = None;
    let mut trace_passes = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => entry = Some(next(&mut it, "--entry")?),
            "--sig" => sig = Some(parse_sig(&next(&mut it, "--sig")?)?),
            "--target" => {
                let p = next(&mut it, "--target")?;
                let text = std::fs::read_to_string(&p)
                    .map_err(|e| format!("cannot read target `{p}`: {e}"))?;
                target = IsaSpec::from_json(&text)?;
                target.validate()?;
            }
            "--baseline" => baseline = true,
            "--profile" => profile = true,
            "--profile-json" => profile_json = Some(next(&mut it, "--profile-json")?),
            "--trace-passes" => trace_passes = true,
            "-o" | "--out" => out_dir = next(&mut it, "-o")?,
            "--seed" => {
                seed = next(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--max-cycles" => {
                max_cycles = next(&mut it, "--max-cycles")?
                    .parse()
                    .map_err(|_| "--max-cycles expects a positive integer".to_string())?;
                if max_cycles == 0 {
                    return Err("--max-cycles expects a positive integer".to_string());
                }
            }
            "--engine" => engine = next(&mut it, "--engine")?.parse()?,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Opts {
        file: file.ok_or("missing input file")?,
        entry: entry.ok_or("missing --entry")?,
        sig: sig.ok_or("missing --sig")?,
        target,
        baseline,
        out_dir,
        seed,
        max_cycles,
        engine,
        profile,
        profile_json,
        trace_passes,
    })
}

fn next(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} expects a value"))
}

fn parse_sig(spec: &str) -> Result<Vec<Ty>, String> {
    spec.split(',')
        .map(|tok| {
            let t = tok.trim();
            if t == "s" {
                return Ok(arg::scalar());
            }
            if t == "cs" {
                return Ok(arg::cx_scalar());
            }
            if let Some(n) = t.strip_prefix("cv") {
                return n
                    .parse()
                    .map(arg::cx_vector)
                    .map_err(|_| format!("bad sig token `{t}`"));
            }
            if let Some(n) = t.strip_prefix('v') {
                return n
                    .parse()
                    .map(arg::vector)
                    .map_err(|_| format!("bad sig token `{t}`"));
            }
            if let Some(dims) = t.strip_prefix('m') {
                let (r, c) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("bad sig token `{t}`"))?;
                let r: usize = r.parse().map_err(|_| format!("bad sig token `{t}`"))?;
                let c: usize = c.parse().map_err(|_| format!("bad sig token `{t}`"))?;
                return Ok(arg::matrix(r, c));
            }
            Err(format!("bad sig token `{t}`"))
        })
        .collect()
}

fn read_source(opts: &Opts) -> Result<String, String> {
    std::fs::read_to_string(&opts.file).map_err(|e| format!("cannot read `{}`: {e}", opts.file))
}

fn compile_src(opts: &Opts, src: &str) -> Result<matic::Compiled, String> {
    let level = if opts.baseline {
        OptLevel::baseline()
    } else {
        OptLevel::full()
    };
    let compiled = Compiler::new()
        .target(opts.target.clone())
        .opt_level(level)
        .compile(src, &opts.entry, &opts.sig)
        .map_err(|e| e.to_string())?;
    if opts.trace_passes {
        trace_passes(&compiled, &opts.file, src);
    }
    Ok(compiled)
}

fn compile_with(opts: &Opts) -> Result<matic::Compiled, String> {
    let src = read_source(opts)?;
    compile_src(opts, &src)
}

/// Prints per-pass wall-time and the vectorizer's per-loop decisions on
/// stderr (stdout stays reserved for the command's normal output).
fn trace_passes(compiled: &matic::Compiled, file: &str, src: &str) {
    for t in &compiled.timings {
        eprintln!(
            "trace: pass {:<9} {:>9.3} ms",
            t.name,
            t.duration.as_secs_f64() * 1e3
        );
    }
    let map = matic_frontend::span::SourceMap::new(src);
    for d in &compiled.report.loops.decisions {
        let pos = map.line_col(d.span.start);
        if d.accepted {
            eprintln!(
                "trace: vectorize {file}:{pos}: vectorized loop ({}) at {}",
                d.detail, d.span
            );
        } else {
            eprintln!(
                "trace: vectorize {file}:{pos}: loop not vectorized: {} at {}",
                d.detail, d.span
            );
        }
    }
}

fn reject_profile_flags(opts: &Opts, cmd: &str) -> Result<(), String> {
    if opts.profile || opts.profile_json.is_some() {
        return Err(format!(
            "--profile/--profile-json apply to `cycles`, not `{cmd}`"
        ));
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    reject_profile_flags(&opts, "compile")?;
    let compiled = compile_with(&opts)?;
    let dir = Path::new(&opts.out_dir);
    let path = matic_codegen::write_module(dir, &compiled.c, None)
        .map_err(|e| format!("cannot write output: {e}"))?;
    let r = &compiled.report;
    println!("target      : {}", compiled.spec);
    println!(
        "vectorizer  : loops {} accepted / {} rejected, array ops {}, macs fused {}, slices forwarded {}",
        r.loops.maps + r.loops.macs + r.loops.reductions,
        r.loops.rejected,
        r.arrays.maps + r.arrays.reductions + r.arrays.copies,
        r.fuse.macs_fused,
        r.forward.inputs_forwarded + r.forward.outputs_forwarded,
    );
    println!("wrote       : {}", path.display());
    println!("              {}", dir.join("matic_rt.h").display());
    println!("              {}", dir.join("matic_intrinsics.h").display());
    Ok(())
}

fn cmd_mir(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    reject_profile_flags(&opts, "mir")?;
    let compiled = compile_with(&opts)?;
    print!("{}", compiled.mir_dump());
    Ok(())
}

fn cmd_cycles(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let src = read_source(&opts)?;
    let optimized = compile_src(
        &Opts {
            baseline: false,
            ..clone_opts(&opts)
        },
        &src,
    )?;
    let baseline = compile_src(
        &Opts {
            baseline: true,
            // Pass traces for the optimized build only; the baseline
            // pipeline never vectorizes and would just repeat timings.
            trace_passes: false,
            ..clone_opts(&opts)
        },
        &src,
    )?;
    // Deterministic stimulus derived from the signature.
    let inputs: Vec<SimVal> = opts
        .sig
        .iter()
        .enumerate()
        .map(|(k, t)| synth_input(t, opts.seed.wrapping_add(k as u64)))
        .collect();
    let want_profile = opts.profile || opts.profile_json.is_some();
    let rb = baseline
        .simulator()
        .with_engine(opts.engine)
        .with_fuel(opts.max_cycles)
        .run(inputs.clone())
        .map_err(|e| e.to_string())?;
    let ro = optimized
        .simulator()
        .with_engine(opts.engine)
        .with_fuel(opts.max_cycles)
        .with_profiling(want_profile)
        .run(inputs)
        .map_err(|e| e.to_string())?;
    println!("target    : {}", optimized.spec);
    println!("baseline  : {:>10} cycles", rb.cycles.total);
    println!("optimized : {:>10} cycles", ro.cycles.total);
    println!(
        "speedup   : {:.2}x",
        rb.cycles.total as f64 / ro.cycles.total.max(1) as f64
    );
    println!("\ncycle breakdown (optimized):");
    print!("{}", ro.cycles);
    if let Some(profile) = &ro.profile {
        let map = matic_frontend::span::SourceMap::new(src.as_str());
        if opts.profile {
            println!();
            print!("{}", profile.render_text(&map, &opts.entry));
        }
        if let Some(path) = &opts.profile_json {
            let doc = profile.to_json(&map, &opts.entry, &optimized.spec.name);
            let mut text = doc.pretty();
            text.push('\n');
            std::fs::write(path, text)
                .map_err(|e| format!("cannot write profile `{path}`: {e}"))?;
            println!("\nprofile   : wrote {path}");
        }
    }
    Ok(())
}

fn clone_opts(o: &Opts) -> Opts {
    Opts {
        file: o.file.clone(),
        entry: o.entry.clone(),
        sig: o.sig.clone(),
        target: o.target.clone(),
        baseline: o.baseline,
        out_dir: o.out_dir.clone(),
        seed: o.seed,
        max_cycles: o.max_cycles,
        engine: o.engine,
        profile: o.profile,
        profile_json: o.profile_json.clone(),
        trace_passes: o.trace_passes,
    }
}

/// Synthesizes a deterministic input for one signature slot.
fn synth_input(ty: &Ty, seed: u64) -> SimVal {
    let n = ty.shape.numel().unwrap_or(64);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    let complex = ty.class == matic::Class::Complex;
    if ty.shape.is_scalar() {
        return if complex {
            matic_benchkit_free::cx_scalar(next(), next())
        } else {
            SimVal::scalar(next().abs() * 8.0 + 1.0)
        };
    }
    if complex {
        let data: Vec<(f64, f64)> = (0..n).map(|_| (next(), next())).collect();
        SimVal::cx_row(&data)
    } else {
        let rows = ty.shape.rows.known().unwrap_or(1);
        let cols = ty.shape.cols.known().unwrap_or(n);
        let v: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        if rows == 1 {
            SimVal::row(&v)
        } else {
            // Column-major matrix input.
            let _ = CValue {
                rows,
                cols,
                re: v.clone(),
                im: None,
            };
            SimVal::Arr(matic::Matrix::new(
                rows,
                cols,
                v.into_iter().map(matic::Cx::real).collect(),
            ))
        }
    }
}

/// Helpers that avoid a benchkit dependency for the one conversion used.
mod matic_benchkit_free {
    use matic::{Cx, SimVal};

    pub fn cx_scalar(re: f64, im: f64) -> SimVal {
        SimVal::Scalar(Cx::new(re, im))
    }
}

fn cmd_explore(args: &[String]) -> Result<(), String> {
    use matic_explore::{explore, AreaModel, ExploreConfig, GridConfig};
    let mut cfg = ExploreConfig::default();
    let mut json_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--benchmarks" => {
                cfg.bench_ids = next(&mut it, "--benchmarks")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--widths" => {
                cfg.grid.widths = next(&mut it, "--widths")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| format!("bad width `{}`", s.trim()))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--scales" => {
                cfg.grid.cost_scales = next(&mut it, "--scales")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| format!("bad cost scale `{}`", s.trim()))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--n" => {
                cfg.n = Some(
                    next(&mut it, "--n")?
                        .parse()
                        .map_err(|_| "--n expects a positive integer".to_string())?,
                );
            }
            "--seed" => {
                cfg.seed = next(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--max-cycles" => {
                cfg.fuel = next(&mut it, "--max-cycles")?
                    .parse()
                    .map_err(|_| "--max-cycles expects a positive integer".to_string())?;
                if cfg.fuel == 0 {
                    return Err("--max-cycles expects a positive integer".to_string());
                }
            }
            "--area-model" => {
                let p = next(&mut it, "--area-model")?;
                let text = std::fs::read_to_string(&p)
                    .map_err(|e| format!("cannot read area model `{p}`: {e}"))?;
                cfg.area = AreaModel::from_json(&text)?;
            }
            "--json" => json_out = Some(next(&mut it, "--json")?),
            "--engine" => cfg.engine = next(&mut it, "--engine")?.parse()?,
            "--quick" => cfg.grid = GridConfig::quick(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let result = explore(&cfg)?;
    print!("{}", result.render_text());
    if let Some(path) = json_out {
        let mut text = result.to_json().pretty();
        text.push('\n');
        std::fs::write(&path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("\nwrote {path}");
    }
    Ok(())
}

fn cmd_targets(args: &[String]) -> Result<(), String> {
    let builtin = [
        IsaSpec::dsp16(),
        IsaSpec::scalar_baseline(),
        IsaSpec::with_width(4),
        IsaSpec::with_width(16),
    ];
    if let Some(pos) = args.iter().position(|a| a == "--dump") {
        let name = args.get(pos + 1).ok_or("--dump expects a target name")?;
        let spec = builtin
            .iter()
            .find(|s| &s.name == name)
            .ok_or_else(|| format!("unknown builtin target `{name}`"))?;
        println!("{}", spec.to_json());
        return Ok(());
    }
    println!("builtin targets (export with `matic targets --dump <name>`):");
    for s in &builtin {
        println!("  {s}");
    }
    Ok(())
}
