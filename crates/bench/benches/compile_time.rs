//! **Table 3 (criterion form) — compile-time cost of the flow.**
//!
//! Wall-clock time to run the full pipeline (parse → sema → lower →
//! optimize → vectorize → C emission) per benchmark. The DATE'16 paper's
//! pitch includes reducing development time; the compiler itself must be
//! fast enough for interactive use.

use criterion::{criterion_group, criterion_main, Criterion};
use matic::{Compiler, OptLevel};
use matic_benchkit::SUITE;
use std::time::Duration;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_full_pipeline");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for b in SUITE {
        let args = b.arg_types(b.default_n);
        group.bench_function(b.id, |bencher| {
            bencher.iter(|| {
                let out = Compiler::new()
                    .opt_level(OptLevel::full())
                    .compile(b.source, b.entry, &args)
                    .expect("compiles");
                std::hint::black_box(out.c.source.len())
            })
        });
    }
    group.finish();
}

fn bench_compile_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_baseline_pipeline");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for b in SUITE {
        let args = b.arg_types(b.default_n);
        group.bench_function(b.id, |bencher| {
            bencher.iter(|| {
                let out = Compiler::new()
                    .opt_level(OptLevel::baseline())
                    .compile(b.source, b.entry, &args)
                    .expect("compiles");
                std::hint::black_box(out.c.source.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_compile_baseline);
criterion_main!(benches);
