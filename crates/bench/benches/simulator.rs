//! Criterion benches for the virtual-ASIP simulator itself: wall-clock
//! throughput of cycle-level execution, per benchmark and per opt level.
//! (Simulated *cycle counts* are deterministic; these benches measure the
//! harness, not the ASIP.)

use criterion::{criterion_group, criterion_main, Criterion};
use matic::{Compiler, OptLevel};
use matic_benchkit::{to_sim, SUITE};
use std::time::Duration;

fn small_n(id: &str) -> usize {
    match id {
        "matmul" => 8,
        "fft" => 64,
        _ => 128,
    }
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("asip_simulation");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for b in SUITE {
        let n = small_n(b.id);
        for (label, opt) in [("base", OptLevel::baseline()), ("opt", OptLevel::full())] {
            let compiled = Compiler::new()
                .opt_level(opt)
                .compile(b.source, b.entry, &b.arg_types(n))
                .expect("compiles");
            let inputs: Vec<_> = b.inputs(n, 3).iter().map(to_sim).collect();
            // Decode + spec setup happen once, outside the timed loop —
            // the benchmark measures execution throughput.
            let sim = compiled.simulator();
            group.bench_function(format!("{}_{label}", b.id), |bencher| {
                bencher.iter(|| {
                    let out = sim.run(inputs.clone()).expect("sim ok");
                    std::hint::black_box(out.cycles.total)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
