//! **Table 1 — benchmark characteristics.**
//!
//! Source size, structure and the idioms the compiler recognizes in each
//! of the six DSP benchmarks. Regenerate with:
//! `cargo run -p matic-bench --bin repro_table1`

use matic::{Compiler, OptLevel};
use matic_bench::render_table;
use matic_benchkit::SUITE;

fn main() {
    let mut rows = Vec::new();
    for b in SUITE {
        let loc = b
            .source
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('%')
            })
            .count();
        let compiled = Compiler::new()
            .opt_level(OptLevel::full())
            .compile(b.source, b.entry, &b.arg_types(b.default_n))
            .unwrap_or_else(|e| panic!("{}: {e}", b.id));
        let mir_stmts = compiled.entry_mir().stmt_count();
        let r = &compiled.report;
        rows.push(vec![
            b.id.to_string(),
            b.name.to_string(),
            b.default_n.to_string(),
            loc.to_string(),
            mir_stmts.to_string(),
            (r.loops.macs + r.fuse.macs_fused).to_string(),
            (r.loops.maps + r.arrays.maps).to_string(),
            (r.loops.reductions + r.arrays.reductions).to_string(),
            r.arrays.copies.to_string(),
            r.loops.rejected.to_string(),
        ]);
    }
    println!("Table 1: benchmark characteristics and recognized idioms");
    println!("(N = default problem size; LoC = non-comment MATLAB lines)");
    println!();
    println!(
        "{}",
        render_table(
            &[
                "bench",
                "kernel",
                "N",
                "LoC",
                "MIR",
                "MACs",
                "maps",
                "reds",
                "copies",
                "serial-loops"
            ],
            &rows
        )
    );
}
