//! **Per-line cycle profiles** — generates and validates the
//! `matic-profile-v1` documents for the whole benchmark suite.
//!
//! Two modes:
//!
//! * `repro_profile` (no arguments): compiles each of the six benchmarks,
//!   runs the simulator with profiling enabled, and writes
//!   `profiles/<bench>.json`, then validates every document it wrote.
//! * `repro_profile a.json b.json ...`: validates existing documents (the
//!   CI job feeds it the files produced by `matic cycles --profile-json`).
//!
//! Validation is structural *and* arithmetic: the schema tag, field types,
//! per-line class breakdowns summing to the line's cycles, line cycles
//! summing to the document total, and fractions summing to 1. Exits
//! non-zero on the first malformed document.

use matic::{arg, Compiler, Cx, Matrix, OptLevel, SimVal, SourceMap, Ty, PROFILE_SCHEMA};
use matic_bench::render_table;
use matic_benchkit::{to_sim, Benchmark, SUITE};
use matic_isa::json::{parse, Json};
use matic_isa::OpClass;
use std::process::ExitCode;

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("`{key}` missing or not a non-negative integer"))
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("`{key}` missing or not a string"))
}

struct Summary {
    entry: String,
    target: String,
    total_cycles: u64,
    hot_line: u64,
    hot_fraction: f64,
}

/// Checks one `matic-profile-v1` document end to end.
fn validate(doc: &Json) -> Result<Summary, String> {
    let schema = get_str(doc, "schema")?;
    if schema != PROFILE_SCHEMA {
        return Err(format!("schema `{schema}`, expected `{PROFILE_SCHEMA}`"));
    }
    let entry = get_str(doc, "entry")?.to_string();
    let target = get_str(doc, "target")?.to_string();
    if entry.is_empty() || target.is_empty() {
        return Err("`entry`/`target` must be non-empty".to_string());
    }
    let total_cycles = get_u64(doc, "total_cycles")?;
    let total_instructions = get_u64(doc, "total_instructions")?;
    let Some(Json::Arr(lines)) = doc.get("lines") else {
        return Err("`lines` missing or not an array".to_string());
    };

    let mut cycle_sum = 0u64;
    let mut instr_sum = 0u64;
    let mut frac_sum = 0.0f64;
    let mut hot_line = 0u64;
    let mut hot_fraction = 0.0f64;
    for (i, row) in lines.iter().enumerate() {
        let ctx = |e: String| format!("lines[{i}]: {e}");
        let line = get_u64(row, "line").map_err(ctx)?;
        get_str(row, "source").map_err(ctx)?;
        let cycles = get_u64(row, "cycles").map_err(ctx)?;
        let instructions = get_u64(row, "instructions").map_err(ctx)?;
        let fraction = row
            .get("fraction")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("lines[{i}]: `fraction` missing"))?;
        if !(0.0..=1.0).contains(&fraction) {
            return Err(format!("lines[{i}]: fraction {fraction} outside [0, 1]"));
        }
        let Some(Json::Obj(by_class)) = row.get("by_class") else {
            return Err(format!("lines[{i}]: `by_class` missing or not an object"));
        };
        let mut class_sum = 0u64;
        for (name, v) in by_class {
            if OpClass::from_snake(name).is_none() {
                return Err(format!("lines[{i}]: unknown op class `{name}`"));
            }
            class_sum += v
                .as_u64()
                .ok_or_else(|| format!("lines[{i}]: `{name}` cycles not an integer"))?;
        }
        if class_sum != cycles {
            return Err(format!(
                "lines[{i}]: class breakdown sums to {class_sum}, line says {cycles}"
            ));
        }
        let lane_elems = get_u64(row, "lane_elems").map_err(ctx)?;
        let lane_slots = get_u64(row, "lane_slots").map_err(ctx)?;
        match row.get("lane_utilization") {
            Some(Json::Null) if lane_slots == 0 => {}
            Some(Json::Num(u)) if lane_slots > 0 => {
                let expect = lane_elems as f64 / lane_slots as f64;
                if (u - expect).abs() > 1e-9 {
                    return Err(format!(
                        "lines[{i}]: lane_utilization {u} != {lane_elems}/{lane_slots}"
                    ));
                }
            }
            _ => {
                return Err(format!(
                    "lines[{i}]: `lane_utilization` inconsistent with lane_slots"
                ))
            }
        }
        cycle_sum += cycles;
        instr_sum += instructions;
        frac_sum += fraction;
        if fraction > hot_fraction {
            hot_fraction = fraction;
            hot_line = line;
        }
    }
    if cycle_sum != total_cycles {
        return Err(format!(
            "line cycles sum to {cycle_sum}, document says {total_cycles}"
        ));
    }
    if instr_sum != total_instructions {
        return Err(format!(
            "line instructions sum to {instr_sum}, document says {total_instructions}"
        ));
    }
    if total_cycles > 0 && (frac_sum - 1.0).abs() > 1e-9 {
        return Err(format!("fractions sum to {frac_sum}, expected 1"));
    }
    Ok(Summary {
        entry,
        target,
        total_cycles,
        hot_line,
        hot_fraction,
    })
}

/// Signature and inputs for the canonical profile run of one benchmark.
/// FIR is profiled at 256 taps (not the suite default 64) — the
/// documented run where the MAC line crosses 90% attribution.
fn profile_args(b: &Benchmark) -> (Vec<Ty>, Vec<SimVal>) {
    if b.id == "fir" {
        let ramp = |n: usize| {
            let data: Vec<Cx> = (0..n)
                .map(|i| Cx::new((i % 7) as f64 * 0.25 - 0.5, 0.0))
                .collect();
            SimVal::Arr(Matrix::new(1, n, data))
        };
        return (
            vec![arg::vector(1024), arg::vector(256)],
            vec![ramp(1024), ramp(256)],
        );
    }
    let n = match b.id {
        "matmul" => 16,
        "fft" => 256,
        _ => 512,
    };
    (b.arg_types(n), b.inputs(n, 7).iter().map(to_sim).collect())
}

fn generate() -> Result<Vec<String>, String> {
    std::fs::create_dir_all("profiles").map_err(|e| format!("mkdir profiles: {e}"))?;
    let mut paths = Vec::new();
    for b in SUITE {
        let (tys, inputs) = profile_args(b);
        let compiled = Compiler::new()
            .opt_level(OptLevel::full())
            .compile(b.source, b.entry, &tys)
            .map_err(|e| format!("{}: compile failed: {e}", b.id))?;
        let outcome = compiled
            .simulator()
            .with_profiling(true)
            .run(inputs)
            .map_err(|e| format!("{}: simulation failed: {e}", b.id))?;
        let profile = outcome.profile.expect("profiling was enabled");
        let map = SourceMap::new(b.source);
        let doc = profile.to_json(&map, &compiled.entry, &compiled.spec.name);
        let path = format!("profiles/{}.json", b.id);
        std::fs::write(&path, doc.pretty() + "\n").map_err(|e| format!("{path}: {e}"))?;
        paths.push(path);
    }
    Ok(paths)
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        args = generate()?;
        println!(
            "generated {} profile documents under profiles/\n",
            args.len()
        );
    }
    let mut rows = Vec::new();
    for path in &args {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let s = validate(&doc).map_err(|e| format!("{path}: {e}"))?;
        rows.push(vec![
            path.clone(),
            s.entry,
            s.target,
            s.total_cycles.to_string(),
            format!("{} ({:.1}%)", s.hot_line, 100.0 * s.hot_fraction),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["document", "entry", "target", "cycles", "hottest line"],
            &rows
        )
    );
    println!("{} documents valid ({PROFILE_SCHEMA})", args.len());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro_profile: {e}");
            ExitCode::FAILURE
        }
    }
}
