//! **Fig. 4 — ablation: which custom-instruction family buys what.**
//!
//! `dsp16` variants with individual instruction families disabled show
//! where each benchmark's speedup comes from: SIMD lanes, complex
//! arithmetic, or MAC fusion. Regenerate with:
//! `cargo run -p matic-bench --bin repro_fig4 [--quick]`

use matic::{Features, IsaSpec, OptLevel};
use matic_bench::{measure, par_map, render_table, speedup};
use matic_benchkit::SUITE;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let variants: &[(&str, Features)] = &[
        (
            "none",
            Features {
                simd: false,
                complex: false,
                mac: false,
            },
        ),
        (
            "simd",
            Features {
                simd: true,
                complex: false,
                mac: false,
            },
        ),
        (
            "simd+mac",
            Features {
                simd: true,
                complex: false,
                mac: true,
            },
        ),
        (
            "complex",
            Features {
                simd: false,
                complex: true,
                mac: true,
            },
        ),
        ("all", Features::all()),
    ];
    // Flat (benchmark, N, target, opt-level) cells: per benchmark, the
    // scalar baseline plus one full-opt cell per feature ablation.
    let cells: Vec<_> = SUITE
        .iter()
        .flat_map(|b| {
            let n = if quick {
                match b.id {
                    "matmul" => 8,
                    "fft" => 64,
                    _ => 128,
                }
            } else {
                b.default_n
            };
            std::iter::once((b, n, IsaSpec::dsp16(), OptLevel::baseline())).chain(
                variants.iter().map(move |(_, feats)| {
                    (b, n, IsaSpec::with_features(*feats), OptLevel::full())
                }),
            )
        })
        .collect();
    let measured = par_map(&cells, |(b, n, spec, opt)| {
        measure(b, *n, spec.clone(), *opt, 1)
    });
    let per_bench = 1 + variants.len();
    let mut rows = Vec::new();
    for group in measured.chunks(per_bench) {
        let base = &group[0];
        let mut row = vec![base.bench.to_string()];
        for m in &group[1..] {
            row.push(format!("{:.2}x", speedup(base.cycles, m.cycles)));
        }
        rows.push(row);
    }
    println!("Fig. 4: speedup over scalar baseline per custom-instruction family");
    println!("(ablation of the dsp16 ASIP's instruction-set extensions)");
    println!();
    let headers: Vec<String> = std::iter::once("bench".to_string())
        .chain(variants.iter().map(|(l, _)| l.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&header_refs, &rows));
    println!("Expected shape: cmult/fft need `complex`; fir/xcorr/matmul need");
    println!("`simd(+mac)`; `all` dominates everywhere; iir barely moves.");
}
