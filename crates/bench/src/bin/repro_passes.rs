//! **Pass ablation** — which vectorizer pass buys what (the design-choice
//! ablation DESIGN.md calls out).
//!
//! The pipeline is rebuilt pass by pass — loop idiom recognition, array
//! strip-mining, MAC fusion, slice forwarding — and each stage's cycle
//! count on `dsp16` is reported relative to the scalar baseline.
//! Regenerate with: `cargo run --release -p matic-bench --bin repro_passes`

use matic::{IsaSpec, OptLevel};
use matic_bench::render_table;
use matic_benchkit::{outputs_close, sim_to_cvalue, to_sim, SUITE};

/// Which vectorizer passes to run.
#[derive(Clone, Copy)]
struct Passes {
    loops: bool,
    arrays: bool,
    fuse: bool,
    forward: bool,
}

fn cycles_with(bench: &matic_benchkit::Benchmark, n: usize, passes: Passes) -> u64 {
    let (program, diags) = matic::parse(bench.source);
    assert!(!diags.has_errors());
    let analysis = matic_sema::analyze(&program, bench.entry, &bench.arg_types(n));
    assert!(!analysis.diags.has_errors());
    let (mut mir, diags) = matic_mir::lower_program(&program, &analysis);
    assert!(!diags.has_errors());
    matic_mir::optimize_program(&mut mir);
    for f in &mut mir.functions {
        if passes.loops {
            matic_vectorize::vectorize_loops(f);
        }
        if passes.arrays {
            matic_vectorize::vectorize_arrays(f);
        }
        if passes.fuse {
            matic_vectorize::fuse_mac(f);
        }
        if passes.forward {
            matic_vectorize::forward_slices(f);
        }
        matic_mir::optimize(f);
    }
    let machine = matic::AsipMachine::new(IsaSpec::dsp16());
    let inputs = bench.inputs(n, 1);
    let expected = &bench.reference_outputs(&inputs).expect("interp ok")[0];
    let out = machine
        .run(&mir, bench.entry, inputs.iter().map(to_sim).collect())
        .unwrap_or_else(|e| panic!("{}: {e}", bench.id));
    let got = sim_to_cvalue(&out.outputs[0]);
    outputs_close(&got, expected, 1e-9)
        .unwrap_or_else(|e| panic!("{}: pass subset broke semantics: {e}", bench.id));
    out.cycles.total
}

fn main() {
    let stages: &[(&str, Passes)] = &[
        (
            "loops",
            Passes {
                loops: true,
                arrays: false,
                fuse: false,
                forward: false,
            },
        ),
        (
            "+arrays",
            Passes {
                loops: true,
                arrays: true,
                fuse: false,
                forward: false,
            },
        ),
        (
            "+fuse",
            Passes {
                loops: true,
                arrays: true,
                fuse: true,
                forward: false,
            },
        ),
        (
            "+forward",
            Passes {
                loops: true,
                arrays: true,
                fuse: true,
                forward: true,
            },
        ),
    ];
    let mut rows = Vec::new();
    for b in SUITE {
        let n = match b.id {
            "matmul" => 16,
            "fft" => 256,
            _ => 512,
        };
        // The scalar baseline uses the library pipeline directly.
        let base = matic::Compiler::new()
            .opt_level(OptLevel::baseline())
            .compile(b.source, b.entry, &b.arg_types(n))
            .expect("baseline compiles");
        let inputs = b.inputs(n, 1);
        let base_cycles = base
            .simulate(inputs.iter().map(to_sim).collect())
            .expect("baseline sim")
            .cycles
            .total;
        let mut row = vec![b.id.to_string()];
        for (_, p) in stages {
            let c = cycles_with(b, n, *p);
            row.push(format!("{:.2}x", base_cycles as f64 / c as f64));
        }
        rows.push(row);
    }
    println!("Pass ablation: cumulative speedup over the scalar baseline as");
    println!("vectorizer passes are enabled left to right (dsp16, W=8)");
    println!();
    let headers: Vec<String> = std::iter::once("bench".to_string())
        .chain(stages.iter().map(|(l, _)| l.to_string()))
        .collect();
    let refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&refs, &rows));
    println!("Reading: `loops` alone covers explicit-loop kernels (fir/xcorr);");
    println!("`arrays` adds MATLAB's vectorized style (cmult/fft); `fuse` turns");
    println!("mul+sum into single MACs (matmul); `forward` removes the slice");
    println!("copies the vectorized style materializes (fft).");
}
