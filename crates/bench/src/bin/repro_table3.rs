//! **Table 3 — compile-time breakdown of the flow.**
//!
//! Wall-clock time per pipeline stage (parse, sema, lower+optimize,
//! vectorize, C emission) for each benchmark. Regenerate with:
//! `cargo run -p matic-bench --bin repro_table3 --release`

use matic::{CodegenOptions, IsaSpec};
use matic_bench::render_table;
use matic_benchkit::SUITE;
use std::time::Instant;

fn micros(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

fn main() {
    const REPS: u32 = 50;
    let mut rows = Vec::new();
    for b in SUITE {
        let args = b.arg_types(b.default_n);

        let t0 = Instant::now();
        let mut parsed = None;
        for _ in 0..REPS {
            let (p, d) = matic::parse(b.source);
            assert!(!d.has_errors());
            parsed = Some(p);
        }
        let t_parse = t0.elapsed() / REPS;
        let program = parsed.expect("parsed");

        let t0 = Instant::now();
        let mut analysis = None;
        for _ in 0..REPS {
            analysis = Some(matic_sema::analyze(&program, b.entry, &args));
        }
        let t_sema = t0.elapsed() / REPS;
        let analysis = analysis.expect("analyzed");

        let t0 = Instant::now();
        let mut lowered = None;
        for _ in 0..REPS {
            let (mut mir, d) = matic_mir::lower_program(&program, &analysis);
            assert!(!d.has_errors());
            matic_mir::optimize_program(&mut mir);
            lowered = Some(mir);
        }
        let t_lower = t0.elapsed() / REPS;
        let mir = lowered.expect("lowered");

        let t0 = Instant::now();
        let mut vectorized = None;
        for _ in 0..REPS {
            let mut m = mir.clone();
            matic_vectorize::vectorize_program(&mut m);
            vectorized = Some(m);
        }
        let t_vec = t0.elapsed() / REPS;
        let vmir = vectorized.expect("vectorized");

        let backend = matic_codegen::CBackend::new(IsaSpec::dsp16(), CodegenOptions::default());
        let t0 = Instant::now();
        let mut emitted = 0usize;
        for _ in 0..REPS {
            let m = backend.generate(&vmir).expect("codegen ok");
            emitted = m.source.len();
        }
        let t_emit = t0.elapsed() / REPS;

        rows.push(vec![
            b.id.to_string(),
            micros(t_parse),
            micros(t_sema),
            micros(t_lower),
            micros(t_vec),
            micros(t_emit),
            emitted.to_string(),
        ]);
    }
    println!("Table 3: compile-time per stage (microseconds, mean of {REPS} runs)");
    println!();
    println!(
        "{}",
        render_table(
            &[
                "bench",
                "parse",
                "sema",
                "lower+opt",
                "vectorize",
                "emit-C",
                "C-bytes"
            ],
            &rows
        )
    );
}
