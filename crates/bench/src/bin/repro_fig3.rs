//! **Fig. 3 — retargetability: speedup vs. SIMD width.**
//!
//! The same MATLAB sources, recompiled against parameterized ISA
//! descriptions that differ only in vector width. The paper's central
//! claim is that the instruction set is a *parameter*; this figure shows
//! the compiler exploiting each variant without source changes.
//! Regenerate with: `cargo run -p matic-bench --bin repro_fig3 [--quick]`

use matic::{IsaSpec, OptLevel};
use matic_bench::{measure, par_map, render_table, speedup};
use matic_benchkit::SUITE;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let widths = [1usize, 2, 4, 8, 16];
    // Flat (benchmark, N, target, opt-level) cells: per benchmark, the
    // fixed scalar baseline plus one full-opt cell per vector width.
    let cells: Vec<_> = SUITE
        .iter()
        .flat_map(|b| {
            let n = if quick {
                match b.id {
                    "matmul" => 8,
                    "fft" => 64,
                    _ => 128,
                }
            } else {
                b.default_n
            };
            std::iter::once((b, n, IsaSpec::dsp16(), OptLevel::baseline())).chain(
                widths
                    .iter()
                    .map(move |&w| (b, n, IsaSpec::with_width(w), OptLevel::full())),
            )
        })
        .collect();
    let measured = par_map(&cells, |(b, n, spec, opt)| {
        measure(b, *n, spec.clone(), *opt, 1)
    });
    let per_bench = 1 + widths.len();
    let mut rows = Vec::new();
    for group in measured.chunks(per_bench) {
        let base = &group[0];
        let mut row = vec![base.bench.to_string()];
        for m in &group[1..] {
            row.push(format!("{:.2}x", speedup(base.cycles, m.cycles)));
        }
        rows.push(row);
    }
    println!("Fig. 3: speedup over the scalar baseline vs. SIMD vector width");
    println!("(same sources, same compiler; only the ISA description changes)");
    println!();
    let headers: Vec<String> = std::iter::once("bench".to_string())
        .chain(widths.iter().map(|w| format!("W={w}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&header_refs, &rows));
    println!("Expected shape: data-parallel kernels scale with W until memory");
    println!("traffic dominates; IIR stays near 1x at every width (serial recurrence).");
}
