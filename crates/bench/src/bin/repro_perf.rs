//! **Simulator throughput** — wall-clock performance of the virtual ASIP
//! itself, not of the code it models.
//!
//! Times repeated [`matic::Compiled::simulator`] runs over the whole
//! benchmark suite at both opt levels and all three execution engines
//! (tree-walk, linear, native), writing the results to
//! `BENCH_simulator.json` (median ns per run, plus simulated-cycles per
//! host-second as the throughput figure). Simulated cycle counts are
//! deterministic and must agree across engines; only the host timings
//! vary run to run. Regenerate with:
//! `cargo run --release -p matic-bench --bin repro_perf`
//!
//! **Regression gate**: when a committed `BENCH_simulator.json` already
//! exists, the run compares per-cell throughput against it and prints a
//! delta table. Every cell in the committed baseline must be present in
//! the fresh run — a missing cell fails the gate loudly instead of
//! silently shrinking the comparison. A geomean throughput drop beyond
//! 15% exits non-zero — wide enough to absorb host noise on the small
//! cells, tight enough to catch a real simulator slowdown. The new
//! numbers are written out regardless, so `git diff` shows exactly what
//! changed.

use matic::{Compiler, Engine, OptLevel};
use matic_bench::render_table;
use matic_benchkit::{to_sim, SUITE};
use matic_isa::json::{parse, Json};
use std::process::ExitCode;
use std::time::Instant;

/// Allowed geomean throughput regression vs. the committed baseline.
const MAX_GEOMEAN_REGRESSION: f64 = 0.15;

/// Simulation sizes kept small enough that one run is well under a
/// millisecond for most kernels (matches `benches/simulator.rs`).
fn small_n(id: &str) -> usize {
    match id {
        "matmul" => 8,
        "fft" => 64,
        _ => 128,
    }
}

struct Timing {
    bench: &'static str,
    opt: &'static str,
    engine: Engine,
    n: usize,
    cycles: u64,
    median_ns: u64,
    cycles_per_sec: f64,
}

impl Timing {
    fn cell(&self) -> String {
        format!("{}_{}_{}", self.bench, self.opt, self.engine)
    }
}

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times one (bench, opt) cell on every engine. The engines must agree on
/// the simulated cycle count bit-for-bit — a cheap standing differential
/// check on every perf run.
fn time_cell(bench: &matic_benchkit::Benchmark, opt: OptLevel, label: &'static str) -> Vec<Timing> {
    let n = small_n(bench.id);
    let compiled = Compiler::new()
        .opt_level(opt)
        .compile(bench.source, bench.entry, &bench.arg_types(n))
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.id));
    let inputs: Vec<_> = bench.inputs(n, 3).iter().map(to_sim).collect();
    let mut cycles_by_engine = Vec::new();
    let mut timings = Vec::new();
    for engine in Engine::ALL {
        let sim = compiled.simulator().with_engine(engine);
        // Warm up (also forces the one-time decode/fuse) and pin cycles.
        let cycles = sim.run(inputs.clone()).expect("sim ok").cycles.total;
        cycles_by_engine.push(cycles);
        let mut samples = Vec::with_capacity(40);
        let budget = Instant::now();
        while samples.len() < 40 && (samples.len() < 10 || budget.elapsed().as_millis() < 300) {
            let t = Instant::now();
            let out = sim.run(inputs.clone()).expect("sim ok");
            samples.push(t.elapsed().as_nanos() as u64);
            assert_eq!(out.cycles.total, cycles, "simulation must be deterministic");
        }
        let med = median_ns(&mut samples);
        timings.push(Timing {
            bench: bench.id,
            opt: label,
            engine,
            n,
            cycles,
            median_ns: med,
            cycles_per_sec: cycles as f64 / (med.max(1) as f64 / 1e9),
        });
    }
    assert!(
        cycles_by_engine.windows(2).all(|w| w[0] == w[1]),
        "{}_{label}: engines disagree on cycle count: {cycles_by_engine:?}",
        bench.id
    );
    timings
}

/// Reads the committed baseline's per-cell throughput, keyed by
/// `bench_opt_engine`. Baselines written before the engine column existed
/// measured the then-default linear engine, so a missing `engine` field
/// maps to `linear`. `None` when no baseline exists (first run on a
/// machine).
fn read_baseline(path: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = parse(&text).ok()?;
    let Some(Json::Arr(results)) = doc.get("results") else {
        return None;
    };
    let cells: Vec<(String, f64)> = results
        .iter()
        .filter_map(|r| {
            let bench = r.get("bench")?.as_str()?;
            let opt = r.get("opt")?.as_str()?;
            let engine = r
                .get("engine")
                .and_then(|e| e.as_str())
                .unwrap_or("linear")
                .to_string();
            let tput = r.get("sim_cycles_per_sec")?.as_f64()?;
            (tput > 0.0).then(|| (format!("{bench}_{opt}_{engine}"), tput))
        })
        .collect();
    (!cells.is_empty()).then_some(cells)
}

/// Compares new throughput against the committed baseline; prints the
/// delta table and returns `Err` on a geomean regression beyond the gate
/// or when a baseline cell is missing from the fresh run.
fn gate_against_baseline(timings: &[Timing], baseline: &[(String, f64)]) -> Result<(), String> {
    // Every committed cell must have a fresh counterpart: a silently
    // dropped cell would shrink the comparison and could hide a
    // regression (or a broken benchmark).
    let missing: Vec<&str> = baseline
        .iter()
        .map(|(k, _)| k.as_str())
        .filter(|k| !timings.iter().any(|t| t.cell() == *k))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "baseline cells missing from this run: {}",
            missing.join(", ")
        ));
    }
    let mut rows = Vec::new();
    let mut log_ratio_sum = 0.0f64;
    let mut compared = 0usize;
    for t in timings {
        let cell = t.cell();
        let Some((_, old)) = baseline.iter().find(|(k, _)| *k == cell) else {
            rows.push(vec![
                cell,
                "-".into(),
                format!("{:.1}", t.cycles_per_sec / 1e6),
                "new".into(),
            ]);
            continue;
        };
        let ratio = t.cycles_per_sec / old;
        log_ratio_sum += ratio.ln();
        compared += 1;
        rows.push(vec![
            cell,
            format!("{:.1}", old / 1e6),
            format!("{:.1}", t.cycles_per_sec / 1e6),
            format!("{:+.1}%", (ratio - 1.0) * 100.0),
        ]);
    }
    println!("throughput vs committed baseline (Mcyc/s):");
    println!();
    println!(
        "{}",
        render_table(&["cell", "baseline", "now", "delta"], &rows)
    );
    if compared == 0 {
        println!("no comparable cells in baseline; gate skipped");
        return Ok(());
    }
    let geomean = (log_ratio_sum / compared as f64).exp();
    println!(
        "geomean throughput ratio: {:.3}x over {compared} cells (gate: >= {:.2}x)",
        geomean,
        1.0 - MAX_GEOMEAN_REGRESSION
    );
    if geomean < 1.0 - MAX_GEOMEAN_REGRESSION {
        return Err(format!(
            "geomean throughput regressed {:.1}% vs baseline (allowed {:.0}%)",
            (1.0 - geomean) * 100.0,
            MAX_GEOMEAN_REGRESSION * 100.0
        ));
    }
    Ok(())
}

/// Prints the native engine's speedup per cell against whatever engine the
/// committed baseline measured (legacy baselines: linear). This is the
/// headline number for the fused direct-threaded engine.
fn print_native_speedup(timings: &[Timing], baseline: &[(String, f64)]) {
    let mut rows = Vec::new();
    let mut log_sum = 0.0f64;
    let mut count = 0usize;
    for t in timings.iter().filter(|t| t.engine == Engine::Native) {
        let committed = baseline
            .iter()
            .find(|(k, _)| *k == format!("{}_{}_linear", t.bench, t.opt))
            .or_else(|| {
                baseline
                    .iter()
                    .find(|(k, _)| *k == format!("{}_{}_native", t.bench, t.opt))
            });
        let Some((_, old)) = committed else { continue };
        let ratio = t.cycles_per_sec / old;
        log_sum += ratio.ln();
        count += 1;
        rows.push(vec![
            format!("{}_{}", t.bench, t.opt),
            format!("{:.1}", old / 1e6),
            format!("{:.1}", t.cycles_per_sec / 1e6),
            format!("{ratio:.2}x"),
        ]);
    }
    if count == 0 {
        return;
    }
    println!();
    println!("native engine vs committed baseline (Mcyc/s):");
    println!();
    println!(
        "{}",
        render_table(&["cell", "committed", "native", "speedup"], &rows)
    );
    println!(
        "native speedup geomean: {:.2}x over {count} cells",
        (log_sum / count as f64).exp()
    );
}

fn main() -> ExitCode {
    let mut timings = Vec::new();
    for b in SUITE {
        timings.extend(time_cell(b, OptLevel::baseline(), "base"));
        timings.extend(time_cell(b, OptLevel::full(), "opt"));
    }
    let rows: Vec<Vec<String>> = timings
        .iter()
        .map(|t| {
            vec![
                t.cell(),
                t.n.to_string(),
                t.cycles.to_string(),
                t.median_ns.to_string(),
                format!("{:.1}", t.cycles_per_sec / 1e6),
            ]
        })
        .collect();
    println!("Simulator throughput (reusable-machine API, per engine)");
    println!();
    println!(
        "{}",
        render_table(
            &["cell", "N", "sim-cycles", "median-ns/run", "Mcyc/s"],
            &rows
        )
    );
    let results: Vec<Json> = timings
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("bench".into(), Json::Str(t.bench.into())),
                ("opt".into(), Json::Str(t.opt.into())),
                ("engine".into(), Json::Str(t.engine.to_string())),
                ("n".into(), Json::Num(t.n as f64)),
                ("cycles".into(), Json::Num(t.cycles as f64)),
                ("median_ns".into(), Json::Num(t.median_ns as f64)),
                (
                    "sim_cycles_per_sec".into(),
                    Json::Num(t.cycles_per_sec.round()),
                ),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("generated_by".into(), Json::Str("repro_perf".into())),
        ("group".into(), Json::Str("asip_simulation".into())),
        ("results".into(), Json::Arr(results)),
    ]);
    let path = "BENCH_simulator.json";
    let baseline = read_baseline(path);
    std::fs::write(path, doc.pretty() + "\n").expect("write BENCH_simulator.json");
    println!("wrote {path}");
    if let Some(baseline) = baseline {
        println!();
        let gate = gate_against_baseline(&timings, &baseline);
        print_native_speedup(&timings, &baseline);
        if let Err(e) = gate {
            eprintln!("repro_perf: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        println!("no committed baseline found; regression gate skipped");
    }
    ExitCode::SUCCESS
}
