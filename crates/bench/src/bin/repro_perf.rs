//! **Simulator throughput** — wall-clock performance of the virtual ASIP
//! itself, not of the code it models.
//!
//! Times repeated [`matic::Compiled::simulator`] runs over the whole
//! benchmark suite at both opt levels and writes the results to
//! `BENCH_simulator.json` (median ns per run, plus simulated-cycles per
//! host-second as the throughput figure). Simulated cycle counts are
//! deterministic; only the host timings vary run to run. Regenerate with:
//! `cargo run --release -p matic-bench --bin repro_perf`
//!
//! **Regression gate**: when a committed `BENCH_simulator.json` already
//! exists, the run compares per-cell throughput against it and prints a
//! delta table. A geomean throughput drop beyond 15% exits non-zero —
//! wide enough to absorb host noise on the small cells, tight enough to
//! catch a real simulator slowdown. The new numbers are written out
//! regardless, so `git diff` shows exactly what changed.

use matic::{Compiler, OptLevel};
use matic_bench::render_table;
use matic_benchkit::{to_sim, SUITE};
use matic_isa::json::{parse, Json};
use std::process::ExitCode;
use std::time::Instant;

/// Allowed geomean throughput regression vs. the committed baseline.
const MAX_GEOMEAN_REGRESSION: f64 = 0.15;

/// Simulation sizes kept small enough that one run is well under a
/// millisecond for most kernels (matches `benches/simulator.rs`).
fn small_n(id: &str) -> usize {
    match id {
        "matmul" => 8,
        "fft" => 64,
        _ => 128,
    }
}

struct Timing {
    bench: &'static str,
    opt: &'static str,
    n: usize,
    cycles: u64,
    median_ns: u64,
    cycles_per_sec: f64,
}

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_cell(bench: &matic_benchkit::Benchmark, opt: OptLevel, label: &'static str) -> Timing {
    let n = small_n(bench.id);
    let compiled = Compiler::new()
        .opt_level(opt)
        .compile(bench.source, bench.entry, &bench.arg_types(n))
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.id));
    let inputs: Vec<_> = bench.inputs(n, 3).iter().map(to_sim).collect();
    let sim = compiled.simulator();
    // Warm up (also forces the one-time decode) and pin the cycle count.
    let cycles = sim.run(inputs.clone()).expect("sim ok").cycles.total;
    let mut samples = Vec::with_capacity(40);
    let budget = Instant::now();
    while samples.len() < 40 && (samples.len() < 10 || budget.elapsed().as_millis() < 300) {
        let t = Instant::now();
        let out = sim.run(inputs.clone()).expect("sim ok");
        samples.push(t.elapsed().as_nanos() as u64);
        assert_eq!(out.cycles.total, cycles, "simulation must be deterministic");
    }
    let med = median_ns(&mut samples);
    Timing {
        bench: bench.id,
        opt: label,
        n,
        cycles,
        median_ns: med,
        cycles_per_sec: cycles as f64 / (med.max(1) as f64 / 1e9),
    }
}

/// Reads the committed baseline's per-cell throughput, keyed by
/// `bench_opt`. `None` when no baseline exists (first run on a machine).
fn read_baseline(path: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = parse(&text).ok()?;
    let Some(Json::Arr(results)) = doc.get("results") else {
        return None;
    };
    let cells: Vec<(String, f64)> = results
        .iter()
        .filter_map(|r| {
            let bench = r.get("bench")?.as_str()?;
            let opt = r.get("opt")?.as_str()?;
            let tput = r.get("sim_cycles_per_sec")?.as_f64()?;
            (tput > 0.0).then(|| (format!("{bench}_{opt}"), tput))
        })
        .collect();
    (!cells.is_empty()).then_some(cells)
}

/// Compares new throughput against the committed baseline; prints the
/// delta table and returns `Err` on a geomean regression beyond the gate.
fn gate_against_baseline(timings: &[Timing], baseline: &[(String, f64)]) -> Result<(), String> {
    let mut rows = Vec::new();
    let mut log_ratio_sum = 0.0f64;
    let mut compared = 0usize;
    for t in timings {
        let cell = format!("{}_{}", t.bench, t.opt);
        let Some((_, old)) = baseline.iter().find(|(k, _)| *k == cell) else {
            rows.push(vec![
                cell,
                "-".into(),
                format!("{:.1}", t.cycles_per_sec / 1e6),
                "new".into(),
            ]);
            continue;
        };
        let ratio = t.cycles_per_sec / old;
        log_ratio_sum += ratio.ln();
        compared += 1;
        rows.push(vec![
            cell,
            format!("{:.1}", old / 1e6),
            format!("{:.1}", t.cycles_per_sec / 1e6),
            format!("{:+.1}%", (ratio - 1.0) * 100.0),
        ]);
    }
    println!("throughput vs committed baseline (Mcyc/s):");
    println!();
    println!(
        "{}",
        render_table(&["cell", "baseline", "now", "delta"], &rows)
    );
    if compared == 0 {
        println!("no comparable cells in baseline; gate skipped");
        return Ok(());
    }
    let geomean = (log_ratio_sum / compared as f64).exp();
    println!(
        "geomean throughput ratio: {:.3}x over {compared} cells (gate: >= {:.2}x)",
        geomean,
        1.0 - MAX_GEOMEAN_REGRESSION
    );
    if geomean < 1.0 - MAX_GEOMEAN_REGRESSION {
        return Err(format!(
            "geomean throughput regressed {:.1}% vs baseline (allowed {:.0}%)",
            (1.0 - geomean) * 100.0,
            MAX_GEOMEAN_REGRESSION * 100.0
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut timings = Vec::new();
    for b in SUITE {
        timings.push(time_cell(b, OptLevel::baseline(), "base"));
        timings.push(time_cell(b, OptLevel::full(), "opt"));
    }
    let rows: Vec<Vec<String>> = timings
        .iter()
        .map(|t| {
            vec![
                format!("{}_{}", t.bench, t.opt),
                t.n.to_string(),
                t.cycles.to_string(),
                t.median_ns.to_string(),
                format!("{:.1}", t.cycles_per_sec / 1e6),
            ]
        })
        .collect();
    println!("Simulator throughput (pre-decoded engine, reusable-machine API)");
    println!();
    println!(
        "{}",
        render_table(
            &["cell", "N", "sim-cycles", "median-ns/run", "Mcyc/s"],
            &rows
        )
    );
    let results: Vec<Json> = timings
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("bench".into(), Json::Str(t.bench.into())),
                ("opt".into(), Json::Str(t.opt.into())),
                ("n".into(), Json::Num(t.n as f64)),
                ("cycles".into(), Json::Num(t.cycles as f64)),
                ("median_ns".into(), Json::Num(t.median_ns as f64)),
                (
                    "sim_cycles_per_sec".into(),
                    Json::Num(t.cycles_per_sec.round()),
                ),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("generated_by".into(), Json::Str("repro_perf".into())),
        ("group".into(), Json::Str("asip_simulation".into())),
        ("results".into(), Json::Arr(results)),
    ]);
    let path = "BENCH_simulator.json";
    let baseline = read_baseline(path);
    std::fs::write(path, doc.pretty() + "\n").expect("write BENCH_simulator.json");
    println!("wrote {path}");
    if let Some(baseline) = baseline {
        println!();
        if let Err(e) = gate_against_baseline(&timings, &baseline) {
            eprintln!("repro_perf: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        println!("no committed baseline found; regression gate skipped");
    }
    ExitCode::SUCCESS
}
