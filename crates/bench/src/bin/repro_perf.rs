//! **Simulator throughput** — wall-clock performance of the virtual ASIP
//! itself, not of the code it models.
//!
//! Times repeated [`matic::Compiled::simulator`] runs over the whole
//! benchmark suite at both opt levels and writes the results to
//! `BENCH_simulator.json` (median ns per run, plus simulated-cycles per
//! host-second as the throughput figure). Simulated cycle counts are
//! deterministic; only the host timings vary run to run. Regenerate with:
//! `cargo run --release -p matic-bench --bin repro_perf`

use matic::{Compiler, OptLevel};
use matic_bench::render_table;
use matic_benchkit::{to_sim, SUITE};
use matic_isa::json::Json;
use std::time::Instant;

/// Simulation sizes kept small enough that one run is well under a
/// millisecond for most kernels (matches `benches/simulator.rs`).
fn small_n(id: &str) -> usize {
    match id {
        "matmul" => 8,
        "fft" => 64,
        _ => 128,
    }
}

struct Timing {
    bench: &'static str,
    opt: &'static str,
    n: usize,
    cycles: u64,
    median_ns: u64,
    cycles_per_sec: f64,
}

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_cell(bench: &matic_benchkit::Benchmark, opt: OptLevel, label: &'static str) -> Timing {
    let n = small_n(bench.id);
    let compiled = Compiler::new()
        .opt_level(opt)
        .compile(bench.source, bench.entry, &bench.arg_types(n))
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.id));
    let inputs: Vec<_> = bench.inputs(n, 3).iter().map(to_sim).collect();
    let sim = compiled.simulator();
    // Warm up (also forces the one-time decode) and pin the cycle count.
    let cycles = sim.run(inputs.clone()).expect("sim ok").cycles.total;
    let mut samples = Vec::with_capacity(40);
    let budget = Instant::now();
    while samples.len() < 40 && (samples.len() < 10 || budget.elapsed().as_millis() < 300) {
        let t = Instant::now();
        let out = sim.run(inputs.clone()).expect("sim ok");
        samples.push(t.elapsed().as_nanos() as u64);
        assert_eq!(out.cycles.total, cycles, "simulation must be deterministic");
    }
    let med = median_ns(&mut samples);
    Timing {
        bench: bench.id,
        opt: label,
        n,
        cycles,
        median_ns: med,
        cycles_per_sec: cycles as f64 / (med.max(1) as f64 / 1e9),
    }
}

fn main() {
    let mut timings = Vec::new();
    for b in SUITE {
        timings.push(time_cell(b, OptLevel::baseline(), "base"));
        timings.push(time_cell(b, OptLevel::full(), "opt"));
    }
    let rows: Vec<Vec<String>> = timings
        .iter()
        .map(|t| {
            vec![
                format!("{}_{}", t.bench, t.opt),
                t.n.to_string(),
                t.cycles.to_string(),
                t.median_ns.to_string(),
                format!("{:.1}", t.cycles_per_sec / 1e6),
            ]
        })
        .collect();
    println!("Simulator throughput (pre-decoded engine, reusable-machine API)");
    println!();
    println!(
        "{}",
        render_table(
            &["cell", "N", "sim-cycles", "median-ns/run", "Mcyc/s"],
            &rows
        )
    );
    let results: Vec<Json> = timings
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("bench".into(), Json::Str(t.bench.into())),
                ("opt".into(), Json::Str(t.opt.into())),
                ("n".into(), Json::Num(t.n as f64)),
                ("cycles".into(), Json::Num(t.cycles as f64)),
                ("median_ns".into(), Json::Num(t.median_ns as f64)),
                (
                    "sim_cycles_per_sec".into(),
                    Json::Num(t.cycles_per_sec.round()),
                ),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("generated_by".into(), Json::Str("repro_perf".into())),
        ("group".into(), Json::Str("asip_simulation".into())),
        ("results".into(), Json::Arr(results)),
    ]);
    let path = "BENCH_simulator.json";
    std::fs::write(path, doc.pretty() + "\n").expect("write BENCH_simulator.json");
    println!("wrote {path}");
}
