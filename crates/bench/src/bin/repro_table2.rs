//! **Table 2 / Fig. 2 — the headline result.**
//!
//! Cycle counts of the proposed compiler's code vs. the MATLAB-Coder-like
//! baseline on the `dsp16` ASIP, per benchmark, plus the speedup series
//! (the paper reports 2×–30× across six DSP benchmarks). Regenerate with:
//! `cargo run -p matic-bench --bin repro_table2 [--quick]`

use matic::{IsaSpec, OptLevel};
use matic_bench::{measure, par_map, render_table, speedup};
use matic_benchkit::SUITE;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Flat (benchmark, N, opt-level) cells, measured in parallel.
    let cells: Vec<_> = SUITE
        .iter()
        .flat_map(|b| {
            let n = if quick {
                match b.id {
                    "matmul" => 8,
                    "fft" => 64,
                    _ => 128,
                }
            } else {
                b.default_n
            };
            [(b, n, OptLevel::baseline()), (b, n, OptLevel::full())]
        })
        .collect();
    let measured = par_map(&cells, |&(b, n, opt)| {
        measure(b, n, IsaSpec::dsp16(), opt, 1)
    });
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (pair, cell) in measured.chunks(2).zip(cells.chunks(2)) {
        let (base, opt) = (&pair[0], &pair[1]);
        let (b, n, _) = cell[0];
        let s = speedup(base.cycles, opt.cycles);
        series.push((b.id, s));
        rows.push(vec![
            b.id.to_string(),
            n.to_string(),
            base.cycles.to_string(),
            opt.cycles.to_string(),
            format!("{s:.2}x"),
            format!("{}", opt.vector_cycles),
            format!("{}", opt.complex_cycles),
        ]);
    }
    println!("Table 2: cycle counts on the dsp16 ASIP (baseline = MATLAB-Coder-like scalar C,");
    println!("proposed = custom-instruction compiler; outputs verified against the interpreter)");
    println!();
    println!(
        "{}",
        render_table(
            &[
                "bench",
                "N",
                "baseline-cycles",
                "proposed-cycles",
                "speedup",
                "simd-cyc",
                "cplx-cyc"
            ],
            &rows
        )
    );
    println!("Fig. 2: speedup per benchmark (bar-chart series)");
    for (id, s) in &series {
        let bar = "#".repeat((s * 2.0).round() as usize);
        println!("  {id:>7} {s:6.2}x |{bar}");
    }
    let min = series.iter().map(|(_, s)| *s).fold(f64::MAX, f64::min);
    let max = series.iter().map(|(_, s)| *s).fold(f64::MIN, f64::max);
    println!();
    println!("speedup range: {min:.2}x .. {max:.2}x  (paper: 2x .. 30x)");
}
