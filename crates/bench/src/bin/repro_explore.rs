//! **Design-space exploration** — sweeps the candidate-ISA grid over the
//! benchmark suite and reports the cycles-vs-area Pareto frontiers.
//!
//! Modes:
//!
//! * `repro_explore`: the full default grid (70 candidates) over all six
//!   benchmarks at exploration problem sizes; writes
//!   `EXPLORE_frontier.json`.
//! * `repro_explore --quick`: the reduced CI grid (8 candidates).
//! * `repro_explore --json <path>`: output path override.
//!
//! The binary is self-validating: after writing the document it re-reads
//! and structurally validates it ([`matic_explore::validate_explore_json`]
//! recomputes every frontier from the raw points), and asserts the
//! paper's headline qualitative result — wherever accelerated candidates
//! exist, the best of them strictly outperforms the pure scalar baseline
//! on cycles. Any violation exits non-zero.

use matic_explore::{explore, ExploreConfig, GridConfig, EXPLORE_SCHEMA};
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExploreConfig::default();
    let mut path = "EXPLORE_frontier.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cfg.grid = GridConfig::quick(),
            "--json" => {
                path = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--json expects a path".to_string())?;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let result = explore(&cfg)?;
    print!("{}", result.render_text());
    let mut text = result.to_json().pretty();
    text.push('\n');
    std::fs::write(&path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("\nwrote {path}");

    // Trust nothing: re-read what was written and validate structurally.
    let written = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let summary = matic_explore::validate_explore_json(&written)
        .map_err(|e| format!("emitted document failed validation ({path}): {e}"))?;
    if !summary.scalar_outperformed {
        return Err(
            "scalar baseline was not outperformed by any accelerated candidate — \
             the acceleration result regressed"
                .to_string(),
        );
    }
    println!(
        "validated {path}: {} benchmarks x {} candidates, frontiers {:?} ({EXPLORE_SCHEMA})",
        summary.benchmarks,
        summary.candidates,
        summary
            .frontier_sizes
            .iter()
            .map(|(b, k)| format!("{b}:{k}"))
            .collect::<Vec<_>>(),
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro_explore: {e}");
            ExitCode::FAILURE
        }
    }
}
