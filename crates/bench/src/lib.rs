//! # matic-bench
//!
//! Shared measurement machinery for the reproduction binaries
//! (`repro_table1` … `repro_fig4`), which regenerate the tables and
//! figures of the DATE'16 evaluation on the virtual ASIP.

use matic::{Compiled, Compiler, IsaSpec, OptLevel};
use matic_benchkit::{outputs_close, sim_to_cvalue, to_sim, Benchmark};

// The fan-out/report helpers live with the design-space explorer (its
// heaviest user); re-exported here so the repro binaries keep their
// `matic_bench::{par_map, render_table}` imports.
pub use matic_explore::{par_map, render_table};

/// One measured (benchmark, target, opt-level) cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id.
    pub bench: &'static str,
    /// Target name.
    pub target: String,
    /// Total cycles of one kernel invocation.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Cycles in SIMD instruction classes.
    pub vector_cycles: u64,
    /// Cycles in complex-arithmetic instruction classes.
    pub complex_cycles: u64,
    /// What the vectorizer recognized.
    pub report: matic::VectorizeReport,
}

/// Compiles and simulates one benchmark, verifying the outputs against
/// the reference interpreter before trusting the cycle count.
///
/// # Panics
///
/// Panics when compilation, simulation or verification fails — a repro
/// binary must never print numbers from a kernel that computed garbage.
pub fn measure(
    bench: &Benchmark,
    n: usize,
    spec: IsaSpec,
    opt: OptLevel,
    seed: u64,
) -> Measurement {
    let compiled: Compiled = Compiler::new()
        .target(spec)
        .opt_level(opt)
        .compile(bench.source, bench.entry, &bench.arg_types(n))
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.id));
    let inputs = bench.inputs(n, seed);
    let expected = &bench
        .reference_outputs(&inputs)
        .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", bench.id))[0];
    let outcome = compiled
        .simulate(inputs.iter().map(to_sim).collect())
        .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", bench.id));
    let got = sim_to_cvalue(&outcome.outputs[0]);
    outputs_close(&got, expected, 1e-9).unwrap_or_else(|e| {
        panic!(
            "{}: output mismatch — refusing to report cycles: {e}",
            bench.id
        )
    });
    Measurement {
        bench: bench.id,
        target: compiled.spec.name.clone(),
        cycles: outcome.cycles.total,
        instructions: outcome.cycles.instructions,
        vector_cycles: outcome.cycles.vector_cycles(),
        complex_cycles: outcome.cycles.complex_cycles(),
        report: compiled.report,
    }
}

/// Formats one speedup with two decimals.
pub fn speedup(baseline: u64, optimized: u64) -> f64 {
    baseline as f64 / optimized.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_benchkit::benchmark;

    #[test]
    fn measure_verifies_and_counts() {
        let b = benchmark("fir").unwrap();
        let m = measure(b, 64, IsaSpec::dsp16(), OptLevel::full(), 5);
        assert!(m.cycles > 0);
        assert!(m.instructions > 0);
        assert!(m.vector_cycles > 0, "fir should use SIMD");
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(100, 0), 100.0);
    }

    // `par_map`/`render_table` unit tests live with their implementation
    // in matic-explore; here we only pin that measurement cells stay safe
    // to fan out.
    #[test]
    fn par_map_measures_like_sequential() {
        // Measurement cells must be safe to fan out: same cycle counts as
        // a sequential loop, in the same order.
        let b = benchmark("fir").unwrap();
        let cells = [OptLevel::baseline(), OptLevel::full()];
        let par = par_map(&cells, |&opt| {
            measure(b, 64, IsaSpec::dsp16(), opt, 5).cycles
        });
        let seq: Vec<u64> = cells
            .iter()
            .map(|&opt| measure(b, 64, IsaSpec::dsp16(), opt, 5).cycles)
            .collect();
        assert_eq!(par, seq);
    }
}
