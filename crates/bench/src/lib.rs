//! # matic-bench
//!
//! Shared measurement machinery for the reproduction binaries
//! (`repro_table1` … `repro_fig4`), which regenerate the tables and
//! figures of the DATE'16 evaluation on the virtual ASIP.

use matic::{Compiled, Compiler, IsaSpec, OptLevel};
use matic_benchkit::{outputs_close, sim_to_cvalue, to_sim, Benchmark};

/// One measured (benchmark, target, opt-level) cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id.
    pub bench: &'static str,
    /// Target name.
    pub target: String,
    /// Total cycles of one kernel invocation.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Cycles in SIMD instruction classes.
    pub vector_cycles: u64,
    /// Cycles in complex-arithmetic instruction classes.
    pub complex_cycles: u64,
    /// What the vectorizer recognized.
    pub report: matic::VectorizeReport,
}

/// Compiles and simulates one benchmark, verifying the outputs against
/// the reference interpreter before trusting the cycle count.
///
/// # Panics
///
/// Panics when compilation, simulation or verification fails — a repro
/// binary must never print numbers from a kernel that computed garbage.
pub fn measure(
    bench: &Benchmark,
    n: usize,
    spec: IsaSpec,
    opt: OptLevel,
    seed: u64,
) -> Measurement {
    let compiled: Compiled = Compiler::new()
        .target(spec)
        .opt_level(opt)
        .compile(bench.source, bench.entry, &bench.arg_types(n))
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.id));
    let inputs = bench.inputs(n, seed);
    let expected = &bench
        .reference_outputs(&inputs)
        .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", bench.id))[0];
    let outcome = compiled
        .simulate(inputs.iter().map(to_sim).collect())
        .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", bench.id));
    let got = sim_to_cvalue(&outcome.outputs[0]);
    outputs_close(&got, expected, 1e-9).unwrap_or_else(|e| {
        panic!(
            "{}: output mismatch — refusing to report cycles: {e}",
            bench.id
        )
    });
    Measurement {
        bench: bench.id,
        target: compiled.spec.name.clone(),
        cycles: outcome.cycles.total,
        instructions: outcome.cycles.instructions,
        vector_cycles: outcome.cycles.vector_cycles(),
        complex_cycles: outcome.cycles.complex_cycles(),
        report: compiled.report,
    }
}

/// Formats one speedup with two decimals.
pub fn speedup(baseline: u64, optimized: u64) -> f64 {
    baseline as f64 / optimized.max(1) as f64
}

/// Maps `f` over `items` on all available cores, preserving input order.
///
/// The repro binaries fan out over (benchmark, target, opt-level)
/// measurement cells that are independent of each other; this spreads
/// them over a scoped thread pool with a shared atomic work index, so a
/// slow cell (e.g. `xcorr` at full N) does not serialize the rest.
/// Worker threads build their simulation inputs locally — `Matrix`
/// payloads are `Rc`-backed and must not cross threads.
///
/// # Panics
///
/// Re-raises the first panic from any worker (a failed measurement must
/// still abort the whole run).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        done.push((i, f(item)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (k, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", c, width = widths[k]));
        }
        line.trim_end().to_string()
    };
    let mut out = String::new();
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_benchkit::benchmark;

    #[test]
    fn measure_verifies_and_counts() {
        let b = benchmark("fir").unwrap();
        let m = measure(b, 64, IsaSpec::dsp16(), OptLevel::full(), 5);
        assert!(m.cycles > 0);
        assert!(m.instructions > 0);
        assert!(m.vector_cycles > 0, "fir should use SIMD");
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(100, 0), 100.0);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let squared = par_map(&items, |&x| x * x);
        assert_eq!(squared, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_measures_like_sequential() {
        // Measurement cells must be safe to fan out: same cycle counts as
        // a sequential loop, in the same order.
        let b = benchmark("fir").unwrap();
        let cells = [OptLevel::baseline(), OptLevel::full()];
        let par = par_map(&cells, |&opt| {
            measure(b, 64, IsaSpec::dsp16(), opt, 5).cycles
        });
        let seq: Vec<u64> = cells
            .iter()
            .map(|&opt| measure(b, 64, IsaSpec::dsp16(), opt, 5).cycles)
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["bench", "cycles"],
            &[
                vec!["fir".into(), "123".into()],
                vec!["iir".into(), "45".into()],
            ],
        );
        assert!(t.contains("bench"));
        assert!(t.lines().count() >= 4);
    }
}
