//! Pareto-frontier extraction over (area, cycles) points.

/// Indices of the Pareto-optimal points of `points`, where each point is
/// `(area, cycles)` and both coordinates are minimized.
///
/// A point is on the frontier iff no other point *strictly dominates* it:
/// `q` dominates `p` when `q` is no worse on both axes and strictly
/// better on at least one. Exact ties on both axes therefore keep both
/// points — two candidates with identical cost and performance are
/// equally recommendable. Returned indices are in input order.
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            let (ai, ci) = points[i];
            !points
                .iter()
                .enumerate()
                .any(|(j, &(aj, cj))| j != i && aj <= ai && cj <= ci && (aj < ai || cj < ci))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_the_staircase() {
        // Area up, cycles down: every point trades one axis for the other.
        let pts = [(1.0, 100.0), (2.0, 50.0), (3.0, 25.0)];
        assert_eq!(pareto_frontier(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn drops_dominated_points() {
        let pts = [
            (1.0, 100.0), // frontier: cheapest
            (2.0, 50.0),  // frontier
            (2.5, 60.0),  // dominated by (2, 50)
            (3.0, 50.0),  // dominated by (2, 50): same cycles, more area
            (3.0, 20.0),  // frontier: fastest
        ];
        assert_eq!(pareto_frontier(&pts), vec![0, 1, 4]);
    }

    #[test]
    fn ties_keep_both_and_edge_cases_hold() {
        let pts = [(1.0, 10.0), (1.0, 10.0)];
        assert_eq!(pareto_frontier(&pts), vec![0, 1]);
        assert!(pareto_frontier(&[]).is_empty());
        assert_eq!(pareto_frontier(&[(5.0, 5.0)]), vec![0]);
        // The minimum-area point is always on the frontier (nothing can
        // strictly dominate it on area).
        let pts = [(1.0, 1000.0), (9.0, 1.0)];
        assert_eq!(pareto_frontier(&pts), vec![0, 1]);
    }
}
