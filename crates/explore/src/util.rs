//! Shared fan-out and reporting machinery: the scoped-thread parallel map
//! used to spread independent simulations over all cores, and the aligned
//! text-table renderer used by the terminal reports. (Re-exported by
//! `matic-bench` for the repro binaries.)

/// Maps `f` over `items` on all available cores, preserving input order.
///
/// The explorer (and the repro binaries) fan out over cells that are
/// independent of each other — (benchmark, candidate-ISA) simulations,
/// (benchmark, target, opt-level) measurements — and this spreads them
/// over a scoped thread pool with a shared atomic work index, so a slow
/// cell does not serialize the rest. Worker threads build their
/// simulation inputs locally — `Matrix` payloads are `Rc`-backed and must
/// not cross threads.
///
/// # Panics
///
/// Re-raises the first panic from any worker (a failed cell must still
/// abort the whole run).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        done.push((i, f(item)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (k, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", c, width = widths[k]));
        }
        line.trim_end().to_string()
    };
    let mut out = String::new();
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let squared = par_map(&items, |&x| x * x);
        assert_eq!(squared, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["bench", "cycles"],
            &[
                vec!["fir".into(), "123".into()],
                vec!["iir".into(), "45".into()],
            ],
        );
        assert!(t.contains("bench"));
        assert!(t.lines().count() >= 4);
    }
}
