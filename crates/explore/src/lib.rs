//! # matic-explore
//!
//! ISA design-space exploration: *which ASIP should you build for this
//! workload?*
//!
//! The DATE'16 paper describes the target processor parametrically so one
//! compiler retargets to any ASIP. This crate closes the loop from
//! "retargetable description" to "recommended ISA": it enumerates a grid
//! of candidate [`IsaSpec`]s — the cross product of SIMD widths, custom
//! instruction-family subsets and cost-table scalings — compiles each
//! benchmark **once**, then simulates the shared pre-decoded program
//! against every candidate in parallel. A simple area model (per-feature
//! and per-lane costs, loadable from JSON) prices each candidate, and the
//! result is the cycles-vs-area **Pareto frontier** per benchmark and for
//! the whole suite, as a terminal report and a stable `matic-explore-v1`
//! JSON document.
//!
//! The compile-once/simulate-many fan-out rests on a deliberate
//! architecture invariant pinned by tests: MIR (and the decoded
//! instruction stream) is target-independent; all target dependence
//! lives in the simulator's cost table and capability gates. Every
//! frontier point's cycle count therefore bit-matches a from-scratch
//! compilation for that spec.
//!
//! # Examples
//!
//! ```
//! use matic_explore::{explore, ExploreConfig};
//!
//! let mut cfg = ExploreConfig::default();
//! cfg.bench_ids = vec!["fir".to_string()];
//! cfg.grid.widths = vec![1, 8];
//! cfg.grid.cost_scales = vec![1.0];
//! cfg.n = Some(64);
//! let result = explore(&cfg).expect("exploration runs");
//! assert_eq!(result.benches.len(), 1);
//! assert!(!result.benches[0].frontier.is_empty());
//! ```

pub mod area;
pub mod grid;
pub mod pareto;
pub mod report;
pub mod runner;
mod util;

pub use area::{AreaModel, AREA_SCHEMA};
pub use grid::{Candidate, GridConfig};
pub use pareto::pareto_frontier;
pub use report::{validate_explore_json, ExploreSummary, EXPLORE_SCHEMA};
pub use runner::{
    explore, BenchExploration, CandidatePoint, Exploration, ExploreConfig, HotLine, SuitePoint,
};
pub use util::{par_map, render_table};
