//! The area model: what each candidate ISA costs in silicon.
//!
//! Cycle counts alone cannot rank ASIP designs — a 32-lane SIMD datapath
//! with every custom family enabled always wins on cycles. The explorer
//! therefore prices each candidate with a simple additive gate-area
//! model, normalized so the plain scalar core costs `base`: each extra
//! SIMD lane and each custom-instruction family block adds area, and a
//! down-scaled (slower) implementation of the custom units gets an area
//! discount. The model is data, not code: it loads from a JSON file kept
//! next to the ISA descriptions (`targets/area_model_default.json`), so
//! recalibrating against a real synthesis flow is an edit, not a rebuild.

use crate::grid::Candidate;
use matic_isa::json::{parse, Json};

/// Schema identifier stamped into every area-model document.
pub const AREA_SCHEMA: &str = "matic-area-v1";

/// Additive normalized-gate-area model for candidate ISAs.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// Area of the plain scalar core (everything else is relative to it).
    pub base: f64,
    /// Area of each SIMD lane beyond the first.
    pub per_lane: f64,
    /// Area of the SIMD control/issue block (present iff `simd`).
    pub simd_block: f64,
    /// Area of the complex-arithmetic block (present iff `complex`).
    pub complex_block: f64,
    /// Area of the MAC accumulate block (present iff `mac`).
    pub mac_block: f64,
    /// How much area a slower custom-unit implementation saves: at cost
    /// scale `s`, accelerator area divides by `1 + slow_discount·(s−1)`.
    /// 0 = no savings; must stay below 1 so the divisor is positive for
    /// every admissible scale.
    pub slow_discount: f64,
}

impl Default for AreaModel {
    /// Defaults loosely calibrated so the paper-like `w8_simd_cplx_mac`
    /// point costs ≈ 2.2× the scalar core — in the range ASIP datapath
    /// extensions typically add.
    fn default() -> AreaModel {
        AreaModel {
            base: 1.0,
            per_lane: 0.08,
            simd_block: 0.35,
            complex_block: 0.30,
            mac_block: 0.20,
            slow_discount: 0.5,
        }
    }
}

impl AreaModel {
    /// Normalized area of one candidate.
    pub fn area(&self, c: &Candidate) -> f64 {
        let mut accel = self.per_lane * (c.width.saturating_sub(1)) as f64;
        if c.features.simd {
            accel += self.simd_block;
        }
        if c.features.complex {
            accel += self.complex_block;
        }
        if c.features.mac {
            accel += self.mac_block;
        }
        let divisor = 1.0 + self.slow_discount * (c.cost_scale - 1.0);
        self.base + accel / divisor
    }

    /// Checks the model's coefficients for nonsense values.
    ///
    /// # Errors
    ///
    /// Names the offending coefficient.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("base", self.base),
            ("per_lane", self.per_lane),
            ("simd_block", self.simd_block),
            ("complex_block", self.complex_block),
            ("mac_block", self.mac_block),
            ("slow_discount", self.slow_discount),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "area model `{name}` must be a finite non-negative number (got {v})"
                ));
            }
        }
        if self.base <= 0.0 {
            return Err("area model `base` must be positive".to_string());
        }
        if self.slow_discount >= 1.0 {
            return Err("area model `slow_discount` must be below 1".to_string());
        }
        Ok(())
    }

    /// Serializes the model (the on-disk format).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(AREA_SCHEMA.into())),
            ("base".into(), Json::Num(self.base)),
            ("per_lane".into(), Json::Num(self.per_lane)),
            ("simd_block".into(), Json::Num(self.simd_block)),
            ("complex_block".into(), Json::Num(self.complex_block)),
            ("mac_block".into(), Json::Num(self.mac_block)),
            ("slow_discount".into(), Json::Num(self.slow_discount)),
        ])
    }

    /// Parses and validates a model from JSON text. Unknown keys are
    /// rejected so typos in model files surface immediately.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_json(text: &str) -> Result<AreaModel, String> {
        let doc = parse(text)?;
        let Json::Obj(fields) = &doc else {
            return Err("area model must be a JSON object".to_string());
        };
        for (key, _) in fields {
            if !matches!(
                key.as_str(),
                "schema"
                    | "base"
                    | "per_lane"
                    | "simd_block"
                    | "complex_block"
                    | "mac_block"
                    | "slow_discount"
            ) {
                return Err(format!("unknown area-model field `{key}`"));
            }
        }
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `schema`".to_string())?;
        if schema != AREA_SCHEMA {
            return Err(format!("schema `{schema}`, expected `{AREA_SCHEMA}`"));
        }
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric area-model field `{key}`"))
        };
        let model = AreaModel {
            base: num("base")?,
            per_lane: num("per_lane")?,
            simd_block: num("simd_block")?,
            complex_block: num("complex_block")?,
            mac_block: num("mac_block")?,
            slow_discount: num("slow_discount")?,
        };
        model.validate()?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{build_spec, Candidate};
    use matic::Features;

    fn candidate(width: usize, features: Features, scale: f64) -> Candidate {
        Candidate {
            spec: build_spec(width, features, scale),
            width,
            features,
            cost_scale: scale,
        }
    }

    #[test]
    fn scalar_core_costs_base_and_features_add_area() {
        let m = AreaModel::default();
        let scalar = candidate(1, Features::none(), 1.0);
        assert_eq!(m.area(&scalar), m.base);
        let full = candidate(8, Features::all(), 1.0);
        assert!(m.area(&full) > 2.0 * m.base, "{}", m.area(&full));
        // Monotone in width and features.
        assert!(m.area(&candidate(16, Features::all(), 1.0)) > m.area(&full));
        let no_mac = Features {
            simd: true,
            complex: true,
            mac: false,
        };
        assert!(m.area(&candidate(8, no_mac, 1.0)) < m.area(&full));
    }

    #[test]
    fn slower_custom_units_are_smaller() {
        let m = AreaModel::default();
        let fast = candidate(8, Features::all(), 1.0);
        let slow = candidate(8, Features::all(), 2.0);
        assert!(m.area(&slow) < m.area(&fast));
        assert!(m.area(&slow) > m.base, "still larger than the scalar core");
    }

    #[test]
    fn json_round_trip_and_validation() {
        let m = AreaModel::default();
        let text = m.to_json().pretty();
        let back = AreaModel::from_json(&text).unwrap();
        assert_eq!(m, back);

        let err = AreaModel::from_json(&text.replace("\"base\": 1", "\"base\": 0")).unwrap_err();
        assert!(err.contains("base"), "{err}");
        let err = AreaModel::from_json(&text.replace("\"per_lane\"", "\"per_lance\"")).unwrap_err();
        assert!(err.contains("per_lance"), "{err}");
        assert!(AreaModel::from_json("{}").is_err());
    }
}
