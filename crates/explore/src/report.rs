//! Reports: the `matic-explore-v1` JSON document, the terminal rendering,
//! and a structural validator for both (used by CI and the repro binary
//! to check emitted documents without trusting the emitter).

use crate::pareto::pareto_frontier;
use crate::runner::{BenchExploration, CandidatePoint, Exploration, SuitePoint};
use crate::util::render_table;
use matic_isa::json::{parse, Json};

/// Schema identifier stamped into every exploration document.
pub const EXPLORE_SCHEMA: &str = "matic-explore-v1";

fn point_json(p: &CandidatePoint) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(p.name.clone())),
        ("width".into(), Json::Num(p.width as f64)),
        ("simd".into(), Json::Bool(p.features.simd)),
        ("complex".into(), Json::Bool(p.features.complex)),
        ("mac".into(), Json::Bool(p.features.mac)),
        ("cost_scale".into(), Json::Num(p.cost_scale)),
        ("area".into(), Json::Num(p.area)),
        ("cycles".into(), Json::Num(p.cycles as f64)),
        ("instructions".into(), Json::Num(p.instructions as f64)),
        ("vector_cycles".into(), Json::Num(p.vector_cycles as f64)),
        ("complex_cycles".into(), Json::Num(p.complex_cycles as f64)),
        ("on_frontier".into(), Json::Bool(p.on_frontier)),
    ])
}

fn bench_json(b: &BenchExploration) -> Json {
    let best = b.points.iter().find(|p| p.name == b.best);
    let mut best_fields = vec![("name".into(), Json::Str(b.best.clone()))];
    if let Some(p) = best {
        best_fields.push(("cycles".into(), Json::Num(p.cycles as f64)));
        best_fields.push(("area".into(), Json::Num(p.area)));
    }
    if let Some(s) = b.best_speedup {
        best_fields.push(("speedup_vs_scalar".into(), Json::Num(s)));
    }
    let mut fields = vec![
        ("bench".into(), Json::Str(b.bench.clone())),
        ("entry".into(), Json::Str(b.entry.clone())),
        ("n".into(), Json::Num(b.n as f64)),
    ];
    if let Some(s) = b.scalar_cycles {
        fields.push(("scalar_cycles".into(), Json::Num(s as f64)));
    }
    fields.push(("best".into(), Json::Obj(best_fields)));
    if let Some(why) = &b.why {
        let mut why_fields = vec![
            ("line".into(), Json::Num(why.line as f64)),
            ("source".into(), Json::Str(why.source.clone())),
            ("fraction".into(), Json::Num(why.fraction)),
            ("top_class".into(), Json::Str(why.top_class.clone())),
        ];
        if let Some(u) = why.lane_utilization {
            why_fields.push(("lane_utilization".into(), Json::Num(u)));
        }
        fields.push(("why".into(), Json::Obj(why_fields)));
    }
    fields.push((
        "frontier".into(),
        Json::Arr(b.frontier.iter().map(|n| Json::Str(n.clone())).collect()),
    ));
    fields.push((
        "candidates".into(),
        Json::Arr(b.points.iter().map(point_json).collect()),
    ));
    Json::Obj(fields)
}

fn suite_json(suite: &[SuitePoint], frontier: &[String]) -> Json {
    Json::Obj(vec![
        (
            "frontier".into(),
            Json::Arr(frontier.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
        (
            "candidates".into(),
            Json::Arr(
                suite
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(p.name.clone())),
                            ("area".into(), Json::Num(p.area)),
                            ("geomean_cycles".into(), Json::Num(p.geomean_cycles)),
                            ("on_frontier".into(), Json::Bool(p.on_frontier)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

impl Exploration {
    /// The stable `matic-explore-v1` JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(EXPLORE_SCHEMA.into())),
            ("generated_by".into(), Json::Str("matic-explore".into())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("fuel".into(), Json::Num(self.fuel as f64)),
            ("area_model".into(), self.area.to_json()),
            (
                "grid".into(),
                Json::Obj(vec![
                    (
                        "widths".into(),
                        Json::Arr(
                            self.grid
                                .widths
                                .iter()
                                .map(|&w| Json::Num(w as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "cost_scales".into(),
                        Json::Arr(
                            self.grid
                                .cost_scales
                                .iter()
                                .map(|&s| Json::Num(s))
                                .collect(),
                        ),
                    ),
                    (
                        "candidates".into(),
                        Json::Arr(
                            self.candidates
                                .iter()
                                .map(|n| Json::Str(n.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "benchmarks".into(),
                Json::Arr(self.benches.iter().map(bench_json).collect()),
            ),
            (
                "suite".into(),
                suite_json(&self.suite, &self.suite_frontier()),
            ),
        ])
    }

    /// The terminal report: per-benchmark frontier tables plus the
    /// suite-wide recommendation.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "design-space exploration: {} candidates x {} benchmark(s), seed {}\n",
            self.candidates.len(),
            self.benches.len(),
            self.seed
        ));
        for b in &self.benches {
            out.push('\n');
            out.push_str(&format!("== {} (n = {}) ==\n", b.bench, b.n));
            let rows: Vec<Vec<String>> = b
                .points
                .iter()
                .filter(|p| p.on_frontier)
                .map(|p| {
                    let speedup = b
                        .scalar_cycles
                        .map(|s| format!("{:.2}x", s as f64 / p.cycles.max(1) as f64))
                        .unwrap_or_else(|| "-".to_string());
                    let marker = if p.name == b.best { "best" } else { "" };
                    vec![
                        p.name.clone(),
                        format!("{:.2}", p.area),
                        p.cycles.to_string(),
                        speedup,
                        marker.to_string(),
                    ]
                })
                .collect();
            out.push_str(&render_table(
                &["frontier point", "area", "cycles", "vs scalar", ""],
                &rows,
            ));
            if let Some(why) = &b.why {
                let lanes = why
                    .lane_utilization
                    .map(|u| format!(", {:.0}% lane utilization", u * 100.0))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "why {}: {:.0}% of cycles on line {} `{}` ({}{})\n",
                    b.best,
                    why.fraction * 100.0,
                    why.line,
                    why.source,
                    why.top_class,
                    lanes
                ));
            }
        }
        out.push_str("\n== suite (geomean over benchmarks) ==\n");
        let rows: Vec<Vec<String>> = self
            .suite
            .iter()
            .filter(|p| p.on_frontier)
            .map(|p| {
                vec![
                    p.name.clone(),
                    format!("{:.2}", p.area),
                    format!("{:.0}", p.geomean_cycles),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["frontier point", "area", "geomean cycles"],
            &rows,
        ));
        out
    }
}

/// What [`validate_explore_json`] distills out of a document.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreSummary {
    /// Number of benchmark sections.
    pub benchmarks: usize,
    /// Number of grid candidates.
    pub candidates: usize,
    /// Frontier size per benchmark, in document order.
    pub frontier_sizes: Vec<(String, usize)>,
    /// True when every benchmark that has accelerated candidates shows
    /// the pure `scalar` baseline strictly outperformed on cycles by at
    /// least one of them. (The scalar point can never be *Pareto*
    /// dominated — it has minimal area by construction — so "the paper's
    /// acceleration wins" is asserted on the cycle axis.)
    pub scalar_outperformed: bool,
}

fn get_arr<'j>(doc: &'j Json, key: &str) -> Result<&'j Vec<Json>, String> {
    match doc.get(key) {
        Some(Json::Arr(items)) => Ok(items),
        _ => Err(format!("missing array field `{key}`")),
    }
}

fn get_num(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field `{key}`"))
}

fn get_str<'j>(doc: &'j Json, key: &str) -> Result<&'j str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

/// Structurally validates a `matic-explore-v1` document: schema tag,
/// required fields, per-benchmark candidate counts matching the grid,
/// frontier membership recomputed from the raw (area, cycles) points, and
/// the scalar-baseline comparison.
///
/// # Errors
///
/// Returns a message naming the first violated property.
pub fn validate_explore_json(text: &str) -> Result<ExploreSummary, String> {
    let doc = parse(text)?;
    let schema = get_str(&doc, "schema")?;
    if schema != EXPLORE_SCHEMA {
        return Err(format!("schema `{schema}`, expected `{EXPLORE_SCHEMA}`"));
    }
    get_num(&doc, "seed")?;
    if get_num(&doc, "fuel")? <= 0.0 {
        return Err("fuel must be positive".to_string());
    }
    crate::AreaModel::from_json(
        &doc.get("area_model")
            .ok_or("missing `area_model`")?
            .pretty(),
    )
    .map_err(|e| format!("area_model: {e}"))?;

    let grid = doc.get("grid").ok_or("missing `grid`")?;
    let names: Vec<&str> = get_arr(grid, "candidates")?
        .iter()
        .map(|n| n.as_str().ok_or("grid candidate names must be strings"))
        .collect::<Result<_, _>>()?;
    if names.is_empty() {
        return Err("grid has no candidates".to_string());
    }

    let benches = get_arr(&doc, "benchmarks")?;
    if benches.is_empty() {
        return Err("document has no benchmarks".to_string());
    }
    let mut frontier_sizes = Vec::new();
    let mut scalar_outperformed = true;
    for bench in benches {
        let id = get_str(bench, "bench")?.to_string();
        let cands = get_arr(bench, "candidates")?;
        if cands.len() != names.len() {
            return Err(format!(
                "{id}: {} candidate points, grid lists {}",
                cands.len(),
                names.len()
            ));
        }
        let mut coords = Vec::with_capacity(cands.len());
        let mut flagged = Vec::new();
        let mut scalar_cycles = None;
        let mut best_accel: Option<f64> = None;
        for (c, name) in cands.iter().zip(&names) {
            if get_str(c, "name")? != *name {
                return Err(format!("{id}: candidate order differs from grid order"));
            }
            let area = get_num(c, "area")?;
            let cycles = get_num(c, "cycles")?;
            if !(area.is_finite() && area > 0.0 && cycles.is_finite() && cycles > 0.0) {
                return Err(format!("{id}/{name}: non-positive area or cycles"));
            }
            coords.push((area, cycles));
            let on_frontier = c
                .get("on_frontier")
                .and_then(Json::as_bool)
                .is_some_and(|b| b);
            if on_frontier {
                flagged.push((*name).to_string());
            }
            let accelerated = [("simd", c), ("complex", c), ("mac", c)]
                .iter()
                .any(|(k, c)| c.get(k).and_then(Json::as_bool).is_some_and(|b| b));
            if accelerated {
                best_accel = Some(best_accel.map_or(cycles, |b: f64| b.min(cycles)));
            } else {
                scalar_cycles = Some(cycles);
            }
        }
        // Recompute the frontier from the raw points; the document's
        // `on_frontier` flags must match exactly.
        let recomputed: std::collections::BTreeSet<String> = pareto_frontier(&coords)
            .into_iter()
            .map(|i| names[i].to_string())
            .collect();
        let flagged_set: std::collections::BTreeSet<String> = flagged.iter().cloned().collect();
        if recomputed != flagged_set {
            return Err(format!(
                "{id}: on_frontier flags disagree with recomputed frontier"
            ));
        }
        // The declared frontier list must name exactly the flagged points.
        let declared: std::collections::BTreeSet<String> = get_arr(bench, "frontier")?
            .iter()
            .map(|n| n.as_str().map(str::to_string).ok_or("frontier names"))
            .collect::<Result<_, _>>()?;
        if declared != flagged_set {
            return Err(format!("{id}: frontier list disagrees with flags"));
        }
        if let (Some(scalar), Some(accel)) = (scalar_cycles, best_accel) {
            if accel >= scalar {
                scalar_outperformed = false;
            }
        }
        frontier_sizes.push((id, flagged.len()));
    }

    let suite = doc.get("suite").ok_or("missing `suite`")?;
    if get_arr(suite, "candidates")?.len() != names.len() {
        return Err("suite candidate count disagrees with grid".to_string());
    }
    Ok(ExploreSummary {
        benchmarks: benches.len(),
        candidates: names.len(),
        frontier_sizes,
        scalar_outperformed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{explore, ExploreConfig};
    use crate::GridConfig;

    fn tiny() -> Exploration {
        let cfg = ExploreConfig {
            bench_ids: vec!["fir".to_string()],
            grid: GridConfig::quick(),
            n: Some(64),
            ..ExploreConfig::default()
        };
        explore(&cfg).unwrap()
    }

    #[test]
    fn emitted_document_validates() {
        let result = tiny();
        let text = result.to_json().pretty();
        let summary = validate_explore_json(&text).expect("document validates");
        assert_eq!(summary.benchmarks, 1);
        assert_eq!(summary.candidates, result.candidates.len());
        assert!(summary.scalar_outperformed, "fir accelerates");
        assert_eq!(summary.frontier_sizes[0].0, "fir");
        assert!(summary.frontier_sizes[0].1 >= 1);
    }

    #[test]
    fn tampered_documents_are_rejected() {
        let text = tiny().to_json().pretty();
        assert!(validate_explore_json(&text.replace(EXPLORE_SCHEMA, "bogus")).is_err());
        // Flip a frontier flag: recomputation catches it.
        let flipped = text.replacen("\"on_frontier\": true", "\"on_frontier\": false", 1);
        assert_ne!(flipped, text, "document has a frontier point");
        let err = validate_explore_json(&flipped).unwrap_err();
        assert!(err.contains("frontier"), "{err}");
        assert!(validate_explore_json("{}").is_err());
        assert!(validate_explore_json("not json").is_err());
    }

    #[test]
    fn text_report_names_frontier_and_why() {
        let result = tiny();
        let text = result.render_text();
        assert!(text.contains("== fir"), "{text}");
        assert!(text.contains("suite"), "{text}");
        assert!(text.contains("why "), "{text}");
        for name in &result.benches[0].frontier {
            assert!(text.contains(name.as_str()), "missing {name}");
        }
    }
}
