//! Candidate-ISA enumeration: the design-space grid.
//!
//! A candidate is built from the `dsp16` description by applying a SIMD
//! width, a custom-instruction feature subset, and a cost-table scaling
//! (a slower-but-smaller or faster-but-larger implementation of the
//! custom units). Candidates are [`IsaSpec::normalize`]d and deduplicated
//! — e.g. every `simd = false` point collapses to width 1, so widening a
//! simd-less candidate never multiplies the grid.

use matic::{Features, IsaSpec, OpClass};

/// The candidate space: the cross product of widths × feature subsets ×
/// cost scalings, before normalization/deduplication.
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    /// SIMD lane counts to try (1 = scalar datapath).
    pub widths: Vec<usize>,
    /// Custom-instruction family subsets to try.
    pub feature_sets: Vec<Features>,
    /// Cycle-cost multipliers applied to the custom (non-baseline)
    /// instruction classes: > 1 models a slower-but-smaller
    /// implementation of the custom units, < 1 a faster-but-larger one.
    pub cost_scales: Vec<f64>,
}

impl Default for GridConfig {
    /// The default grid: widths {1, 2, 4, 8, 16, 32} × all 8 feature
    /// subsets × cost scalings {1, 1.5, 2} — 70 distinct candidates
    /// after normalization.
    fn default() -> GridConfig {
        GridConfig {
            widths: vec![1, 2, 4, 8, 16, 32],
            feature_sets: Features::subsets().to_vec(),
            cost_scales: vec![1.0, 1.5, 2.0],
        }
    }
}

impl GridConfig {
    /// A small grid for CI smoke runs: widths {1, 8}, all feature
    /// subsets, no cost scaling — 8 candidates.
    pub fn quick() -> GridConfig {
        GridConfig {
            widths: vec![1, 8],
            feature_sets: Features::subsets().to_vec(),
            cost_scales: vec![1.0],
        }
    }

    /// Checks the grid axes for nonsense values.
    ///
    /// # Errors
    ///
    /// Names the offending axis value.
    pub fn validate(&self) -> Result<(), String> {
        if self.widths.is_empty() || self.feature_sets.is_empty() || self.cost_scales.is_empty() {
            return Err("grid axes must be non-empty".to_string());
        }
        for &w in &self.widths {
            if !(1..=1024).contains(&w) {
                return Err(format!("grid width {w} outside 1..=1024"));
            }
        }
        for &s in &self.cost_scales {
            if !s.is_finite() || !(0.25..=8.0).contains(&s) {
                return Err(format!("cost scale {s} outside 0.25..=8"));
            }
        }
        Ok(())
    }
}

/// One point of the design space: a normalized, validated [`IsaSpec`]
/// plus the grid coordinates it was built from.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The normalized spec (named after its grid coordinates).
    pub spec: IsaSpec,
    /// Normalized SIMD width (1 whenever `features.simd` is off).
    pub width: usize,
    /// Normalized feature subset.
    pub features: Features,
    /// Cost-table multiplier applied to the custom instruction classes
    /// (canonically 1 when no custom family is enabled — there is
    /// nothing to scale).
    pub cost_scale: f64,
}

impl Candidate {
    /// The candidate's stable display name (also `spec.name`).
    pub fn name(&self) -> &str {
        &self.spec.name
    }
}

/// Formats a cost scale for candidate names: `1.5` → `1p5`, `2` → `2`.
fn scale_tag(scale: f64) -> String {
    let s = format!("{scale}");
    s.replace('.', "p")
}

/// The stable candidate name for a set of grid coordinates.
pub fn candidate_name(width: usize, f: Features, scale: f64) -> String {
    let mut name = if f.simd {
        format!("w{width}")
    } else {
        "scalar".to_string()
    };
    if f.simd {
        name.push_str("_simd");
    }
    if f.complex {
        name.push_str("_cplx");
    }
    if f.mac {
        name.push_str("_mac");
    }
    if scale != 1.0 {
        name.push_str(&format!("_x{}", scale_tag(scale)));
    }
    name
}

/// Builds the normalized candidate spec for one set of grid coordinates.
/// Costs start from the `dsp16` DSP-like table; the custom
/// (non-baseline) classes are scaled by `scale` (rounded up, floored at
/// one cycle).
pub fn build_spec(width: usize, features: Features, scale: f64) -> IsaSpec {
    let mut spec = IsaSpec::dsp16();
    spec.vector_width = width.max(1);
    spec.features = features;
    spec.normalize();
    if scale != 1.0 {
        for &op in OpClass::ALL {
            if !op.is_baseline() {
                let scaled = (spec.cost(op) as f64 * scale).ceil().max(1.0) as u32;
                spec.costs.set_cost(op, scaled);
            }
        }
    }
    spec.name = candidate_name(spec.vector_width, spec.features, scale);
    spec.description = format!(
        "design-space candidate: {} lanes, simd={}, complex={}, mac={}, cost scale {}",
        spec.vector_width, spec.features.simd, spec.features.complex, spec.features.mac, scale
    );
    spec
}

/// Enumerates the deduplicated candidate grid.
///
/// Normalization collapses equivalent coordinates (any `simd = false`
/// point has width 1; a scaling is meaningless without a custom family
/// to scale), so the returned candidates have distinct specs and
/// distinct names.
///
/// # Errors
///
/// Propagates [`GridConfig::validate`] failures and internal-consistency
/// violations (every produced spec must pass [`IsaSpec::validate`]).
pub fn enumerate(cfg: &GridConfig) -> Result<Vec<Candidate>, String> {
    cfg.validate()?;
    let mut out: Vec<Candidate> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for &scale in &cfg.cost_scales {
        for &features in &cfg.feature_sets {
            for &width in &cfg.widths {
                // Normalize the coordinates first so deduplication sees
                // the canonical form.
                let mut probe = IsaSpec::dsp16();
                probe.vector_width = width;
                probe.features = features;
                probe.normalize();
                let (width, features) = (probe.vector_width, probe.features);
                let scale = if features.any() { scale } else { 1.0 };
                let key = (
                    width,
                    features.simd,
                    features.complex,
                    features.mac,
                    scale.to_bits(),
                );
                if !seen.insert(key) {
                    continue;
                }
                let spec = build_spec(width, features, scale);
                spec.validate()
                    .map_err(|e| format!("candidate `{}` invalid: {e}", spec.name))?;
                out.push(Candidate {
                    width,
                    features,
                    cost_scale: scale,
                    spec,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_size_and_uniqueness() {
        let cands = enumerate(&GridConfig::default()).unwrap();
        // 4 simd subsets × 5 widths × 3 scales = 60, plus width-1
        // subsets: {cplx, mac, cplx+mac} × 3 scales = 9, plus the pure
        // scalar point (scaling collapses to 1) = 70.
        assert_eq!(cands.len(), 70);
        let names: std::collections::BTreeSet<_> = cands.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), cands.len(), "names must be unique");
        for c in &cands {
            assert!(c.spec.validate().is_ok(), "{}", c.name());
            assert!(c.spec.is_normalized(), "{}", c.name());
        }
    }

    #[test]
    fn quick_grid_is_small_but_covers_features() {
        let cands = enumerate(&GridConfig::quick()).unwrap();
        assert_eq!(cands.len(), 8);
        assert!(cands.iter().any(|c| !c.features.any()));
        assert!(cands.iter().any(|c| c.features.simd && c.width == 8));
    }

    #[test]
    fn simd_less_widths_collapse() {
        let cfg = GridConfig {
            widths: vec![1, 8, 32],
            feature_sets: vec![Features::none()],
            cost_scales: vec![1.0, 2.0],
        };
        let cands = enumerate(&cfg).unwrap();
        assert_eq!(cands.len(), 1, "all coordinates collapse to `scalar`");
        assert_eq!(cands[0].name(), "scalar");
        assert_eq!(cands[0].width, 1);
    }

    #[test]
    fn cost_scaling_scales_custom_classes_only() {
        let spec = build_spec(8, Features::all(), 2.0);
        let base = IsaSpec::dsp16();
        for &op in OpClass::ALL {
            if op.is_baseline() {
                assert_eq!(spec.cost(op), base.cost(op), "{op}");
            } else {
                assert_eq!(spec.cost(op), base.cost(op) * 2, "{op}");
            }
        }
        // Fractional scales round up and never hit zero.
        let spec = build_spec(8, Features::all(), 0.25);
        assert!(OpClass::ALL
            .iter()
            .all(|&op| op.is_baseline() || spec.cost(op) >= 1));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(candidate_name(8, Features::all(), 1.0), "w8_simd_cplx_mac");
        assert_eq!(
            candidate_name(4, Features::all(), 1.5),
            "w4_simd_cplx_mac_x1p5"
        );
        assert_eq!(candidate_name(1, Features::none(), 1.0), "scalar");
        let cplx_only = Features {
            simd: false,
            complex: true,
            mac: false,
        };
        assert_eq!(candidate_name(1, cplx_only, 2.0), "scalar_cplx_x2");
    }

    #[test]
    fn bad_axes_are_rejected() {
        let cfg = GridConfig {
            widths: vec![0],
            ..GridConfig::default()
        };
        assert!(enumerate(&cfg).is_err());
        let cfg = GridConfig {
            cost_scales: vec![f64::NAN],
            ..GridConfig::default()
        };
        assert!(enumerate(&cfg).is_err());
        let mut cfg = GridConfig::default();
        cfg.cost_scales.clear();
        assert!(enumerate(&cfg).is_err());
    }
}
