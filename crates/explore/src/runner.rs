//! The exploration driver: compile once, simulate against every candidate.
//!
//! For each benchmark the runner compiles the MATLAB source a single time
//! at full optimization, pins correctness against the reference
//! interpreter, then fans the shared pre-decoded program out across the
//! candidate grid on all cores ([`crate::par_map`]). Each (benchmark,
//! candidate) cell is one fuel-limited simulation; its cycle count is
//! bit-identical to what a from-scratch compilation for that candidate
//! would report (see [`matic::Compiled::simulator_for`]). The best
//! candidate is re-run with profiling enabled to answer *why* it wins —
//! which source line its cycles concentrate on.

use crate::area::AreaModel;
use crate::grid::{enumerate, Candidate, GridConfig};
use crate::pareto::pareto_frontier;
use crate::util::par_map;
use matic::{Compiled, Compiler, Engine, Features, SourceMap};
use matic_benchkit::{benchmark, outputs_close, sim_to_cvalue, to_sim, Benchmark, SUITE};
use std::sync::Arc;

/// Everything one exploration run needs.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Benchmarks to explore (ids from [`matic_benchkit::SUITE`]).
    pub bench_ids: Vec<String>,
    /// Problem size override; `None` picks per-benchmark defaults sized
    /// for sub-second exploration (matmul 8, fft 64, otherwise 128).
    pub n: Option<usize>,
    /// Stimulus seed.
    pub seed: u64,
    /// Statement budget per simulation (guards against a pathological
    /// candidate hanging the whole sweep).
    pub fuel: u64,
    /// The candidate grid.
    pub grid: GridConfig,
    /// The area model pricing each candidate.
    pub area: AreaModel,
    /// Execution engine for every simulation in the sweep. Cycle counts
    /// are engine-independent (pinned by the engine differential tests),
    /// so this only affects wall-clock; the native engine is the default
    /// because sweeps are simulation-bound.
    pub engine: Engine,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            bench_ids: SUITE.iter().map(|b| b.id.to_string()).collect(),
            n: None,
            seed: 3,
            fuel: 100_000_000,
            grid: GridConfig::default(),
            area: AreaModel::default(),
            engine: Engine::Native,
        }
    }
}

/// Exploration-friendly problem sizes (same cells as `repro_perf`).
pub fn default_n(id: &str) -> usize {
    match id {
        "matmul" => 8,
        "fft" => 64,
        _ => 128,
    }
}

/// One simulated (benchmark, candidate) cell, reduced to plain data so it
/// can cross the worker-thread boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePoint {
    /// Candidate name (grid coordinates, e.g. `w8_simd_cplx_mac`).
    pub name: String,
    /// SIMD lane count.
    pub width: usize,
    /// Enabled custom-instruction families.
    pub features: Features,
    /// Cost-table multiplier on the custom classes.
    pub cost_scale: f64,
    /// Normalized area from the run's [`AreaModel`].
    pub area: f64,
    /// Simulated cycles for the benchmark kernel.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Cycles spent in SIMD instruction classes.
    pub vector_cycles: u64,
    /// Cycles spent in complex-arithmetic instruction classes.
    pub complex_cycles: u64,
    /// Whether the point is on this benchmark's Pareto frontier.
    pub on_frontier: bool,
}

/// Where the winning candidate spends its cycles: the hottest source line
/// of the profiled re-run.
#[derive(Debug, Clone, PartialEq)]
pub struct HotLine {
    /// 1-based source line.
    pub line: u32,
    /// The source text of that line, trimmed.
    pub source: String,
    /// Fraction of total cycles attributed to the line.
    pub fraction: f64,
    /// The dominant op class on the line (display name).
    pub top_class: String,
    /// SIMD lane utilization on the line, when vector ops ran there.
    pub lane_utilization: Option<f64>,
}

/// Exploration result for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchExploration {
    /// Benchmark id.
    pub bench: String,
    /// Entry function.
    pub entry: String,
    /// Problem size explored.
    pub n: usize,
    /// Every candidate's cell, in grid order.
    pub points: Vec<CandidatePoint>,
    /// Names of the Pareto-optimal candidates, cheapest first.
    pub frontier: Vec<String>,
    /// Name of the fastest candidate (ties broken toward smaller area).
    pub best: String,
    /// Cycles of the pure `scalar` candidate, when the grid includes it.
    pub scalar_cycles: Option<u64>,
    /// `scalar_cycles / best cycles`, when the grid includes `scalar`.
    pub best_speedup: Option<f64>,
    /// Hottest source line of the best candidate's profiled re-run.
    pub why: Option<HotLine>,
}

/// One candidate's suite-wide aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct SuitePoint {
    /// Candidate name.
    pub name: String,
    /// Normalized area.
    pub area: f64,
    /// Geometric-mean cycles across all explored benchmarks.
    pub geomean_cycles: f64,
    /// Whether the point is on the suite-wide Pareto frontier.
    pub on_frontier: bool,
}

/// A full exploration: per-benchmark results plus the suite aggregate.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Stimulus seed used.
    pub seed: u64,
    /// Fuel budget per simulation.
    pub fuel: u64,
    /// The grid that was swept.
    pub grid: GridConfig,
    /// The area model used for pricing.
    pub area: AreaModel,
    /// Candidate names, in grid order (shared by every benchmark).
    pub candidates: Vec<String>,
    /// Per-benchmark explorations, in requested order.
    pub benches: Vec<BenchExploration>,
    /// Suite-wide aggregate per candidate, in grid order.
    pub suite: Vec<SuitePoint>,
}

impl Exploration {
    /// Names of the suite-wide Pareto-optimal candidates, cheapest first.
    pub fn suite_frontier(&self) -> Vec<String> {
        let mut names: Vec<&SuitePoint> = self.suite.iter().filter(|p| p.on_frontier).collect();
        names.sort_by(|a, b| a.area.total_cmp(&b.area));
        names.iter().map(|p| p.name.clone()).collect()
    }
}

/// Runs the design-space exploration described by `cfg`.
///
/// # Errors
///
/// Fails on unknown benchmark ids, invalid grid/area configuration,
/// compile errors, simulation faults (including fuel exhaustion), and any
/// candidate whose outputs diverge from the reference interpreter.
pub fn explore(cfg: &ExploreConfig) -> Result<Exploration, String> {
    if cfg.bench_ids.is_empty() {
        return Err("no benchmarks selected".to_string());
    }
    if cfg.fuel == 0 {
        return Err("fuel budget must be positive".to_string());
    }
    cfg.area.validate()?;
    let candidates = enumerate(&cfg.grid)?;
    let benches: Vec<&'static Benchmark> = cfg
        .bench_ids
        .iter()
        .map(|id| {
            benchmark(id).ok_or_else(|| {
                let known: Vec<&str> = SUITE.iter().map(|b| b.id).collect();
                format!("unknown benchmark `{id}` (known: {})", known.join(", "))
            })
        })
        .collect::<Result<_, _>>()?;

    let mut out = Vec::with_capacity(benches.len());
    for bench in benches {
        out.push(explore_bench(bench, &candidates, cfg)?);
    }
    let suite = aggregate_suite(&candidates, &out, &cfg.area);
    Ok(Exploration {
        seed: cfg.seed,
        fuel: cfg.fuel,
        grid: cfg.grid.clone(),
        area: cfg.area.clone(),
        candidates: candidates.iter().map(|c| c.name().to_string()).collect(),
        benches: out,
        suite,
    })
}

fn explore_bench(
    bench: &'static Benchmark,
    candidates: &[Candidate],
    cfg: &ExploreConfig,
) -> Result<BenchExploration, String> {
    let n = cfg.n.unwrap_or_else(|| default_n(bench.id));
    // Compile once; the decoded program is target-independent and shared
    // by every candidate's simulator.
    let compiled: Compiled = Compiler::new()
        .compile(bench.source, bench.entry, &bench.arg_types(n))
        .map_err(|e| format!("{}: compile failed: {e}", bench.id))?;
    let reference = bench
        .reference_outputs(&bench.inputs(n, cfg.seed))
        .map_err(|e| format!("{}: reference run failed: {e}", bench.id))?;

    // Fan out: one fuel-limited simulation per candidate. Inputs are
    // rebuilt inside each worker — simulation values are `Rc`-backed and
    // must not cross threads — while `compiled` and the reference outputs
    // are plain shared state.
    let cells: Vec<Result<CandidatePoint, String>> = par_map(candidates, |cand| {
        let inputs: Vec<_> = bench.inputs(n, cfg.seed).iter().map(to_sim).collect();
        let outcome = compiled
            .simulator_for(Arc::new(cand.spec.clone()))
            .with_engine(cfg.engine)
            .with_fuel(cfg.fuel)
            .run(inputs)
            .map_err(|e| format!("{}/{}: {e}", bench.id, cand.name()))?;
        if outcome.outputs.len() != reference.len() {
            return Err(format!(
                "{}/{}: {} outputs, reference has {}",
                bench.id,
                cand.name(),
                outcome.outputs.len(),
                reference.len()
            ));
        }
        for (actual, expected) in outcome.outputs.iter().zip(&reference) {
            outputs_close(&sim_to_cvalue(actual), expected, 1e-9)
                .map_err(|e| format!("{}/{}: wrong result: {e}", bench.id, cand.name()))?;
        }
        Ok(CandidatePoint {
            name: cand.name().to_string(),
            width: cand.width,
            features: cand.features,
            cost_scale: cand.cost_scale,
            area: cfg.area.area(cand),
            cycles: outcome.cycles.total,
            instructions: outcome.cycles.instructions,
            vector_cycles: outcome.cycles.vector_cycles(),
            complex_cycles: outcome.cycles.complex_cycles(),
            on_frontier: false,
        })
    });
    let mut points: Vec<CandidatePoint> = cells.into_iter().collect::<Result<_, _>>()?;

    let coords: Vec<(f64, f64)> = points.iter().map(|p| (p.area, p.cycles as f64)).collect();
    for i in pareto_frontier(&coords) {
        points[i].on_frontier = true;
    }
    let mut frontier: Vec<&CandidatePoint> = points.iter().filter(|p| p.on_frontier).collect();
    frontier.sort_by(|a, b| a.area.total_cmp(&b.area));
    let frontier: Vec<String> = frontier.iter().map(|p| p.name.clone()).collect();

    let best = points
        .iter()
        .min_by(|a, b| a.cycles.cmp(&b.cycles).then(a.area.total_cmp(&b.area)))
        .expect("grid is non-empty")
        .clone();
    let scalar_cycles = points.iter().find(|p| !p.features.any()).map(|p| p.cycles);
    let best_speedup = scalar_cycles.map(|s| s as f64 / best.cycles.max(1) as f64);
    let why = profile_best(bench, &compiled, candidates, &best, cfg);

    Ok(BenchExploration {
        bench: bench.id.to_string(),
        entry: bench.entry.to_string(),
        n,
        points,
        frontier,
        best: best.name,
        scalar_cycles,
        best_speedup,
        why,
    })
}

/// Re-runs the winning candidate with profiling on and reports its
/// hottest source line — the *why* behind the recommendation.
fn profile_best(
    bench: &Benchmark,
    compiled: &Compiled,
    candidates: &[Candidate],
    best: &CandidatePoint,
    cfg: &ExploreConfig,
) -> Option<HotLine> {
    let n = cfg.n.unwrap_or_else(|| default_n(bench.id));
    let cand = candidates.iter().find(|c| c.name() == best.name)?;
    let inputs: Vec<_> = bench.inputs(n, cfg.seed).iter().map(to_sim).collect();
    let outcome = compiled
        .simulator_for(Arc::new(cand.spec.clone()))
        .with_engine(cfg.engine)
        .with_fuel(cfg.fuel)
        .with_profiling(true)
        .run(inputs)
        .ok()?;
    let profile = outcome.profile?;
    let total = profile.total_cycles().max(1);
    let map = SourceMap::new(bench.source);
    let (line, counters) = profile
        .lines(&map)
        .into_iter()
        .filter(|(line, _)| *line > 0)
        .max_by_key(|(_, c)| c.cycles)?;
    let source = map
        .source()
        .lines()
        .nth(line as usize - 1)
        .unwrap_or("")
        .trim()
        .to_string();
    let top_class = counters
        .top_classes()
        .first()
        .map(|(op, _)| op.to_string())
        .unwrap_or_default();
    Some(HotLine {
        line,
        source,
        fraction: counters.cycles as f64 / total as f64,
        top_class,
        lane_utilization: counters.lane_utilization(),
    })
}

/// Geometric-mean cycles per candidate across all benchmarks, plus the
/// suite-wide frontier.
fn aggregate_suite(
    candidates: &[Candidate],
    benches: &[BenchExploration],
    area: &AreaModel,
) -> Vec<SuitePoint> {
    let mut suite: Vec<SuitePoint> = candidates
        .iter()
        .enumerate()
        .map(|(i, cand)| {
            let log_sum: f64 = benches
                .iter()
                .map(|b| (b.points[i].cycles.max(1) as f64).ln())
                .sum();
            let geomean = (log_sum / benches.len().max(1) as f64).exp();
            SuitePoint {
                name: cand.name().to_string(),
                area: area.area(cand),
                geomean_cycles: geomean,
                on_frontier: false,
            }
        })
        .collect();
    let coords: Vec<(f64, f64)> = suite.iter().map(|p| (p.area, p.geomean_cycles)).collect();
    for i in pareto_frontier(&coords) {
        suite[i].on_frontier = true;
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExploreConfig {
        ExploreConfig {
            bench_ids: vec!["fir".to_string()],
            grid: GridConfig::quick(),
            n: Some(64),
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn explores_one_benchmark_end_to_end() {
        let result = explore(&tiny_config()).expect("exploration runs");
        assert_eq!(result.benches.len(), 1);
        let b = &result.benches[0];
        assert_eq!(b.points.len(), result.candidates.len());
        assert!(!b.frontier.is_empty());
        // FIR is MAC-dominated: full acceleration must beat pure scalar.
        let scalar = b.scalar_cycles.expect("quick grid includes scalar");
        let best = b.points.iter().find(|p| p.name == b.best).unwrap();
        assert!(best.cycles < scalar, "{} !< {scalar}", best.cycles);
        assert!(b.best_speedup.unwrap() > 1.0);
        // The why-report points at a real source line.
        let why = b.why.as_ref().expect("profiled re-run yields a hot line");
        assert!(why.line > 0 && !why.source.is_empty());
        assert!(why.fraction > 0.0 && why.fraction <= 1.0);
        // Suite aggregate over one benchmark mirrors the benchmark.
        assert_eq!(result.suite.len(), b.points.len());
        assert!(!result.suite_frontier().is_empty());
    }

    #[test]
    fn frontier_points_are_mutually_nondominated() {
        let result = explore(&tiny_config()).unwrap();
        let pts: Vec<&CandidatePoint> = result.benches[0]
            .points
            .iter()
            .filter(|p| p.on_frontier)
            .collect();
        for a in &pts {
            for b in &pts {
                if a.name == b.name {
                    continue;
                }
                let dominates = b.area <= a.area
                    && b.cycles <= a.cycles
                    && (b.area < a.area || b.cycles < a.cycles);
                assert!(!dominates, "{} dominates {}", b.name, a.name);
            }
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut cfg = tiny_config();
        cfg.bench_ids = vec!["nope".to_string()];
        assert!(explore(&cfg).unwrap_err().contains("unknown benchmark"));
        let mut cfg = tiny_config();
        cfg.bench_ids.clear();
        assert!(explore(&cfg).is_err());
        let mut cfg = tiny_config();
        cfg.fuel = 0;
        assert!(explore(&cfg).is_err());
        let mut cfg = tiny_config();
        cfg.area.base = -1.0;
        assert!(explore(&cfg).is_err());
    }

    #[test]
    fn fuel_exhaustion_names_the_candidate() {
        let mut cfg = tiny_config();
        cfg.fuel = 10;
        let err = explore(&cfg).unwrap_err();
        assert!(err.contains("fuel"), "{err}");
        assert!(err.contains("fir/"), "{err}");
    }
}
