//! Acceptance tests for the design-space explorer.
//!
//! The central one pins the compile-once/simulate-many architecture:
//! every Pareto-frontier point's cycle count must bit-match a
//! from-scratch compilation + [`matic::Compiled::simulator`] run
//! targeting that same spec. If MIR (or the decoded instruction stream)
//! ever grows a target dependence, this is the test that fails.

use matic::Compiler;
use matic_benchkit::{benchmark, to_sim, SUITE};
use matic_explore::{explore, AreaModel, ExploreConfig, GridConfig};

/// The default grid must stay a real design space: the ISSUE floor is 48
/// candidates, and ours is 70.
#[test]
fn default_grid_is_at_least_48_candidates() {
    let cfg = ExploreConfig::default();
    let candidates = matic_explore::grid::enumerate(&cfg.grid).unwrap();
    assert!(
        candidates.len() >= 48,
        "default grid shrank to {} candidates",
        candidates.len()
    );
}

/// Every frontier point bit-matches a standalone compilation for its spec.
#[test]
fn frontier_points_bit_match_standalone_runs() {
    let cfg = ExploreConfig {
        bench_ids: vec!["fir".to_string(), "cmult".to_string()],
        n: Some(64),
        ..ExploreConfig::default()
    };
    let candidates = matic_explore::grid::enumerate(&cfg.grid).unwrap();
    let result = explore(&cfg).expect("exploration runs");
    for bench_result in &result.benches {
        let bench = benchmark(&bench_result.bench).unwrap();
        assert!(!bench_result.frontier.is_empty());
        for name in &bench_result.frontier {
            let point = bench_result
                .points
                .iter()
                .find(|p| &p.name == name)
                .expect("frontier names a candidate point");
            let cand = candidates
                .iter()
                .find(|c| c.name() == name)
                .expect("frontier names a grid candidate");
            let standalone = Compiler::new()
                .target(cand.spec.clone())
                .compile(bench.source, bench.entry, &bench.arg_types(bench_result.n))
                .expect("standalone compile ok")
                .simulator()
                .run(
                    bench
                        .inputs(bench_result.n, cfg.seed)
                        .iter()
                        .map(to_sim)
                        .collect(),
                )
                .expect("standalone sim ok");
            assert_eq!(
                point.cycles, standalone.cycles.total,
                "{}/{name}: explored cycles must bit-match a fresh compilation",
                bench_result.bench
            );
        }
    }
}

/// The full six-benchmark suite completes over the whole default grid
/// within the fuel budget, and on every kernel with parallelism to
/// exploit the accelerated candidates beat the scalar baseline.
#[test]
fn full_suite_completes_on_the_default_grid() {
    // Exploration-sized problems; the grid stays the full 70 candidates.
    let cfg = ExploreConfig {
        n: None,
        ..ExploreConfig::default()
    };
    let result = explore(&cfg).expect("six-benchmark default-grid sweep runs");
    assert_eq!(result.benches.len(), SUITE.len());
    assert!(result.candidates.len() >= 48);
    for b in &result.benches {
        assert_eq!(b.points.len(), result.candidates.len(), "{}", b.bench);
        assert!(!b.frontier.is_empty(), "{}", b.bench);
        let scalar = b.scalar_cycles.expect("default grid includes scalar");
        let best = b.points.iter().find(|p| p.name == b.best).unwrap();
        assert!(
            best.cycles <= scalar,
            "{}: best candidate must never lose to scalar",
            b.bench
        );
        // IIR is the serial low-speedup anchor; every other kernel must
        // show real acceleration.
        if b.bench != "iir" {
            assert!(
                best.cycles < scalar,
                "{}: an accelerated point must beat scalar ({} !< {scalar})",
                b.bench,
                best.cycles
            );
        }
    }
    // The suite frontier exists and the emitted document validates.
    assert!(!result.suite_frontier().is_empty());
    let summary =
        matic_explore::validate_explore_json(&result.to_json().pretty()).expect("valid document");
    assert_eq!(summary.benchmarks, SUITE.len());
    assert!(summary.scalar_outperformed);
}

/// The committed `targets/` files must stay in sync with the in-code
/// defaults — they are the documented way to feed `matic explore
/// --area-model` and `matic compile --target`.
#[test]
fn committed_target_files_match_in_code_defaults() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let area_text = std::fs::read_to_string(format!("{root}/targets/area_model_default.json"))
        .expect("targets/area_model_default.json is committed");
    let area = AreaModel::from_json(&area_text).expect("committed area model loads");
    assert_eq!(area, AreaModel::default());

    let spec_text = std::fs::read_to_string(format!("{root}/targets/dsp16.json"))
        .expect("targets/dsp16.json is committed");
    let spec = matic::IsaSpec::from_json(&spec_text).expect("committed dsp16 loads");
    assert_eq!(spec, matic::IsaSpec::dsp16());
}

/// Custom area models change pricing (and can reshape the frontier), and
/// broken ones are rejected before any simulation runs.
#[test]
fn area_model_is_pluggable() {
    // Free hardware: every candidate costs `base`, so the frontier
    // collapses to the fastest point(s).
    let cfg = ExploreConfig {
        bench_ids: vec!["fir".to_string()],
        grid: GridConfig::quick(),
        n: Some(64),
        area: AreaModel {
            per_lane: 0.0,
            simd_block: 0.0,
            complex_block: 0.0,
            mac_block: 0.0,
            ..AreaModel::default()
        },
        ..ExploreConfig::default()
    };
    let result = explore(&cfg).unwrap();
    let b = &result.benches[0];
    let best_cycles = b.points.iter().map(|p| p.cycles).min().unwrap();
    for p in b.points.iter().filter(|p| p.on_frontier) {
        assert_eq!(p.cycles, best_cycles, "{}", p.name);
    }
    assert!(b.frontier.contains(&b.best));
}
