//! ISA JSON round-trip coverage across the explorer's candidate space.
//!
//! The explorer writes winning specs for humans to keep under `targets/`;
//! a spec that does not survive `to_json` → `from_json` intact would make
//! those files lie. Covered two ways: exhaustively over the full default
//! grid, and property-based over random grid coordinates (including ones
//! the default grid never visits).

use matic::{Features, IsaSpec};
use matic_explore::grid::{build_spec, enumerate, GridConfig};
use proptest::prelude::*;

/// Every candidate of the default grid round-trips exactly.
#[test]
fn every_default_grid_candidate_round_trips() {
    let candidates = enumerate(&GridConfig::default()).unwrap();
    assert!(candidates.len() >= 48);
    for cand in &candidates {
        let text = cand.spec.to_json();
        let back = IsaSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: parse back failed: {e}", cand.name()));
        assert_eq!(cand.spec, back, "{}", cand.name());
        // And the loader only ever admits normalized, valid specs.
        assert!(back.is_normalized(), "{}", cand.name());
        assert!(back.validate().is_ok(), "{}", cand.name());
    }
}

/// Serialized candidates that are hand-edited into inconsistency are
/// rejected by the loader (satellite: cost-table validation on load).
#[test]
fn loader_rejects_corrupted_candidates() {
    let spec = build_spec(8, Features::all(), 1.0);
    let text = spec.to_json();

    let zero_cost = text.replacen(": 1,", ": 0,", 1);
    assert_ne!(zero_cost, text, "spec has a 1-cycle op to corrupt");
    let err = IsaSpec::from_json(&zero_cost).unwrap_err();
    assert!(err.contains("positive integer"), "{err}");

    let fractional = text.replacen(": 2,", ": 2.5,", 1);
    assert_ne!(fractional, text);
    assert!(IsaSpec::from_json(&fractional).is_err());

    // vector_width without simd is inconsistent on load, too.
    let no_simd = text.replace("\"simd\": true", "\"simd\": false");
    let err = IsaSpec::from_json(&no_simd).unwrap_err();
    assert!(err.contains("simd"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary grid coordinates build specs that round-trip through
    /// JSON exactly — including widths and scales outside the default
    /// axes.
    #[test]
    fn arbitrary_coordinates_round_trip(
        width in 1usize..65,
        simd in prop_oneof![Just(true), Just(false)],
        complex in prop_oneof![Just(true), Just(false)],
        mac in prop_oneof![Just(true), Just(false)],
        // Quarters between 0.25 and 4.0 keep the scale axis inside the
        // admissible range while exercising fractional cost rounding.
        quarter_scale in 1u32..17,
    ) {
        let features = Features { simd, complex, mac };
        let scale = quarter_scale as f64 / 4.0;
        let spec = build_spec(width, features, scale);
        prop_assert!(spec.validate().is_ok());
        prop_assert!(spec.is_normalized());
        let back = IsaSpec::from_json(&spec.to_json()).map_err(|e| {
            TestCaseError::fail(format!("parse back failed: {e}"))
        })?;
        prop_assert_eq!(spec, back);
    }
}
