//! Complex double-precision scalar used throughout the interpreter and the
//! ASIP simulator.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` parts.
///
/// Every numeric element in the MATLAB value model is a `Cx`; real values
/// simply carry `im == 0.0`. Keeping one element type (rather than a
/// real/complex enum per element) mirrors MATLAB semantics, where realness
/// is a property of the whole array.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cx {
    /// Zero.
    pub const ZERO: Cx = Cx { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Cx = Cx { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Cx = Cx { re: 0.0, im: 1.0 };

    /// Creates a complex number from parts.
    pub fn new(re: f64, im: f64) -> Cx {
        Cx { re, im }
    }

    /// Creates a purely real number.
    pub fn real(re: f64) -> Cx {
        Cx { re, im: 0.0 }
    }

    /// Whether the imaginary part is exactly zero.
    pub fn is_real(self) -> bool {
        self.im == 0.0
    }

    /// Complex conjugate.
    pub fn conj(self) -> Cx {
        Cx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Cx {
        if self.is_real() && self.re >= 0.0 {
            return Cx::real(self.re.sqrt());
        }
        let r = self.abs();
        let theta = self.arg() / 2.0;
        let sr = r.sqrt();
        Cx::new(sr * theta.cos(), sr * theta.sin())
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Cx {
        let m = self.re.exp();
        Cx::new(m * self.im.cos(), m * self.im.sin())
    }

    /// Complex natural logarithm (principal branch).
    pub fn ln(self) -> Cx {
        Cx::new(self.abs().ln(), self.arg())
    }

    /// Complex power `self^rhs`.
    pub fn powc(self, rhs: Cx) -> Cx {
        if self.is_real() && rhs.is_real() {
            let b = self.re;
            let e = rhs.re;
            // Real base/exponent stays real when the result is real.
            if b >= 0.0 || e == e.trunc() {
                return Cx::real(b.powf(e));
            }
        }
        if self == Cx::ZERO {
            return if rhs == Cx::ZERO { Cx::ONE } else { Cx::ZERO };
        }
        (self.ln() * rhs).exp()
    }

    /// Approximate equality for tests: both parts within `tol`.
    pub fn approx_eq(self, other: Cx, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for Cx {
    fn from(re: f64) -> Cx {
        Cx::real(re)
    }
}

impl Add for Cx {
    type Output = Cx;
    fn add(self, rhs: Cx) -> Cx {
        Cx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Cx {
    type Output = Cx;
    fn sub(self, rhs: Cx) -> Cx {
        Cx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cx {
    type Output = Cx;
    fn mul(self, rhs: Cx) -> Cx {
        Cx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Cx {
    type Output = Cx;
    fn div(self, rhs: Cx) -> Cx {
        if rhs.im == 0.0 {
            return Cx::new(self.re / rhs.re, self.im / rhs.re);
        }
        let d = rhs.re * rhs.re + rhs.im * rhs.im;
        Cx::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Cx {
    type Output = Cx;
    fn neg(self) -> Cx {
        Cx::new(-self.re, -self.im)
    }
}

impl fmt::Display for Cx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.im < 0.0 {
            write!(f, "{} - {}i", self.re, -self.im)
        } else {
            write!(f, "{} + {}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cx::new(1.0, 2.0);
        let b = Cx::new(3.0, -1.0);
        assert_eq!(a + b, Cx::new(4.0, 1.0));
        assert_eq!(a - b, Cx::new(-2.0, 3.0));
        assert_eq!(a * b, Cx::new(5.0, 5.0));
        let q = (a * b) / b;
        assert!(q.approx_eq(a, 1e-12));
    }

    #[test]
    fn conj_and_abs() {
        let z = Cx::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj(), Cx::new(3.0, -4.0));
        assert!((z * z.conj()).approx_eq(Cx::real(25.0), 1e-12));
    }

    #[test]
    fn sqrt_of_negative_real_is_imaginary() {
        let z = Cx::real(-4.0).sqrt();
        assert!(z.approx_eq(Cx::new(0.0, 2.0), 1e-12));
    }

    #[test]
    fn exp_of_i_pi() {
        let z = (Cx::I * Cx::real(std::f64::consts::PI)).exp();
        assert!(z.approx_eq(Cx::real(-1.0), 1e-12));
    }

    #[test]
    fn real_power_stays_real() {
        assert_eq!(Cx::real(2.0).powc(Cx::real(10.0)), Cx::real(1024.0));
        assert_eq!(Cx::real(-2.0).powc(Cx::real(3.0)), Cx::real(-8.0));
    }

    #[test]
    fn negative_base_fractional_power_is_complex() {
        let z = Cx::real(-1.0).powc(Cx::real(0.5));
        assert!(z.approx_eq(Cx::I, 1e-12));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cx::real(2.5).to_string(), "2.5");
        assert_eq!(Cx::new(1.0, 2.0).to_string(), "1 + 2i");
        assert_eq!(Cx::new(1.0, -2.0).to_string(), "1 - 2i");
    }
}
