//! The MATLAB value model: column-major complex matrices plus strings and
//! function handles.

use crate::cx::Cx;
use matic_frontend::ast::Expr;
use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// A 2-D column-major matrix of complex doubles — MATLAB's one numeric type.
///
/// Scalars are 1×1 matrices, vectors are 1×N or N×1. A matrix tracks
/// whether it is `logical` (the result of a comparison) because MATLAB
/// logical arrays index differently from numeric ones.
///
/// Element storage is reference-counted with copy-on-write: `clone` is
/// O(1) and shares the payload, and the first mutation through
/// [`Matrix::data_mut`]/[`Matrix::at_mut`] on a shared payload copies it.
/// MATLAB value semantics are preserved — the sharing is unobservable —
/// but the simulator's operand reads and value-copy assignments stop
/// allocating.
#[derive(Clone)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Rc<Vec<Cx>>,
    logical: bool,
    /// Memoized "all elements real" answer; `None` until first queried,
    /// reset on any mutable access. Purely a cache — never part of the
    /// value (excluded from `PartialEq`).
    real: Cell<Option<bool>>,
}

// The realness cache is not part of the value.
impl PartialEq for Matrix {
    fn eq(&self, other: &Matrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.logical == other.logical
            && self.data == other.data
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("data", &self.data)
            .field("logical", &self.logical)
            .finish()
    }
}

impl Matrix {
    /// Creates a matrix from column-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<Cx>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix {
            rows,
            cols,
            data: Rc::new(data),
            logical: false,
            real: Cell::new(None),
        }
    }

    /// A 1×1 matrix holding `v`.
    pub fn scalar(v: Cx) -> Matrix {
        Matrix::new(1, 1, vec![v])
    }

    /// A 1×1 real matrix.
    pub fn from_f64(v: f64) -> Matrix {
        Matrix::scalar(Cx::real(v))
    }

    /// A 1×1 logical matrix.
    pub fn logical_scalar(b: bool) -> Matrix {
        Matrix::scalar(Cx::real(if b { 1.0 } else { 0.0 })).into_logical()
    }

    /// A 1×N row vector from real values.
    pub fn row_from_f64(values: &[f64]) -> Matrix {
        Matrix::new(
            1,
            values.len(),
            values.iter().map(|&v| Cx::real(v)).collect(),
        )
    }

    /// An N×1 column vector from real values.
    pub fn col_from_f64(values: &[f64]) -> Matrix {
        Matrix::new(
            values.len(),
            1,
            values.iter().map(|&v| Cx::real(v)).collect(),
        )
    }

    /// A 1×N row vector from complex values.
    pub fn row(values: Vec<Cx>) -> Matrix {
        let n = values.len();
        Matrix::new(1, n, values)
    }

    /// The 0×0 empty matrix.
    pub fn empty() -> Matrix {
        Matrix::new(0, 0, Vec::new())
    }

    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix::new(rows, cols, vec![Cx::ZERO; rows * cols])
    }

    /// An all-one matrix.
    pub fn ones(rows: usize, cols: usize) -> Matrix {
        Matrix::new(rows, cols, vec![Cx::ONE; rows * cols])
    }

    /// The identity matrix (rectangular `eye` like MATLAB's).
    pub fn eye(rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows.min(cols) {
            *m.at_mut(i, i) = Cx::ONE;
        }
        m
    }

    /// `start : step : stop` as a row vector; empty when the range is
    /// degenerate (matching MATLAB).
    pub fn range(start: f64, step: f64, stop: f64) -> Matrix {
        if step == 0.0
            || (step > 0.0 && start > stop)
            || (step < 0.0 && start < stop)
            || !start.is_finite()
            || !step.is_finite()
        {
            return Matrix::new(1, 0, Vec::new());
        }
        let n = ((stop - start) / step + 1e-10).floor() as usize + 1;
        let data: Vec<Cx> = (0..n).map(|k| Cx::real(start + step * k as f64)).collect();
        Matrix::new(1, data.len(), data)
    }

    /// Marks the matrix logical (0/1 comparison result).
    pub fn into_logical(mut self) -> Matrix {
        self.logical = true;
        self
    }

    /// Whether this is a logical (comparison-result) matrix.
    pub fn is_logical(&self) -> bool {
        self.logical
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// MATLAB `length`: the longer dimension, 0 when empty.
    pub fn length(&self) -> usize {
        if self.numel() == 0 {
            0
        } else {
            self.rows.max(self.cols)
        }
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the matrix is 1×1.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Whether the matrix is a row or column vector (including scalars).
    pub fn is_vector(&self) -> bool {
        !self.is_empty() && (self.rows == 1 || self.cols == 1)
    }

    /// Whether all elements have zero imaginary part.
    ///
    /// The answer is memoized (cost-model code asks repeatedly for the
    /// same matrix); any mutable access clears the memo.
    pub fn is_real(&self) -> bool {
        if let Some(r) = self.real.get() {
            return r;
        }
        let r = self.data.iter().all(|z| z.is_real());
        self.real.set(Some(r));
        r
    }

    /// Column-major element slice.
    pub fn data(&self) -> &[Cx] {
        &self.data
    }

    /// Mutable column-major element slice (shape is fixed; only element
    /// values may change). Detaches from any sharers first (copy-on-write).
    pub fn data_mut(&mut self) -> &mut [Cx] {
        self.real.set(None);
        Rc::make_mut(&mut self.data).as_mut_slice()
    }

    /// The element vector by value, avoiding a copy when unshared.
    fn take_data(&mut self) -> Vec<Cx> {
        self.real.set(None);
        let rc = std::mem::take(&mut self.data);
        Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone())
    }

    /// Element at 0-based `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, row: usize, col: usize) -> Cx {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[col * self.rows + row]
    }

    /// Mutable element at 0-based `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut Cx {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let k = col * self.rows + row;
        &mut self.data_mut()[k]
    }

    /// Element at 0-based column-major linear index.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn lin(&self, k: usize) -> Cx {
        self.data[k]
    }

    /// The single element of a 1×1 matrix.
    pub fn as_scalar(&self) -> Result<Cx, String> {
        if self.is_scalar() {
            Ok(self.data[0])
        } else {
            Err(format!(
                "expected scalar, got {}x{} matrix",
                self.rows, self.cols
            ))
        }
    }

    /// The single element as a real number; errors when complex or non-scalar.
    pub fn as_real_scalar(&self) -> Result<f64, String> {
        let z = self.as_scalar()?;
        if z.is_real() {
            Ok(z.re)
        } else {
            Err("expected real scalar, got complex value".to_string())
        }
    }

    /// MATLAB truthiness: nonempty and every element nonzero.
    pub fn as_bool(&self) -> bool {
        !self.is_empty() && self.data.iter().all(|z| z.re != 0.0 || z.im != 0.0)
    }

    /// Applies `f` to every element, preserving shape.
    pub fn map(&self, f: impl Fn(Cx) -> Cx) -> Matrix {
        Matrix::new(
            self.rows,
            self.cols,
            self.data.iter().map(|&z| f(z)).collect(),
        )
    }

    /// Element-wise combine with scalar broadcast (MATLAB pre-2016b rules:
    /// shapes must match exactly unless one side is scalar).
    pub fn zip(&self, other: &Matrix, f: impl Fn(Cx, Cx) -> Cx) -> Result<Matrix, String> {
        if self.is_scalar() {
            let a = self.data[0];
            return Ok(other.map(|b| f(a, b)));
        }
        if other.is_scalar() {
            let b = other.data[0];
            return Ok(self.map(|a| f(a, b)));
        }
        if self.rows != other.rows || self.cols != other.cols {
            return Err(format!(
                "matrix dimensions must agree ({}x{} vs {}x{})",
                self.rows, self.cols, other.rows, other.cols
            ));
        }
        Ok(Matrix::new(
            self.rows,
            self.cols,
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        ))
    }

    /// Element-wise comparison producing a logical matrix.
    pub fn compare(&self, other: &Matrix, f: impl Fn(Cx, Cx) -> bool) -> Result<Matrix, String> {
        let m = self.zip(other, |a, b| Cx::real(if f(a, b) { 1.0 } else { 0.0 }))?;
        Ok(m.into_logical())
    }

    /// Matrix multiply (also handles scalar × matrix).
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, String> {
        if self.is_scalar() || other.is_scalar() {
            return self.zip(other, |a, b| a * b);
        }
        if self.cols != other.rows {
            return Err(format!(
                "inner matrix dimensions must agree ({}x{} * {}x{})",
                self.rows, self.cols, other.rows, other.cols
            ));
        }
        let (a, b) = (self.data.as_slice(), other.data.as_slice());
        let mut out = vec![Cx::ZERO; self.rows * other.cols];
        for j in 0..other.cols {
            let col = &mut out[j * self.rows..(j + 1) * self.rows];
            for k in 0..self.cols {
                let bkj = b[j * other.rows + k];
                if bkj == Cx::ZERO {
                    continue;
                }
                let ak = &a[k * self.rows..(k + 1) * self.rows];
                for (o, &aik) in col.iter_mut().zip(ak) {
                    *o = *o + aik * bkj;
                }
            }
        }
        Ok(Matrix::new(self.rows, other.cols, out))
    }

    /// Transpose; conjugates elements when `conjugate` is true (`'`).
    pub fn transpose(&self, conjugate: bool) -> Matrix {
        // A vector transposes by relabeling its dimensions: the
        // column-major layout is unchanged, so the payload can be shared
        // (unless elements must be conjugated). Result is never logical,
        // matching the general path below.
        if (self.rows <= 1 || self.cols <= 1) && (!conjugate || self.is_real()) {
            return Matrix {
                rows: self.cols,
                cols: self.rows,
                data: Rc::clone(&self.data),
                logical: false,
                real: self.real.clone(),
            };
        }
        let mut out = vec![Cx::ZERO; self.data.len()];
        for c in 0..self.cols {
            for r in 0..self.rows {
                let v = self.data[c * self.rows + r];
                out[r * self.cols + c] = if conjugate { v.conj() } else { v };
            }
        }
        Matrix::new(self.cols, self.rows, out)
    }

    /// Horizontal concatenation `[a, b]`.
    pub fn horzcat(&self, other: &Matrix) -> Result<Matrix, String> {
        if self.is_empty() {
            return Ok(other.clone());
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        if self.rows != other.rows {
            return Err("horizontal concatenation row mismatch".to_string());
        }
        let mut data = (*self.data).clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix::new(self.rows, self.cols + other.cols, data))
    }

    /// Vertical concatenation `[a; b]`.
    pub fn vertcat(&self, other: &Matrix) -> Result<Matrix, String> {
        if self.is_empty() {
            return Ok(other.clone());
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        if self.cols != other.cols {
            return Err("vertical concatenation column mismatch".to_string());
        }
        let mut out = Matrix::zeros(self.rows + other.rows, self.cols);
        for c in 0..self.cols {
            for r in 0..self.rows {
                *out.at_mut(r, c) = self.at(r, c);
            }
            for r in 0..other.rows {
                *out.at_mut(self.rows + r, c) = other.at(r, c);
            }
        }
        Ok(out)
    }

    /// Converts an index matrix into 0-based linear indices, applying
    /// MATLAB logical-indexing rules when `self`-sized logical masks are
    /// used. `limit` is the extent being indexed (for bounds checks).
    fn index_positions(idx: &Matrix, limit: usize) -> Result<Vec<usize>, String> {
        if idx.is_logical() {
            if idx.numel() > limit {
                return Err("logical index too long".to_string());
            }
            return Ok(idx
                .data
                .iter()
                .enumerate()
                .filter(|(_, z)| z.re != 0.0)
                .map(|(k, _)| k)
                .collect());
        }
        idx.data
            .iter()
            .map(|z| {
                if !z.is_real() {
                    return Err("index must be real".to_string());
                }
                let v = z.re;
                if v < 1.0 || v != v.trunc() {
                    return Err(format!("index must be a positive integer, got {v}"));
                }
                let k = v as usize - 1;
                if k >= limit {
                    return Err(format!("index {v} out of bounds (extent {limit})"));
                }
                Ok(k)
            })
            .collect()
    }

    /// Linear indexing `A(idx)`.
    ///
    /// Result orientation follows MATLAB: if `A` is a vector and `idx` is a
    /// vector, the result keeps `A`'s orientation; otherwise it keeps the
    /// shape of `idx`.
    pub fn index_linear(&self, idx: &Matrix) -> Result<Matrix, String> {
        let positions = Self::index_positions(idx, self.numel())?;
        let data: Vec<Cx> = positions.iter().map(|&k| self.data[k]).collect();
        let n = data.len();
        let (rows, cols) = if idx.is_logical() || (self.is_vector() && idx.is_vector()) {
            if self.rows == 1 {
                (1, n)
            } else {
                (n, 1)
            }
        } else {
            (idx.rows, idx.cols)
        };
        if rows * cols != n {
            // Falls back to a row when logical masks shrink the count.
            return Ok(Matrix::new(1, n, data));
        }
        Ok(Matrix::new(rows, cols, data))
    }

    /// 2-D indexing `A(ri, ci)` where either index may be a vector.
    pub fn index_2d(&self, ri: &Matrix, ci: &Matrix) -> Result<Matrix, String> {
        let rpos = Self::index_positions(ri, self.rows)?;
        let cpos = Self::index_positions(ci, self.cols)?;
        let mut out = Matrix::zeros(rpos.len(), cpos.len());
        for (jo, &j) in cpos.iter().enumerate() {
            for (io, &i) in rpos.iter().enumerate() {
                *out.at_mut(io, jo) = self.at(i, j);
            }
        }
        Ok(out)
    }

    /// All indices of one dimension, used for `:` subscripts.
    pub fn colon_index(extent: usize) -> Matrix {
        Matrix::new(
            1,
            extent,
            (1..=extent).map(|k| Cx::real(k as f64)).collect(),
        )
    }

    /// Linear indexed assignment `A(idx) = rhs`, growing a vector if the
    /// index exceeds the current extent (MATLAB auto-grow).
    pub fn assign_linear(&mut self, idx: &Matrix, rhs: &Matrix) -> Result<(), String> {
        // Determine required extent for growth.
        let mut max_needed = 0usize;
        if idx.is_logical() {
            max_needed = idx.numel();
        } else {
            for z in idx.data.iter() {
                if !z.is_real() || z.re < 1.0 || z.re != z.re.trunc() {
                    return Err("index must be a positive integer".to_string());
                }
                max_needed = max_needed.max(z.re as usize);
            }
        }
        if max_needed > self.numel() {
            self.grow_linear(max_needed)?;
        }
        let positions = Self::index_positions(idx, self.numel())?;
        let data = self.data_mut();
        if rhs.is_scalar() {
            let v = rhs.data[0];
            for &k in &positions {
                data[k] = v;
            }
        } else {
            if rhs.numel() != positions.len() {
                return Err("assignment size mismatch".to_string());
            }
            for (n, &k) in positions.iter().enumerate() {
                data[k] = rhs.data[n];
            }
        }
        Ok(())
    }

    fn grow_linear(&mut self, needed: usize) -> Result<(), String> {
        if self.is_empty() {
            *self = Matrix::zeros(1, needed);
            Ok(())
        } else if self.rows == 1 {
            let mut data = self.take_data();
            data.resize(needed, Cx::ZERO);
            *self = Matrix::new(1, needed, data);
            Ok(())
        } else if self.cols == 1 {
            let mut data = self.take_data();
            data.resize(needed, Cx::ZERO);
            *self = Matrix::new(needed, 1, data);
            Ok(())
        } else {
            Err("linear index out of bounds for matrix assignment".to_string())
        }
    }

    /// 2-D indexed assignment `A(ri, ci) = rhs`, growing the matrix when
    /// indices exceed its extent.
    pub fn assign_2d(&mut self, ri: &Matrix, ci: &Matrix, rhs: &Matrix) -> Result<(), String> {
        let mut max_r = 0usize;
        let mut max_c = 0usize;
        for z in ri.data.iter() {
            if !z.is_real() || z.re < 1.0 || z.re != z.re.trunc() {
                return Err("row index must be a positive integer".to_string());
            }
            max_r = max_r.max(z.re as usize);
        }
        for z in ci.data.iter() {
            if !z.is_real() || z.re < 1.0 || z.re != z.re.trunc() {
                return Err("column index must be a positive integer".to_string());
            }
            max_c = max_c.max(z.re as usize);
        }
        if max_r > self.rows || max_c > self.cols {
            let new_rows = self.rows.max(max_r);
            let new_cols = self.cols.max(max_c);
            let mut grown = Matrix::zeros(new_rows, new_cols);
            for c in 0..self.cols {
                for r in 0..self.rows {
                    *grown.at_mut(r, c) = self.at(r, c);
                }
            }
            *self = grown;
        }
        let rpos = Self::index_positions(ri, self.rows)?;
        let cpos = Self::index_positions(ci, self.cols)?;
        if rhs.is_scalar() {
            let v = rhs.data[0];
            for &j in &cpos {
                for &i in &rpos {
                    *self.at_mut(i, j) = v;
                }
            }
        } else {
            if rhs.numel() != rpos.len() * cpos.len() {
                return Err("assignment size mismatch".to_string());
            }
            for (jo, &j) in cpos.iter().enumerate() {
                for (io, &i) in rpos.iter().enumerate() {
                    *self.at_mut(i, j) = rhs.at(io, jo);
                }
            }
        }
        Ok(())
    }

    /// Reshapes in column-major order.
    pub fn reshape(&self, rows: usize, cols: usize) -> Result<Matrix, String> {
        if rows * cols != self.numel() {
            return Err("reshape element count mismatch".to_string());
        }
        // Same elements, new shape: share the payload (copy-on-write).
        Ok(Matrix {
            rows,
            cols,
            data: Rc::clone(&self.data),
            logical: false,
            real: self.real.clone(),
        })
    }

    /// Reduction over MATLAB's default dimension: columns for matrices,
    /// the whole thing for vectors. `init`/`fold` define the reduction.
    pub fn reduce(&self, init: Cx, fold: impl Fn(Cx, Cx) -> Cx) -> Matrix {
        if self.is_empty() {
            return Matrix::scalar(init);
        }
        if self.is_vector() {
            let acc = self.data.iter().fold(init, |a, &b| fold(a, b));
            return Matrix::scalar(acc);
        }
        let mut out = Matrix::zeros(1, self.cols);
        for c in 0..self.cols {
            let mut acc = init;
            for r in 0..self.rows {
                acc = fold(acc, self.at(r, c));
            }
            *out.at_mut(0, c) = acc;
        }
        out
    }

    /// The `k`-th column as an N×1 vector (for `for` iteration).
    ///
    /// # Panics
    ///
    /// Panics if `k >= cols`.
    pub fn column(&self, k: usize) -> Matrix {
        assert!(k < self.cols);
        let start = k * self.rows;
        Matrix::new(self.rows, 1, self.data[start..start + self.rows].to_vec())
    }

    /// Maximum absolute element-wise difference to another matrix;
    /// `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max),
        )
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_scalar() {
            return write!(f, "{}", self.data[0]);
        }
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(10) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(10) {
                write!(f, "{:>12} ", self.at(r, c).to_string())?;
            }
            if self.cols > 10 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 10 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

/// An anonymous-function closure: parameters, body and captured variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Closure {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body expression.
    pub body: Expr,
    /// Captured `(name, value)` bindings from the defining scope.
    pub captures: Vec<(String, Value)>,
}

/// Any MATLAB runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric / logical matrix (the common case).
    Num(Matrix),
    /// Character string.
    Str(String),
    /// Named function handle `@f`.
    FnHandle(String),
    /// Anonymous function `@(x) ...`.
    Anon(Rc<Closure>),
}

impl Value {
    /// Convenience: a real scalar value.
    pub fn scalar(v: f64) -> Value {
        Value::Num(Matrix::from_f64(v))
    }

    /// The contained matrix, or an error for non-numeric values.
    pub fn as_matrix(&self) -> Result<&Matrix, String> {
        match self {
            Value::Num(m) => Ok(m),
            Value::Str(_) => Err("expected numeric value, got string".to_string()),
            Value::FnHandle(_) | Value::Anon(_) => {
                Err("expected numeric value, got function handle".to_string())
            }
        }
    }

    /// Consumes into a matrix, converting strings to character-code rows
    /// (MATLAB implicit char→double conversion).
    pub fn into_matrix(self) -> Result<Matrix, String> {
        match self {
            Value::Num(m) => Ok(m),
            Value::Str(s) => Ok(Matrix::row(
                s.chars().map(|c| Cx::real(c as u32 as f64)).collect(),
            )),
            Value::FnHandle(_) | Value::Anon(_) => {
                Err("expected numeric value, got function handle".to_string())
            }
        }
    }

    /// MATLAB truthiness of the value.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Num(m) => Ok(m.as_bool()),
            Value::Str(s) => Ok(!s.is_empty()),
            _ => Err("function handle used as condition".to_string()),
        }
    }
}

impl From<Matrix> for Value {
    fn from(m: Matrix) -> Value {
        Value::Num(m)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(m) => write!(f, "{m}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::FnHandle(n) => write!(f, "@{n}"),
            Value::Anon(c) => write!(f, "@({}) <expr>", c.params.join(", ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f64]) -> Matrix {
        Matrix::new(rows, cols, vals.iter().map(|&v| Cx::real(v)).collect())
    }

    #[test]
    fn column_major_layout() {
        // [1 3; 2 4] stored column-major as [1 2 3 4].
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.at(0, 0).re, 1.0);
        assert_eq!(a.at(1, 0).re, 2.0);
        assert_eq!(a.at(0, 1).re, 3.0);
        assert_eq!(a.at(1, 1).re, 4.0);
    }

    #[test]
    fn range_construction() {
        let r = Matrix::range(1.0, 1.0, 5.0);
        assert_eq!(r.numel(), 5);
        assert_eq!(r.lin(4).re, 5.0);
        let r = Matrix::range(0.0, 0.5, 2.0);
        assert_eq!(r.numel(), 5);
        let r = Matrix::range(5.0, -1.0, 1.0);
        assert_eq!(r.numel(), 5);
        assert_eq!(r.lin(0).re, 5.0);
        let empty = Matrix::range(2.0, 1.0, 1.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn zip_broadcast() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let s = Matrix::from_f64(10.0);
        let r = a.zip(&s, |x, y| x * y).unwrap();
        assert_eq!(r.at(1, 1).re, 40.0);
        let r = s.zip(&a, |x, y| x - y).unwrap();
        assert_eq!(r.at(0, 0).re, 9.0);
    }

    #[test]
    fn zip_shape_mismatch_errors() {
        let a = m(2, 2, &[1.0; 4]);
        let b = m(1, 4, &[1.0; 4]);
        assert!(a.zip(&b, |x, _| x).is_err());
    }

    #[test]
    fn matmul_basics() {
        let a = m(2, 3, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]); // [1 2 3; 4 5 6]
        let b = m(3, 1, &[1.0, 1.0, 1.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.at(0, 0).re, 6.0);
        assert_eq!(c.at(1, 0).re, 15.0);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(2, 3, &[0.0; 6]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn conjugate_transpose() {
        let a = Matrix::new(1, 2, vec![Cx::new(1.0, 2.0), Cx::new(3.0, -4.0)]);
        let t = a.transpose(true);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.at(0, 0), Cx::new(1.0, -2.0));
        let t2 = a.transpose(false);
        assert_eq!(t2.at(0, 0), Cx::new(1.0, 2.0));
    }

    #[test]
    fn linear_indexing_orientation() {
        let row = Matrix::row_from_f64(&[10.0, 20.0, 30.0]);
        let idx = Matrix::col_from_f64(&[1.0, 3.0]);
        // Vector indexed by vector keeps the base orientation.
        let r = row.index_linear(&idx).unwrap();
        assert_eq!((r.rows(), r.cols()), (1, 2));
        assert_eq!(r.lin(1).re, 30.0);
    }

    #[test]
    fn matrix_linear_indexing_is_column_major() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let idx = Matrix::row_from_f64(&[3.0]);
        assert_eq!(a.index_linear(&idx).unwrap().lin(0).re, 3.0);
    }

    #[test]
    fn index_out_of_bounds() {
        let a = Matrix::row_from_f64(&[1.0, 2.0]);
        assert!(a.index_linear(&Matrix::from_f64(3.0)).is_err());
        assert!(a.index_linear(&Matrix::from_f64(0.0)).is_err());
        assert!(a.index_linear(&Matrix::from_f64(1.5)).is_err());
    }

    #[test]
    fn two_d_indexing() {
        let a = m(2, 3, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let sub = a
            .index_2d(&Matrix::from_f64(2.0), &Matrix::row_from_f64(&[1.0, 3.0]))
            .unwrap();
        assert_eq!((sub.rows(), sub.cols()), (1, 2));
        assert_eq!(sub.lin(0).re, 4.0);
        assert_eq!(sub.lin(1).re, 6.0);
    }

    #[test]
    fn logical_indexing() {
        let a = Matrix::row_from_f64(&[5.0, -1.0, 7.0]);
        let mask = Matrix::row_from_f64(&[1.0, 0.0, 1.0]).into_logical();
        let picked = a.index_linear(&mask).unwrap();
        assert_eq!(picked.numel(), 2);
        assert_eq!(picked.lin(1).re, 7.0);
    }

    #[test]
    fn assign_with_growth_row() {
        let mut a = Matrix::empty();
        a.assign_linear(&Matrix::from_f64(3.0), &Matrix::from_f64(9.0))
            .unwrap();
        assert_eq!((a.rows(), a.cols()), (1, 3));
        assert_eq!(a.lin(2).re, 9.0);
        assert_eq!(a.lin(0).re, 0.0);
    }

    #[test]
    fn assign_2d_growth() {
        let mut a = Matrix::zeros(1, 1);
        a.assign_2d(
            &Matrix::from_f64(2.0),
            &Matrix::from_f64(3.0),
            &Matrix::from_f64(7.0),
        )
        .unwrap();
        assert_eq!((a.rows(), a.cols()), (2, 3));
        assert_eq!(a.at(1, 2).re, 7.0);
    }

    #[test]
    fn assign_scalar_fanout() {
        let mut a = Matrix::zeros(1, 4);
        a.assign_linear(&Matrix::row_from_f64(&[1.0, 3.0]), &Matrix::from_f64(5.0))
            .unwrap();
        assert_eq!(a.lin(0).re, 5.0);
        assert_eq!(a.lin(1).re, 0.0);
        assert_eq!(a.lin(2).re, 5.0);
    }

    #[test]
    fn reduce_vector_and_matrix() {
        let v = Matrix::row_from_f64(&[1.0, 2.0, 3.0]);
        assert_eq!(
            v.reduce(Cx::ZERO, |a, b| a + b).as_scalar().unwrap().re,
            6.0
        );
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let s = a.reduce(Cx::ZERO, |x, y| x + y);
        assert_eq!((s.rows(), s.cols()), (1, 2));
        assert_eq!(s.lin(0).re, 3.0);
        assert_eq!(s.lin(1).re, 7.0);
    }

    #[test]
    fn concatenation() {
        let a = Matrix::row_from_f64(&[1.0, 2.0]);
        let b = Matrix::row_from_f64(&[3.0]);
        let h = a.horzcat(&b).unwrap();
        assert_eq!(h.numel(), 3);
        let v = a.vertcat(&Matrix::row_from_f64(&[4.0, 5.0])).unwrap();
        assert_eq!((v.rows(), v.cols()), (2, 2));
        assert_eq!(v.at(1, 0).re, 4.0);
    }

    #[test]
    fn truthiness() {
        assert!(Matrix::from_f64(1.0).as_bool());
        assert!(!Matrix::from_f64(0.0).as_bool());
        assert!(!Matrix::empty().as_bool());
        assert!(!Matrix::row_from_f64(&[1.0, 0.0]).as_bool());
        assert!(Matrix::row_from_f64(&[1.0, 2.0]).as_bool());
    }

    #[test]
    fn string_to_matrix_conversion() {
        let v = Value::Str("AB".to_string());
        let m = v.into_matrix().unwrap();
        assert_eq!(m.lin(0).re, 65.0);
        assert_eq!(m.lin(1).re, 66.0);
    }

    #[test]
    fn eye_rectangular() {
        let e = Matrix::eye(2, 3);
        assert_eq!(e.at(0, 0).re, 1.0);
        assert_eq!(e.at(1, 1).re, 1.0);
        assert_eq!(e.at(0, 1).re, 0.0);
        assert_eq!(e.at(1, 2).re, 0.0);
    }

    #[test]
    fn column_extraction() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let c1 = a.column(1);
        assert_eq!((c1.rows(), c1.cols()), (2, 1));
        assert_eq!(c1.lin(0).re, 3.0);
    }
}
