//! Built-in MATLAB functions available to interpreted programs.
//!
//! Builtins that need interpreter state (random numbers, console output)
//! reach it through the [`Host`] trait, implemented by the interpreter.

use crate::cx::Cx;
use crate::value::{Matrix, Value};

/// Services a builtin may need from the enclosing interpreter.
pub trait Host {
    /// The next uniform random number in `[0, 1)`.
    fn next_rand(&mut self) -> f64;
    /// The next standard-normal random number.
    fn next_randn(&mut self) -> f64;
    /// Reseeds the random stream.
    fn reseed(&mut self, seed: u64);
    /// Emits program output (from `disp`, `fprintf`, unsuppressed results).
    fn emit(&mut self, text: &str);
}

/// Whether `name` names a builtin function or constant.
pub fn is_builtin(name: &str) -> bool {
    BUILTIN_NAMES.contains(&name)
}

/// All builtin names, for sema's symbol resolution.
pub const BUILTIN_NAMES: &[&str] = &[
    "pi", "eps", "Inf", "inf", "NaN", "nan", "i", "j", "zeros", "ones", "eye", "linspace",
    "length", "size", "numel", "isempty", "isreal", "isscalar", "isvector", "abs", "sqrt", "exp",
    "log", "log2", "log10", "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "real", "imag",
    "conj", "angle", "floor", "ceil", "round", "fix", "sign", "mod", "rem", "sum", "prod",
    "cumsum", "min", "max", "mean", "any", "all", "find", "dot", "norm", "fliplr", "flipud",
    "reshape", "repmat", "complex", "disp", "fprintf", "num2str", "error", "rand", "randn", "rng",
    "feval", "deal", "sprintf",
];

fn one(m: Matrix) -> Result<Vec<Value>, String> {
    Ok(vec![Value::Num(m)])
}

fn arg_matrix(args: &[Value], k: usize, name: &str) -> Result<Matrix, String> {
    args.get(k)
        .cloned()
        .ok_or_else(|| format!("{name}: missing argument {}", k + 1))?
        .into_matrix()
}

fn arg_usize(args: &[Value], k: usize, name: &str) -> Result<usize, String> {
    let v = arg_matrix(args, k, name)?.as_real_scalar()?;
    if v < 0.0 || v != v.trunc() {
        return Err(format!("{name}: expected nonnegative integer, got {v}"));
    }
    Ok(v as usize)
}

/// Dimension arguments for `zeros`/`ones`/`eye`/`rand`: `()` → 1×1,
/// `(n)` → n×n, `(r, c)` → r×c.
fn dims(args: &[Value], name: &str) -> Result<(usize, usize), String> {
    match args.len() {
        0 => Ok((1, 1)),
        1 => {
            let n = arg_usize(args, 0, name)?;
            Ok((n, n))
        }
        2 => Ok((arg_usize(args, 0, name)?, arg_usize(args, 1, name)?)),
        _ => Err(format!("{name}: too many dimension arguments")),
    }
}

fn map_builtin(args: &[Value], name: &str, f: impl Fn(Cx) -> Cx) -> Result<Vec<Value>, String> {
    let m = arg_matrix(args, 0, name)?;
    one(m.map(f))
}

fn real_map(args: &[Value], name: &str, f: impl Fn(f64) -> f64) -> Result<Vec<Value>, String> {
    map_builtin(args, name, |z| {
        if z.is_real() {
            Cx::real(f(z.re))
        } else {
            // Complex inputs to real-only functions: apply to magnitude
            // pattern does not match MATLAB; error instead.
            Cx::new(f64::NAN, 0.0)
        }
    })
}

/// Calls builtin `name` with `args`, requesting `nargout` outputs.
///
/// # Errors
///
/// Returns a message when the builtin does not exist, arguments are
/// malformed, or MATLAB semantics demand a runtime error (`error(...)`).
pub fn call_builtin(
    host: &mut dyn Host,
    name: &str,
    args: Vec<Value>,
    nargout: usize,
) -> Result<Vec<Value>, String> {
    match name {
        // ---- constants -------------------------------------------------
        "pi" => one(Matrix::from_f64(std::f64::consts::PI)),
        "eps" => one(Matrix::from_f64(f64::EPSILON)),
        "Inf" | "inf" => one(Matrix::from_f64(f64::INFINITY)),
        "NaN" | "nan" => one(Matrix::from_f64(f64::NAN)),
        "i" | "j" => one(Matrix::scalar(Cx::I)),

        // ---- constructors ----------------------------------------------
        "zeros" => {
            let (r, c) = dims(&args, name)?;
            one(Matrix::zeros(r, c))
        }
        "ones" => {
            let (r, c) = dims(&args, name)?;
            one(Matrix::ones(r, c))
        }
        "eye" => {
            let (r, c) = dims(&args, name)?;
            one(Matrix::eye(r, c))
        }
        "linspace" => {
            let a = arg_matrix(&args, 0, name)?.as_real_scalar()?;
            let b = arg_matrix(&args, 1, name)?.as_real_scalar()?;
            let n = if args.len() > 2 {
                arg_usize(&args, 2, name)?
            } else {
                100
            };
            if n == 0 {
                return one(Matrix::new(1, 0, Vec::new()));
            }
            if n == 1 {
                return one(Matrix::from_f64(b));
            }
            let step = (b - a) / (n - 1) as f64;
            let data: Vec<Cx> = (0..n).map(|k| Cx::real(a + step * k as f64)).collect();
            one(Matrix::new(1, n, data))
        }
        "complex" => {
            let re = arg_matrix(&args, 0, name)?;
            let im = arg_matrix(&args, 1, name)?;
            one(re.zip(&im, |a, b| Cx::new(a.re, b.re))?)
        }
        "rand" => {
            let (r, c) = dims(&args, name)?;
            let data: Vec<Cx> = (0..r * c).map(|_| Cx::real(host.next_rand())).collect();
            one(Matrix::new(r, c, data))
        }
        "randn" => {
            let (r, c) = dims(&args, name)?;
            let data: Vec<Cx> = (0..r * c).map(|_| Cx::real(host.next_randn())).collect();
            one(Matrix::new(r, c, data))
        }
        "rng" => {
            let seed = arg_usize(&args, 0, name)? as u64;
            host.reseed(seed);
            Ok(vec![])
        }

        // ---- shape queries ----------------------------------------------
        "length" => {
            let m = arg_matrix(&args, 0, name)?;
            one(Matrix::from_f64(m.length() as f64))
        }
        "numel" => {
            let m = arg_matrix(&args, 0, name)?;
            one(Matrix::from_f64(m.numel() as f64))
        }
        "size" => {
            let m = arg_matrix(&args, 0, name)?;
            if args.len() > 1 {
                let d = arg_usize(&args, 1, name)?;
                let v = match d {
                    1 => m.rows(),
                    2 => m.cols(),
                    _ => 1,
                };
                return one(Matrix::from_f64(v as f64));
            }
            if nargout >= 2 {
                Ok(vec![
                    Value::scalar(m.rows() as f64),
                    Value::scalar(m.cols() as f64),
                ])
            } else {
                one(Matrix::row_from_f64(&[m.rows() as f64, m.cols() as f64]))
            }
        }
        "isempty" => {
            let m = arg_matrix(&args, 0, name)?;
            one(Matrix::logical_scalar(m.is_empty()))
        }
        "isreal" => {
            let m = arg_matrix(&args, 0, name)?;
            one(Matrix::logical_scalar(m.is_real()))
        }
        "isscalar" => {
            let m = arg_matrix(&args, 0, name)?;
            one(Matrix::logical_scalar(m.is_scalar()))
        }
        "isvector" => {
            let m = arg_matrix(&args, 0, name)?;
            one(Matrix::logical_scalar(m.is_vector()))
        }

        // ---- element-wise math -------------------------------------------
        "abs" => map_builtin(&args, name, |z| Cx::real(z.abs())),
        "sqrt" => map_builtin(&args, name, Cx::sqrt),
        "exp" => map_builtin(&args, name, Cx::exp),
        "log" => map_builtin(&args, name, |z| {
            if z.is_real() && z.re > 0.0 {
                Cx::real(z.re.ln())
            } else {
                z.ln()
            }
        }),
        "log2" => real_map(&args, name, f64::log2),
        "log10" => real_map(&args, name, f64::log10),
        "sin" => real_map(&args, name, f64::sin),
        "cos" => real_map(&args, name, f64::cos),
        "tan" => real_map(&args, name, f64::tan),
        "asin" => real_map(&args, name, f64::asin),
        "acos" => real_map(&args, name, f64::acos),
        "atan" => real_map(&args, name, f64::atan),
        "atan2" => {
            let y = arg_matrix(&args, 0, name)?;
            let x = arg_matrix(&args, 1, name)?;
            one(y.zip(&x, |a, b| Cx::real(a.re.atan2(b.re)))?)
        }
        "real" => map_builtin(&args, name, |z| Cx::real(z.re)),
        "imag" => map_builtin(&args, name, |z| Cx::real(z.im)),
        "conj" => map_builtin(&args, name, Cx::conj),
        "angle" => map_builtin(&args, name, |z| Cx::real(z.arg())),
        "floor" => real_map(&args, name, f64::floor),
        "ceil" => real_map(&args, name, f64::ceil),
        "round" => real_map(&args, name, |v| {
            // MATLAB rounds halves away from zero (like Rust's `round`).
            v.round()
        }),
        "fix" => real_map(&args, name, f64::trunc),
        "sign" => real_map(&args, name, |v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        }),
        "mod" => {
            let a = arg_matrix(&args, 0, name)?;
            let b = arg_matrix(&args, 1, name)?;
            one(a.zip(&b, |x, y| {
                if y.re == 0.0 {
                    Cx::real(x.re)
                } else {
                    Cx::real(x.re - (x.re / y.re).floor() * y.re)
                }
            })?)
        }
        "rem" => {
            let a = arg_matrix(&args, 0, name)?;
            let b = arg_matrix(&args, 1, name)?;
            one(a.zip(&b, |x, y| {
                if y.re == 0.0 {
                    Cx::real(f64::NAN)
                } else {
                    Cx::real(x.re - (x.re / y.re).trunc() * y.re)
                }
            })?)
        }

        // ---- reductions ---------------------------------------------------
        "sum" => {
            let m = arg_matrix(&args, 0, name)?;
            one(m.reduce(Cx::ZERO, |a, b| a + b))
        }
        "prod" => {
            let m = arg_matrix(&args, 0, name)?;
            one(m.reduce(Cx::ONE, |a, b| a * b))
        }
        "cumsum" => {
            let m = arg_matrix(&args, 0, name)?;
            if !m.is_vector() && !m.is_empty() {
                return Err("cumsum: only vectors supported".to_string());
            }
            let mut acc = Cx::ZERO;
            let data: Vec<Cx> = m
                .data()
                .iter()
                .map(|&z| {
                    acc = acc + z;
                    acc
                })
                .collect();
            one(Matrix::new(m.rows(), m.cols(), data))
        }
        "mean" => {
            let m = arg_matrix(&args, 0, name)?;
            let n = if m.is_vector() { m.numel() } else { m.rows() };
            if n == 0 {
                return one(Matrix::from_f64(f64::NAN));
            }
            let s = m.reduce(Cx::ZERO, |a, b| a + b);
            one(s.map(|z| z / Cx::real(n as f64)))
        }
        "min" | "max" => min_max(name, args, nargout),
        "any" => {
            let m = arg_matrix(&args, 0, name)?;
            let r = m.reduce(Cx::ZERO, |a, b| {
                if a.re != 0.0 || b.re != 0.0 || b.im != 0.0 {
                    Cx::ONE
                } else {
                    Cx::ZERO
                }
            });
            one(r.into_logical())
        }
        "all" => {
            let m = arg_matrix(&args, 0, name)?;
            let r = m.reduce(Cx::ONE, |a, b| {
                if a.re != 0.0 && (b.re != 0.0 || b.im != 0.0) {
                    Cx::ONE
                } else {
                    Cx::ZERO
                }
            });
            one(r.into_logical())
        }
        "find" => {
            let m = arg_matrix(&args, 0, name)?;
            let hits: Vec<f64> = m
                .data()
                .iter()
                .enumerate()
                .filter(|(_, z)| z.re != 0.0 || z.im != 0.0)
                .map(|(k, _)| (k + 1) as f64)
                .collect();
            if m.rows() == 1 {
                one(Matrix::row_from_f64(&hits))
            } else {
                one(Matrix::col_from_f64(&hits))
            }
        }
        "dot" => {
            let a = arg_matrix(&args, 0, name)?;
            let b = arg_matrix(&args, 1, name)?;
            if a.numel() != b.numel() {
                return Err("dot: vectors must be the same length".to_string());
            }
            let mut acc = Cx::ZERO;
            for (x, y) in a.data().iter().zip(b.data()) {
                acc = acc + x.conj() * *y;
            }
            one(Matrix::scalar(acc))
        }
        "norm" => {
            let a = arg_matrix(&args, 0, name)?;
            if !a.is_vector() && !a.is_empty() {
                return Err("norm: only vector norms supported".to_string());
            }
            let s: f64 = a.data().iter().map(|z| z.abs() * z.abs()).sum();
            one(Matrix::from_f64(s.sqrt()))
        }

        // ---- reshaping ------------------------------------------------------
        "fliplr" => {
            let m = arg_matrix(&args, 0, name)?;
            let mut out = Matrix::zeros(m.rows(), m.cols());
            for c in 0..m.cols() {
                for r in 0..m.rows() {
                    *out.at_mut(r, m.cols() - 1 - c) = m.at(r, c);
                }
            }
            one(out)
        }
        "flipud" => {
            let m = arg_matrix(&args, 0, name)?;
            let mut out = Matrix::zeros(m.rows(), m.cols());
            for c in 0..m.cols() {
                for r in 0..m.rows() {
                    *out.at_mut(m.rows() - 1 - r, c) = m.at(r, c);
                }
            }
            one(out)
        }
        "reshape" => {
            let m = arg_matrix(&args, 0, name)?;
            let r = arg_usize(&args, 1, name)?;
            let c = arg_usize(&args, 2, name)?;
            one(m.reshape(r, c)?)
        }
        "repmat" => {
            let m = arg_matrix(&args, 0, name)?;
            let rr = arg_usize(&args, 1, name)?;
            let cc = if args.len() > 2 {
                arg_usize(&args, 2, name)?
            } else {
                rr
            };
            let mut out = Matrix::zeros(m.rows() * rr, m.cols() * cc);
            for bc in 0..cc {
                for br in 0..rr {
                    for c in 0..m.cols() {
                        for r in 0..m.rows() {
                            *out.at_mut(br * m.rows() + r, bc * m.cols() + c) = m.at(r, c);
                        }
                    }
                }
            }
            one(out)
        }

        // ---- I/O and misc -----------------------------------------------------
        "disp" => {
            let text = match args.first() {
                Some(Value::Str(s)) => s.clone(),
                Some(v) => format!("{v}"),
                None => String::new(),
            };
            host.emit(&text);
            host.emit("\n");
            Ok(vec![])
        }
        "fprintf" | "sprintf" => {
            let fmt = match args.first() {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err(format!("{name}: first argument must be a format string")),
            };
            let rendered = format_printf(&fmt, &args[1..])?;
            if name == "fprintf" {
                host.emit(&rendered);
                Ok(vec![])
            } else {
                Ok(vec![Value::Str(rendered)])
            }
        }
        "num2str" => {
            let m = arg_matrix(&args, 0, name)?;
            let s = if m.is_scalar() {
                m.as_scalar()?.to_string()
            } else {
                format!("{m}")
            };
            Ok(vec![Value::Str(s)])
        }
        "error" => {
            let msg = match args.first() {
                Some(Value::Str(s)) => {
                    if args.len() > 1 {
                        format_printf(s, &args[1..])?
                    } else {
                        s.clone()
                    }
                }
                _ => "error".to_string(),
            };
            Err(msg)
        }
        "deal" => {
            if args.len() == 1 {
                Ok(vec![args[0].clone(); nargout.max(1)])
            } else {
                Ok(args)
            }
        }
        _ => Err(format!("unknown builtin `{name}`")),
    }
}

fn min_max(name: &str, args: Vec<Value>, nargout: usize) -> Result<Vec<Value>, String> {
    let is_min = name == "min";
    let cmp = |a: f64, b: f64| if is_min { a < b } else { a > b };
    if args.len() >= 2 {
        // Element-wise two-argument form.
        let a = arg_matrix(&args, 0, name)?;
        let b = arg_matrix(&args, 1, name)?;
        return one(a.zip(&b, |x, y| if cmp(x.re, y.re) { x } else { y })?);
    }
    let m = arg_matrix(&args, 0, name)?;
    if m.is_empty() {
        return Ok(vec![
            Value::Num(Matrix::empty()),
            Value::Num(Matrix::empty()),
        ]);
    }
    let reduce_slice = |vals: &[Cx]| -> (Cx, usize) {
        let mut best = vals[0];
        let mut best_i = 0usize;
        for (k, &v) in vals.iter().enumerate().skip(1) {
            if cmp(v.re, best.re) {
                best = v;
                best_i = k;
            }
        }
        (best, best_i)
    };
    if m.is_vector() {
        let (v, i) = reduce_slice(m.data());
        let mut out = vec![Value::Num(Matrix::scalar(v))];
        if nargout >= 2 {
            out.push(Value::scalar((i + 1) as f64));
        }
        return Ok(out);
    }
    let mut vals = Matrix::zeros(1, m.cols());
    let mut idxs = Matrix::zeros(1, m.cols());
    for c in 0..m.cols() {
        let col: Vec<Cx> = (0..m.rows()).map(|r| m.at(r, c)).collect();
        let (v, i) = reduce_slice(&col);
        *vals.at_mut(0, c) = v;
        *idxs.at_mut(0, c) = Cx::real((i + 1) as f64);
    }
    let mut out = vec![Value::Num(vals)];
    if nargout >= 2 {
        out.push(Value::Num(idxs));
    }
    Ok(out)
}

/// Minimal `printf`-style formatter supporting `%d %i %f %g %e %s %%` with
/// optional width/precision, plus `\n` and `\t` escapes. Extra conversion
/// arguments recycle the format string, like MATLAB.
pub fn format_printf(fmt: &str, args: &[Value]) -> Result<String, String> {
    // Flatten matrix arguments element-wise, like MATLAB does.
    let mut flat: Vec<FormatArg> = Vec::new();
    for a in args {
        match a {
            Value::Str(s) => flat.push(FormatArg::Str(s.clone())),
            Value::Num(m) => {
                for z in m.data() {
                    flat.push(FormatArg::Num(z.re));
                }
            }
            _ => return Err("fprintf: cannot format function handle".to_string()),
        }
    }
    let mut out = String::new();
    let mut ai = 0usize;
    loop {
        let consumed_before = ai;
        render_once(fmt, &flat, &mut ai, &mut out)?;
        // Recycle the format while arguments remain and progress is made.
        if ai >= flat.len() || ai == consumed_before {
            break;
        }
    }
    Ok(out)
}

enum FormatArg {
    Num(f64),
    Str(String),
}

fn render_once(
    fmt: &str,
    args: &[FormatArg],
    ai: &mut usize,
    out: &mut String,
) -> Result<(), String> {
    let bytes = fmt.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                match bytes[i + 1] {
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'\\' => out.push('\\'),
                    c => {
                        out.push('\\');
                        out.push(c as char);
                    }
                }
                i += 2;
            }
            b'%' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'%' {
                    out.push('%');
                    i += 2;
                    continue;
                }
                // Parse %[width][.precision]conv
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'-') {
                    i += 1;
                }
                let mut precision: Option<usize> = None;
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    let ps = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    precision = fmt[ps..i].parse().ok();
                }
                if i >= bytes.len() {
                    return Err("fprintf: dangling `%`".to_string());
                }
                let conv = bytes[i] as char;
                i += 1;
                let width: i64 = fmt[start + 1..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '-')
                    .collect::<String>()
                    .parse()
                    .unwrap_or(0);
                let arg = args.get(*ai);
                let text = match (conv, arg) {
                    ('d' | 'i', Some(FormatArg::Num(v))) => {
                        *ai += 1;
                        format!("{}", *v as i64)
                    }
                    ('f', Some(FormatArg::Num(v))) => {
                        *ai += 1;
                        format!("{:.*}", precision.unwrap_or(6), v)
                    }
                    ('e', Some(FormatArg::Num(v))) => {
                        *ai += 1;
                        format!("{:.*e}", precision.unwrap_or(6), v)
                    }
                    ('g', Some(FormatArg::Num(v))) => {
                        *ai += 1;
                        format!("{v}")
                    }
                    ('s', Some(FormatArg::Str(s))) => {
                        *ai += 1;
                        s.clone()
                    }
                    ('s', Some(FormatArg::Num(v))) => {
                        *ai += 1;
                        format!("{v}")
                    }
                    (_, None) => String::new(),
                    _ => return Err(format!("fprintf: unsupported conversion `%{conv}`")),
                };
                let w = width.unsigned_abs() as usize;
                if w > text.len() {
                    if width < 0 {
                        out.push_str(&text);
                        out.push_str(&" ".repeat(w - text.len()));
                    } else {
                        out.push_str(&" ".repeat(w - text.len()));
                        out.push_str(&text);
                    }
                } else {
                    out.push_str(&text);
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestHost {
        out: String,
        state: u64,
    }

    impl TestHost {
        fn new() -> Self {
            TestHost {
                out: String::new(),
                state: 42,
            }
        }
    }

    impl Host for TestHost {
        fn next_rand(&mut self) -> f64 {
            self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.state >> 11) as f64 / (1u64 << 53) as f64
        }
        fn next_randn(&mut self) -> f64 {
            self.next_rand() - 0.5
        }
        fn reseed(&mut self, seed: u64) {
            self.state = seed;
        }
        fn emit(&mut self, text: &str) {
            self.out.push_str(text);
        }
    }

    fn call(name: &str, args: Vec<Value>) -> Vec<Value> {
        let mut h = TestHost::new();
        call_builtin(&mut h, name, args, 1).expect("builtin ok")
    }

    fn scalar_of(vs: Vec<Value>) -> f64 {
        vs[0]
            .as_matrix()
            .unwrap()
            .as_real_scalar()
            .expect("real scalar")
    }

    #[test]
    fn constants() {
        assert!((scalar_of(call("pi", vec![])) - std::f64::consts::PI).abs() < 1e-15);
        let i = call("i", vec![]);
        assert_eq!(i[0].as_matrix().unwrap().as_scalar().unwrap(), Cx::I);
    }

    #[test]
    fn zeros_and_size() {
        let z = call("zeros", vec![Value::scalar(2.0), Value::scalar(3.0)]);
        let m = z[0].as_matrix().unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        let s = call("size", vec![z[0].clone()]);
        let sm = s[0].as_matrix().unwrap();
        assert_eq!(sm.lin(0).re, 2.0);
        assert_eq!(sm.lin(1).re, 3.0);
    }

    #[test]
    fn size_two_outputs() {
        let mut h = TestHost::new();
        let outs = call_builtin(&mut h, "size", vec![Value::Num(Matrix::zeros(4, 7))], 2).unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[1].as_matrix().unwrap().as_real_scalar().unwrap(), 7.0);
    }

    #[test]
    fn sum_and_mean() {
        let v = Value::Num(Matrix::row_from_f64(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(scalar_of(call("sum", vec![v.clone()])), 10.0);
        assert_eq!(scalar_of(call("mean", vec![v])), 2.5);
    }

    #[test]
    fn min_max_with_index() {
        let mut h = TestHost::new();
        let v = Value::Num(Matrix::row_from_f64(&[3.0, 1.0, 2.0]));
        let outs = call_builtin(&mut h, "min", vec![v], 2).unwrap();
        assert_eq!(outs[0].as_matrix().unwrap().as_real_scalar().unwrap(), 1.0);
        assert_eq!(outs[1].as_matrix().unwrap().as_real_scalar().unwrap(), 2.0);
    }

    #[test]
    fn max_elementwise_two_args() {
        let a = Value::Num(Matrix::row_from_f64(&[1.0, 5.0]));
        let b = Value::Num(Matrix::row_from_f64(&[3.0, 2.0]));
        let r = call("max", vec![a, b]);
        let m = r[0].as_matrix().unwrap();
        assert_eq!(m.lin(0).re, 3.0);
        assert_eq!(m.lin(1).re, 5.0);
    }

    #[test]
    fn complex_builtins() {
        let z = Value::Num(Matrix::scalar(Cx::new(3.0, 4.0)));
        assert_eq!(scalar_of(call("abs", vec![z.clone()])), 5.0);
        assert_eq!(scalar_of(call("real", vec![z.clone()])), 3.0);
        assert_eq!(scalar_of(call("imag", vec![z.clone()])), 4.0);
        let c = call("conj", vec![z]);
        assert_eq!(
            c[0].as_matrix().unwrap().as_scalar().unwrap(),
            Cx::new(3.0, -4.0)
        );
    }

    #[test]
    fn mod_follows_matlab_sign() {
        assert_eq!(
            scalar_of(call("mod", vec![Value::scalar(-1.0), Value::scalar(3.0)])),
            2.0
        );
        assert_eq!(
            scalar_of(call("rem", vec![Value::scalar(-1.0), Value::scalar(3.0)])),
            -1.0
        );
    }

    #[test]
    fn find_returns_one_based() {
        let v = Value::Num(Matrix::row_from_f64(&[0.0, 7.0, 0.0, 3.0]));
        let r = call("find", vec![v]);
        let m = r[0].as_matrix().unwrap();
        assert_eq!(m.lin(0).re, 2.0);
        assert_eq!(m.lin(1).re, 4.0);
    }

    #[test]
    fn dot_conjugates_first_argument() {
        let a = Value::Num(Matrix::row(vec![Cx::new(0.0, 1.0)]));
        let b = Value::Num(Matrix::row(vec![Cx::new(0.0, 1.0)]));
        let r = call("dot", vec![a, b]);
        assert_eq!(r[0].as_matrix().unwrap().as_scalar().unwrap(), Cx::ONE);
    }

    #[test]
    fn linspace_endpoints() {
        let r = call(
            "linspace",
            vec![Value::scalar(0.0), Value::scalar(1.0), Value::scalar(5.0)],
        );
        let m = r[0].as_matrix().unwrap();
        assert_eq!(m.numel(), 5);
        assert_eq!(m.lin(0).re, 0.0);
        assert_eq!(m.lin(4).re, 1.0);
    }

    #[test]
    fn fprintf_formatting() {
        let mut h = TestHost::new();
        call_builtin(
            &mut h,
            "fprintf",
            vec![
                Value::Str("x=%d y=%.2f %s\\n".to_string()),
                Value::scalar(42.0),
                Value::scalar(2.5),
                Value::Str("ok".to_string()),
            ],
            0,
        )
        .unwrap();
        assert_eq!(h.out, "x=42 y=2.50 ok\n");
    }

    #[test]
    fn fprintf_recycles_format() {
        let mut h = TestHost::new();
        call_builtin(
            &mut h,
            "fprintf",
            vec![
                Value::Str("%d,".to_string()),
                Value::Num(Matrix::row_from_f64(&[1.0, 2.0, 3.0])),
            ],
            0,
        )
        .unwrap();
        assert_eq!(h.out, "1,2,3,");
    }

    #[test]
    fn error_builtin_propagates() {
        let mut h = TestHost::new();
        let r = call_builtin(
            &mut h,
            "error",
            vec![Value::Str("bad thing %d".to_string()), Value::scalar(7.0)],
            0,
        );
        assert_eq!(r.unwrap_err(), "bad thing 7");
    }

    #[test]
    fn rng_makes_rand_deterministic() {
        let mut h = TestHost::new();
        call_builtin(&mut h, "rng", vec![Value::scalar(123.0)], 0).unwrap();
        let a = call_builtin(&mut h, "rand", vec![], 1).unwrap();
        call_builtin(&mut h, "rng", vec![Value::scalar(123.0)], 0).unwrap();
        let b = call_builtin(&mut h, "rand", vec![], 1).unwrap();
        assert_eq!(
            a[0].as_matrix().unwrap().as_scalar().unwrap(),
            b[0].as_matrix().unwrap().as_scalar().unwrap()
        );
    }

    #[test]
    fn repmat_tiles() {
        let r = call(
            "repmat",
            vec![
                Value::Num(Matrix::row_from_f64(&[1.0, 2.0])),
                Value::scalar(2.0),
                Value::scalar(2.0),
            ],
        );
        let m = r[0].as_matrix().unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 4));
        assert_eq!(m.at(1, 3).re, 2.0);
    }

    #[test]
    fn fliplr_reverses_columns() {
        let r = call(
            "fliplr",
            vec![Value::Num(Matrix::row_from_f64(&[1.0, 2.0, 3.0]))],
        );
        let m = r[0].as_matrix().unwrap();
        assert_eq!(m.lin(0).re, 3.0);
        assert_eq!(m.lin(2).re, 1.0);
    }
}
