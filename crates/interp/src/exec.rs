//! Tree-walking interpreter — the numerical oracle the compiler is tested
//! against.

use crate::builtins::{self, Host};
use crate::cx::Cx;
use crate::value::{Closure, Matrix, Value};
use matic_frontend::ast::*;
use matic_frontend::span::Span;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Coarse classification of a runtime failure, shared by the interpreter
/// and the ASIP simulator so differential harnesses can require the two
/// to agree on *why* a program failed, not just that it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The execution step budget ran out (runaway or non-terminating
    /// program stopped by fuel, never by hanging).
    FuelExhausted,
    /// An array subscript outside the valid extent (or not a positive
    /// integer index).
    OutOfBounds,
    /// Any other runtime trap: dimension mismatch, `error()` builtin,
    /// unsupported construct, arity mismatch, ...
    Trap,
}

/// Classifies an error message produced by the shared matrix/indexing
/// helpers (which report through plain `String`s).
pub fn classify_message(message: &str) -> ErrorKind {
    if message.contains("fuel exhausted") {
        ErrorKind::FuelExhausted
    } else if message.contains("out of bounds") || message.contains("index must be") {
        ErrorKind::OutOfBounds
    } else {
        ErrorKind::Trap
    }
}

/// A runtime error with the source span it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
    /// Coarse failure class (fuel, bounds, other trap).
    pub kind: ErrorKind,
}

impl RuntimeError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        let message = message.into();
        let kind = classify_message(&message);
        RuntimeError {
            message,
            span,
            kind,
        }
    }

    /// The fuel-exhaustion error raised when the step budget runs out.
    pub fn fuel_exhausted(span: Span) -> Self {
        RuntimeError {
            message: "execution fuel exhausted".to_string(),
            span,
            kind: ErrorKind::FuelExhausted,
        }
    }

    /// Whether this failure is the fuel budget running out.
    pub fn is_fuel_exhausted(&self) -> bool {
        self.kind == ErrorKind::FuelExhausted
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {} at {}", self.message, self.span)
    }
}

impl std::error::Error for RuntimeError {}

/// Control-flow result of executing a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

/// One call frame of local variables.
#[derive(Default)]
struct Frame {
    vars: HashMap<String, Value>,
}

/// Deterministic xorshift64* random stream (MATLAB's `rand`/`randn`
/// substitute; determinism matters more than the distribution's pedigree).
struct Rng {
    state: u64,
    spare_gauss: Option<f64>,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Rng {
            state: seed.max(1),
            spare_gauss: None,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_gauss(&mut self) -> f64 {
        if let Some(g) = self.spare_gauss.take() {
            return g;
        }
        // Box–Muller.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gauss = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// The interpreter: owns a parsed [`Program`] and executes it.
///
/// # Examples
///
/// ```
/// use matic_interp::Interpreter;
/// use matic_interp::value::Value;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "function y = twice(x)\ny = 2 * x;\nend";
/// let (program, diags) = matic_frontend::parse(src);
/// assert!(!diags.has_errors());
/// let mut interp = Interpreter::new(program);
/// let out = interp.call("twice", vec![Value::scalar(21.0)], 1)?;
/// assert_eq!(out[0].as_matrix()?.as_real_scalar()?, 42.0);
/// # Ok(())
/// # }
/// ```
pub struct Interpreter {
    program: Program,
    globals: HashMap<String, Value>,
    rng: Rng,
    output: String,
    fuel: u64,
    /// Stack of `end` contexts: (extents per index position, total positions).
    end_stack: Vec<(Vec<usize>, usize)>,
    /// Script workspace (root frame), kept after `run_script`.
    workspace: Frame,
}

impl Host for Interpreter {
    fn next_rand(&mut self) -> f64 {
        self.rng.next_f64()
    }
    fn next_randn(&mut self) -> f64 {
        self.rng.next_gauss()
    }
    fn reseed(&mut self, seed: u64) {
        self.rng = Rng::new(seed ^ 0x9E3779B97F4A7C15);
    }
    fn emit(&mut self, text: &str) {
        self.output.push_str(text);
    }
}

/// Default execution fuel (statements + expression nodes evaluated).
pub const DEFAULT_FUEL: u64 = 200_000_000;

impl Interpreter {
    /// Creates an interpreter over a parsed program.
    pub fn new(program: Program) -> Self {
        Interpreter {
            program,
            globals: HashMap::new(),
            rng: Rng::new(0x9E3779B97F4A7C15),
            output: String::new(),
            fuel: DEFAULT_FUEL,
            end_stack: Vec::new(),
            workspace: Frame::default(),
        }
    }

    /// Parses and wraps `src`.
    ///
    /// # Errors
    ///
    /// Returns the first parse diagnostic as a [`RuntimeError`].
    pub fn from_source(src: &str) -> Result<Self, RuntimeError> {
        let (program, diags) = matic_frontend::parse(src);
        if let Some(d) = diags.first_error() {
            return Err(RuntimeError::new(d.message.clone(), d.span));
        }
        Ok(Self::new(program))
    }

    /// Limits execution steps; exceeded fuel raises a runtime error.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Everything printed by `disp`/`fprintf`/unsuppressed statements so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Reads a variable from the script workspace.
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.workspace.vars.get(name)
    }

    /// Sets a variable in the script workspace.
    pub fn set_var(&mut self, name: impl Into<String>, value: Value) {
        self.workspace.vars.insert(name.into(), value);
    }

    /// Runs the script part of the program in the workspace frame.
    ///
    /// # Errors
    ///
    /// Returns the first runtime error raised.
    pub fn run_script(&mut self) -> Result<(), RuntimeError> {
        let stmts = std::mem::take(&mut self.program.script);
        let mut frame = std::mem::take(&mut self.workspace);
        let result = self.exec_block(&stmts, &mut frame);
        self.workspace = frame;
        self.program.script = stmts;
        result.map(|_| ())
    }

    /// Calls a user-defined function (or builtin) by name.
    ///
    /// # Errors
    ///
    /// Returns a runtime error for unknown names, arity mismatches or any
    /// error raised while executing the body.
    pub fn call(
        &mut self,
        name: &str,
        args: Vec<Value>,
        nargout: usize,
    ) -> Result<Vec<Value>, RuntimeError> {
        self.call_spanned(name, args, nargout, Span::dummy())
    }

    fn call_spanned(
        &mut self,
        name: &str,
        args: Vec<Value>,
        nargout: usize,
        span: Span,
    ) -> Result<Vec<Value>, RuntimeError> {
        if let Some(func) = self.program.function(name) {
            let func = func.clone();
            return self.call_user(&func, args, nargout, span);
        }
        if builtins::is_builtin(name) {
            return builtins::call_builtin(self, name, args, nargout)
                .map_err(|m| RuntimeError::new(m, span));
        }
        Err(RuntimeError::new(
            format!("undefined function or variable `{name}`"),
            span,
        ))
    }

    fn call_user(
        &mut self,
        func: &Function,
        args: Vec<Value>,
        nargout: usize,
        span: Span,
    ) -> Result<Vec<Value>, RuntimeError> {
        if args.len() > func.params.len() {
            return Err(RuntimeError::new(
                format!(
                    "too many inputs to `{}` ({} > {})",
                    func.name,
                    args.len(),
                    func.params.len()
                ),
                span,
            ));
        }
        let mut frame = Frame::default();
        let nargin = args.len();
        for (param, arg) in func.params.iter().zip(args) {
            if param != "~" {
                frame.vars.insert(param.clone(), arg);
            }
        }
        frame
            .vars
            .insert("nargin".into(), Value::scalar(nargin as f64));
        frame
            .vars
            .insert("nargout".into(), Value::scalar(nargout as f64));
        self.exec_block(&func.body, &mut frame)?;
        let wanted = nargout.max(usize::from(!func.outputs.is_empty()));
        let mut outs = Vec::with_capacity(wanted);
        for out_name in func.outputs.iter().take(wanted.max(1)) {
            match frame.vars.get(out_name) {
                Some(v) => outs.push(v.clone()),
                None => {
                    if outs.len() < nargout {
                        return Err(RuntimeError::new(
                            format!(
                                "output argument `{out_name}` of `{}` not assigned",
                                func.name
                            ),
                            span,
                        ));
                    }
                    break;
                }
            }
        }
        Ok(outs)
    }

    fn burn(&mut self, span: Span) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::fuel_exhausted(span));
        }
        self.fuel -= 1;
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt], frame: &mut Frame) -> Result<Flow, RuntimeError> {
        for stmt in stmts {
            match self.exec_stmt(stmt, frame)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<Flow, RuntimeError> {
        self.burn(stmt.span())?;
        match stmt {
            Stmt::Assign {
                target,
                value,
                suppressed,
                ..
            } => {
                let v = self.eval(value, frame)?;
                self.assign(target, v, frame)?;
                if !*suppressed {
                    self.display_var(target.name(), frame);
                }
                Ok(Flow::Normal)
            }
            Stmt::MultiAssign {
                targets,
                call,
                suppressed,
                span,
            } => {
                let outs = match call {
                    Expr::Call { name, args, .. } => {
                        self.eval_call_multi(name, args, targets.len(), frame, *span)?
                    }
                    other => vec![self.eval(other, frame)?],
                };
                if outs.len() < targets.iter().filter(|t| t.is_some()).count() {
                    return Err(RuntimeError::new("not enough output arguments", *span));
                }
                for (target, value) in targets.iter().zip(outs) {
                    if let Some(t) = target {
                        self.assign(t, value, frame)?;
                        if !*suppressed {
                            self.display_var(t.name(), frame);
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ExprStmt {
                expr, suppressed, ..
            } => {
                let v = self.eval(expr, frame)?;
                frame.vars.insert("ans".into(), v);
                if !*suppressed {
                    self.display_var("ans", frame);
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (cond, body) in arms {
                    let c = self.eval(cond, frame)?;
                    let truthy = c.as_bool().map_err(|m| RuntimeError::new(m, cond.span()))?;
                    if truthy {
                        return self.exec_block(body, frame);
                    }
                }
                if let Some(body) = else_body {
                    return self.exec_block(body, frame);
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                var, iter, body, ..
            } => {
                let seq = self
                    .eval(iter, frame)?
                    .into_matrix()
                    .map_err(|m| RuntimeError::new(m, iter.span()))?;
                // Iterate over columns for matrices, elements for vectors.
                let items: Vec<Matrix> = if seq.rows() > 1 {
                    (0..seq.cols()).map(|c| seq.column(c)).collect()
                } else {
                    seq.data().iter().map(|&z| Matrix::scalar(z)).collect()
                };
                for item in items {
                    frame.vars.insert(var.clone(), Value::Num(item));
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Continue | Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    self.burn(cond.span())?;
                    let c = self.eval(cond, frame)?;
                    let truthy = c.as_bool().map_err(|m| RuntimeError::new(m, cond.span()))?;
                    if !truthy {
                        break;
                    }
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Continue | Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Return(_) => Ok(Flow::Return),
            Stmt::Global { names, .. } => {
                for n in names {
                    let v = self
                        .globals
                        .get(n)
                        .cloned()
                        .unwrap_or(Value::Num(Matrix::empty()));
                    frame.vars.insert(n.clone(), v);
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn display_var(&mut self, name: &str, frame: &Frame) {
        if let Some(v) = frame.vars.get(name) {
            let text = format!("{name} = {v}\n");
            self.output.push_str(&text);
        }
    }

    fn assign(
        &mut self,
        target: &LValue,
        value: Value,
        frame: &mut Frame,
    ) -> Result<(), RuntimeError> {
        match target {
            LValue::Name { name, .. } => {
                frame.vars.insert(name.clone(), value);
                Ok(())
            }
            LValue::Index {
                name,
                indices,
                span,
            } => {
                let mut base = match frame.vars.get(name) {
                    Some(Value::Num(m)) => m.clone(),
                    Some(_) => {
                        return Err(RuntimeError::new(
                            format!("cannot index-assign non-matrix `{name}`"),
                            *span,
                        ))
                    }
                    None => Matrix::empty(),
                };
                let rhs = value
                    .into_matrix()
                    .map_err(|m| RuntimeError::new(m, *span))?;
                match indices.len() {
                    1 => {
                        let idx = self.eval_index(&indices[0], frame, &[base.numel()], 0, *span)?;
                        base.assign_linear(&idx, &rhs)
                            .map_err(|m| RuntimeError::new(m, *span))?;
                    }
                    2 => {
                        let extents = [base.rows(), base.cols()];
                        let ri = self.eval_index(&indices[0], frame, &extents, 0, *span)?;
                        let ci = self.eval_index(&indices[1], frame, &extents, 1, *span)?;
                        base.assign_2d(&ri, &ci, &rhs)
                            .map_err(|m| RuntimeError::new(m, *span))?;
                    }
                    n => {
                        return Err(RuntimeError::new(
                            format!("unsupported {n}-dimensional indexing"),
                            *span,
                        ))
                    }
                }
                frame.vars.insert(name.clone(), Value::Num(base));
                Ok(())
            }
        }
    }

    /// Evaluates an index expression, resolving `:` and `end` against the
    /// extents of the array being indexed.
    fn eval_index(
        &mut self,
        expr: &Expr,
        frame: &mut Frame,
        extents: &[usize],
        position: usize,
        span: Span,
    ) -> Result<Matrix, RuntimeError> {
        match expr {
            Expr::ColonAll { .. } => {
                let extent = if extents.len() == 1 {
                    extents[0]
                } else {
                    extents[position]
                };
                Ok(Matrix::colon_index(extent))
            }
            _ => {
                self.end_stack.push((extents.to_vec(), position));
                let r = self.eval(expr, frame);
                self.end_stack.pop();
                let v = r?;
                v.into_matrix().map_err(|m| RuntimeError::new(m, span))
            }
        }
    }

    fn eval_call_multi(
        &mut self,
        name: &str,
        args: &[Expr],
        nargout: usize,
        frame: &mut Frame,
        span: Span,
    ) -> Result<Vec<Value>, RuntimeError> {
        // A variable takes precedence: indexing yields a single output.
        if frame.vars.contains_key(name) {
            let v = self.eval(
                &Expr::Call {
                    name: name.to_string(),
                    args: args.to_vec(),
                    span,
                },
                frame,
            )?;
            return Ok(vec![v]);
        }
        let arg_vals = self.eval_args(args, frame)?;
        self.call_spanned(name, arg_vals, nargout, span)
    }

    fn eval_args(&mut self, args: &[Expr], frame: &mut Frame) -> Result<Vec<Value>, RuntimeError> {
        args.iter().map(|a| self.eval(a, frame)).collect()
    }

    /// Evaluates an expression to a value.
    fn eval(&mut self, expr: &Expr, frame: &mut Frame) -> Result<Value, RuntimeError> {
        self.burn(expr.span())?;
        match expr {
            Expr::Number { value, .. } => Ok(Value::scalar(*value)),
            Expr::Imaginary { value, .. } => Ok(Value::Num(Matrix::scalar(Cx::new(0.0, *value)))),
            Expr::Str { value, .. } => Ok(Value::Str(value.clone())),
            Expr::Ident { name, span } => {
                if let Some(v) = frame.vars.get(name) {
                    return Ok(v.clone());
                }
                self.call_spanned(name, vec![], 1, *span).map(|mut outs| {
                    if outs.is_empty() {
                        Value::Num(Matrix::empty())
                    } else {
                        outs.swap_remove(0)
                    }
                })
            }
            Expr::Call { name, args, span } => self.eval_call(name, args, frame, *span),
            Expr::Binary { op, lhs, rhs, span } => {
                if matches!(op, BinOp::AndAnd | BinOp::OrOr) {
                    let l = self.eval(lhs, frame)?;
                    let lb = l.as_bool().map_err(|m| RuntimeError::new(m, *span))?;
                    let result = match op {
                        BinOp::AndAnd => {
                            if !lb {
                                false
                            } else {
                                let r = self.eval(rhs, frame)?;
                                r.as_bool().map_err(|m| RuntimeError::new(m, *span))?
                            }
                        }
                        _ => {
                            if lb {
                                true
                            } else {
                                let r = self.eval(rhs, frame)?;
                                r.as_bool().map_err(|m| RuntimeError::new(m, *span))?
                            }
                        }
                    };
                    return Ok(Value::Num(Matrix::logical_scalar(result)));
                }
                let l = self
                    .eval(lhs, frame)?
                    .into_matrix()
                    .map_err(|m| RuntimeError::new(m, lhs.span()))?;
                let r = self
                    .eval(rhs, frame)?
                    .into_matrix()
                    .map_err(|m| RuntimeError::new(m, rhs.span()))?;
                apply_binop(*op, &l, &r)
                    .map(Value::Num)
                    .map_err(|m| RuntimeError::new(m, *span))
            }
            Expr::Unary { op, operand, .. } => {
                let v = self
                    .eval(operand, frame)?
                    .into_matrix()
                    .map_err(|m| RuntimeError::new(m, operand.span()))?;
                let out = match op {
                    UnOp::Neg => v.map(|z| -z),
                    UnOp::Plus => v,
                    UnOp::Not => v
                        .map(|z| Cx::real(if z.re == 0.0 && z.im == 0.0 { 1.0 } else { 0.0 }))
                        .into_logical(),
                };
                Ok(Value::Num(out))
            }
            Expr::Transpose {
                operand, conjugate, ..
            } => {
                let v = self
                    .eval(operand, frame)?
                    .into_matrix()
                    .map_err(|m| RuntimeError::new(m, operand.span()))?;
                Ok(Value::Num(v.transpose(*conjugate)))
            }
            Expr::Range {
                start,
                step,
                stop,
                span,
            } => {
                let s = self.eval_real(start, frame)?;
                let e = self.eval_real(stop, frame)?;
                let st = match step {
                    Some(x) => self.eval_real(x, frame)?,
                    None => 1.0,
                };
                let _ = span;
                Ok(Value::Num(Matrix::range(s, st, e)))
            }
            Expr::ColonAll { span } => Err(RuntimeError::new(
                "`:` is only valid inside an index",
                *span,
            )),
            Expr::EndKeyword { span } => match self.end_stack.last() {
                Some((extents, position)) => {
                    let v = if extents.len() == 1 {
                        extents[0]
                    } else {
                        extents[*position]
                    };
                    Ok(Value::scalar(v as f64))
                }
                None => Err(RuntimeError::new(
                    "`end` used outside an index expression",
                    *span,
                )),
            },
            Expr::Matrix { rows, span } => self.eval_matrix(rows, frame, *span),
            Expr::AnonFn { params, body, .. } => {
                // Capture every currently bound variable that occurs free.
                let mut captures = Vec::new();
                body.walk(&mut |e| {
                    if let Expr::Ident { name, .. } = e {
                        if !params.contains(name) {
                            if let Some(v) = frame.vars.get(name) {
                                if !captures.iter().any(|(n, _): &(String, Value)| n == name) {
                                    captures.push((name.clone(), v.clone()));
                                }
                            }
                        }
                    }
                });
                Ok(Value::Anon(Rc::new(Closure {
                    params: params.clone(),
                    body: (**body).clone(),
                    captures,
                })))
            }
            Expr::FnHandle { name, .. } => Ok(Value::FnHandle(name.clone())),
        }
    }

    fn eval_real(&mut self, expr: &Expr, frame: &mut Frame) -> Result<f64, RuntimeError> {
        self.eval(expr, frame)?
            .into_matrix()
            .and_then(|m| m.as_real_scalar())
            .map_err(|m| RuntimeError::new(m, expr.span()))
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        frame: &mut Frame,
        span: Span,
    ) -> Result<Value, RuntimeError> {
        // 1. Variable: indexing, or invoking a stored function handle.
        if let Some(v) = frame.vars.get(name).cloned() {
            return match v {
                Value::Num(m) => self.index_matrix(&m, args, frame, span).map(Value::Num),
                Value::Str(s) => {
                    let m = Value::Str(s)
                        .into_matrix()
                        .map_err(|m| RuntimeError::new(m, span))?;
                    let picked = self.index_matrix(&m, args, frame, span)?;
                    // Indexing a string yields a string.
                    let text: String = picked
                        .data()
                        .iter()
                        .map(|z| char::from_u32(z.re as u32).unwrap_or('?'))
                        .collect();
                    Ok(Value::Str(text))
                }
                Value::FnHandle(f) => {
                    let vals = self.eval_args(args, frame)?;
                    self.call_spanned(&f, vals, 1, span).map(|mut o| {
                        if o.is_empty() {
                            Value::Num(Matrix::empty())
                        } else {
                            o.swap_remove(0)
                        }
                    })
                }
                Value::Anon(closure) => {
                    let vals = self.eval_args(args, frame)?;
                    self.call_closure(&closure, vals, span)
                }
            };
        }
        // 2. `feval` special form.
        if name == "feval" {
            let mut vals = self.eval_args(args, frame)?;
            if vals.is_empty() {
                return Err(RuntimeError::new("feval: missing function", span));
            }
            let target = vals.remove(0);
            return match target {
                Value::FnHandle(f) => self.call_spanned(&f, vals, 1, span).map(|mut o| {
                    if o.is_empty() {
                        Value::Num(Matrix::empty())
                    } else {
                        o.swap_remove(0)
                    }
                }),
                Value::Str(f) => self.call_spanned(&f, vals, 1, span).map(|mut o| {
                    if o.is_empty() {
                        Value::Num(Matrix::empty())
                    } else {
                        o.swap_remove(0)
                    }
                }),
                Value::Anon(c) => self.call_closure(&c, vals, span),
                Value::Num(_) => Err(RuntimeError::new("feval: not a function", span)),
            };
        }
        // 3. User function / builtin.
        let vals = self.eval_args(args, frame)?;
        self.call_spanned(name, vals, 1, span).map(|mut outs| {
            if outs.is_empty() {
                Value::Num(Matrix::empty())
            } else {
                outs.swap_remove(0)
            }
        })
    }

    fn call_closure(
        &mut self,
        closure: &Closure,
        args: Vec<Value>,
        span: Span,
    ) -> Result<Value, RuntimeError> {
        if args.len() != closure.params.len() {
            return Err(RuntimeError::new(
                format!(
                    "anonymous function expects {} arguments, got {}",
                    closure.params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut frame = Frame::default();
        for (n, v) in &closure.captures {
            frame.vars.insert(n.clone(), v.clone());
        }
        for (p, a) in closure.params.iter().zip(args) {
            frame.vars.insert(p.clone(), a);
        }
        self.eval(&closure.body, &mut frame)
    }

    fn index_matrix(
        &mut self,
        base: &Matrix,
        args: &[Expr],
        frame: &mut Frame,
        span: Span,
    ) -> Result<Matrix, RuntimeError> {
        match args.len() {
            0 => Ok(base.clone()),
            1 => {
                let idx = self.eval_index(&args[0], frame, &[base.numel()], 0, span)?;
                base.index_linear(&idx)
                    .map_err(|m| RuntimeError::new(m, span))
            }
            2 => {
                let extents = [base.rows(), base.cols()];
                let ri = self.eval_index(&args[0], frame, &extents, 0, span)?;
                let ci = self.eval_index(&args[1], frame, &extents, 1, span)?;
                base.index_2d(&ri, &ci)
                    .map_err(|m| RuntimeError::new(m, span))
            }
            n => Err(RuntimeError::new(
                format!("unsupported {n}-dimensional indexing"),
                span,
            )),
        }
    }

    fn eval_matrix(
        &mut self,
        rows: &[Vec<Expr>],
        frame: &mut Frame,
        span: Span,
    ) -> Result<Value, RuntimeError> {
        // Single row of strings concatenates to a string.
        if rows.len() == 1 && !rows[0].is_empty() {
            let mut all_str = true;
            let mut vals = Vec::new();
            for e in &rows[0] {
                let v = self.eval(e, frame)?;
                if !matches!(v, Value::Str(_)) {
                    all_str = false;
                }
                vals.push(v);
            }
            if all_str {
                let s: String = vals
                    .into_iter()
                    .filter_map(|v| match v {
                        Value::Str(s) => Some(s),
                        _ => None,
                    })
                    .collect();
                return Ok(Value::Str(s));
            }
            let mut acc = Matrix::empty();
            for v in vals {
                let m = v.into_matrix().map_err(|m| RuntimeError::new(m, span))?;
                acc = acc.horzcat(&m).map_err(|m| RuntimeError::new(m, span))?;
            }
            return Ok(Value::Num(acc));
        }
        let mut acc = Matrix::empty();
        for row in rows {
            let mut row_acc = Matrix::empty();
            for e in row {
                let m = self
                    .eval(e, frame)?
                    .into_matrix()
                    .map_err(|m| RuntimeError::new(m, e.span()))?;
                row_acc = row_acc
                    .horzcat(&m)
                    .map_err(|m| RuntimeError::new(m, e.span()))?;
            }
            acc = acc
                .vertcat(&row_acc)
                .map_err(|m| RuntimeError::new(m, span))?;
        }
        Ok(Value::Num(acc))
    }
}

/// Applies a (non-short-circuit) binary operator with MATLAB semantics.
pub fn apply_binop(op: BinOp, l: &Matrix, r: &Matrix) -> Result<Matrix, String> {
    match op {
        BinOp::Add => l.zip(r, |a, b| a + b),
        BinOp::Sub => l.zip(r, |a, b| a - b),
        BinOp::ElemMul => l.zip(r, |a, b| a * b),
        BinOp::ElemDiv => l.zip(r, |a, b| a / b),
        BinOp::ElemLeftDiv => l.zip(r, |a, b| b / a),
        BinOp::ElemPow => l.zip(r, Cx::powc),
        BinOp::MatMul => l.matmul(r),
        BinOp::MatDiv => {
            if r.is_scalar() {
                l.zip(r, |a, b| a / b)
            } else {
                Err("matrix right-division only supported for scalar divisors".to_string())
            }
        }
        BinOp::MatLeftDiv => {
            if l.is_scalar() {
                l.zip(r, |a, b| b / a)
            } else {
                Err("matrix left-division only supported for scalar divisors".to_string())
            }
        }
        BinOp::MatPow => {
            if l.is_scalar() && r.is_scalar() {
                Ok(Matrix::scalar(l.lin(0).powc(r.lin(0))))
            } else {
                Err("matrix power only supported for scalars".to_string())
            }
        }
        BinOp::Eq => l.compare(r, |a, b| a == b),
        BinOp::Ne => l.compare(r, |a, b| a != b),
        BinOp::Lt => l.compare(r, |a, b| a.re < b.re),
        BinOp::Le => l.compare(r, |a, b| a.re <= b.re),
        BinOp::Gt => l.compare(r, |a, b| a.re > b.re),
        BinOp::Ge => l.compare(r, |a, b| a.re >= b.re),
        BinOp::And => l.compare(r, |a, b| {
            (a.re != 0.0 || a.im != 0.0) && (b.re != 0.0 || b.im != 0.0)
        }),
        BinOp::Or => l.compare(r, |a, b| {
            a.re != 0.0 || a.im != 0.0 || b.re != 0.0 || b.im != 0.0
        }),
        BinOp::AndAnd | BinOp::OrOr => {
            Err("short-circuit operator applied to matrices".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Interpreter {
        let mut i = Interpreter::from_source(src).expect("parse ok");
        i.run_script().expect("run ok");
        i
    }

    fn var_f64(i: &Interpreter, name: &str) -> f64 {
        i.var(name)
            .expect("var exists")
            .as_matrix()
            .unwrap()
            .as_real_scalar()
            .unwrap()
    }

    fn var_matrix<'a>(i: &'a Interpreter, name: &str) -> &'a Matrix {
        i.var(name).expect("var exists").as_matrix().unwrap()
    }

    #[test]
    fn arithmetic_script() {
        let i = run("x = 2 + 3 * 4;");
        assert_eq!(var_f64(&i, "x"), 14.0);
    }

    #[test]
    fn classifies_error_messages_into_kinds() {
        assert_eq!(
            classify_message("execution fuel exhausted"),
            ErrorKind::FuelExhausted
        );
        assert_eq!(
            classify_message("index 9 out of bounds (extent 4)"),
            ErrorKind::OutOfBounds
        );
        assert_eq!(
            classify_message("index must be a positive integer, got 0.5"),
            ErrorKind::OutOfBounds
        );
        assert_eq!(
            classify_message("undefined function or variable `q`"),
            ErrorKind::Trap
        );
    }

    #[test]
    fn fuel_exhaustion_carries_structured_kind() {
        let mut i = Interpreter::from_source("x = 0;\nwhile 1\nx = x + 1;\nend").expect("parse ok");
        i.set_fuel(10_000);
        let err = i.run_script().expect_err("must exhaust fuel");
        assert!(err.is_fuel_exhausted());
        assert_eq!(err.kind, ErrorKind::FuelExhausted);
    }

    #[test]
    fn oob_read_carries_structured_kind() {
        let mut i = Interpreter::from_source("v = [1 2 3];\nx = v(7);").expect("parse ok");
        let err = i.run_script().expect_err("must trap");
        assert_eq!(err.kind, ErrorKind::OutOfBounds);
        assert!(!err.is_fuel_exhausted());
    }

    #[test]
    fn matrix_literal_and_indexing() {
        let i = run("a = [1 2; 3 4];\nb = a(2, 1);\nc = a(4);");
        assert_eq!(var_f64(&i, "b"), 3.0);
        assert_eq!(var_f64(&i, "c"), 4.0);
    }

    #[test]
    fn colon_and_end() {
        let i = run("v = 10:10:50;\na = v(end);\nb = v(end-1);\nc = v(2:end);");
        assert_eq!(var_f64(&i, "a"), 50.0);
        assert_eq!(var_f64(&i, "b"), 40.0);
        assert_eq!(var_matrix(&i, "c").numel(), 4);
    }

    #[test]
    fn colon_all_in_2d() {
        let i = run("a = [1 2 3; 4 5 6];\nr = a(2, :);\nc = a(:, 2);");
        assert_eq!(var_matrix(&i, "r").cols(), 3);
        assert_eq!(var_matrix(&i, "r").lin(0).re, 4.0);
        assert_eq!(var_matrix(&i, "c").rows(), 2);
        assert_eq!(var_matrix(&i, "c").lin(1).re, 5.0);
    }

    #[test]
    fn for_loop_accumulates() {
        let i = run("s = 0;\nfor k = 1:10\n s = s + k;\nend");
        assert_eq!(var_f64(&i, "s"), 55.0);
    }

    #[test]
    fn for_loop_with_step() {
        let i = run("s = 0;\nfor k = 10:-2:0\n s = s + k;\nend");
        assert_eq!(var_f64(&i, "s"), 30.0);
    }

    #[test]
    fn while_with_break_continue() {
        let i = run(
            "s = 0;\nk = 0;\nwhile 1\n k = k + 1;\n if k > 10\n  break\n end\n if mod(k, 2) == 0\n  continue\n end\n s = s + k;\nend",
        );
        assert_eq!(var_f64(&i, "s"), 25.0); // 1+3+5+7+9
    }

    #[test]
    fn if_elseif_else() {
        let i = run("x = -3;\nif x > 0\n s = 1;\nelseif x == 0\n s = 0;\nelse\n s = -1;\nend");
        assert_eq!(var_f64(&i, "s"), -1.0);
    }

    #[test]
    fn function_call_and_recursion() {
        let src = "r = fact(5);\nfunction y = fact(n)\nif n <= 1\n y = 1;\nelse\n y = n * fact(n - 1);\nend\nend";
        let i = run(src);
        assert_eq!(var_f64(&i, "r"), 120.0);
    }

    #[test]
    fn multi_output_function() {
        let src = "[a, b] = swap(1, 2);\nfunction [x, y] = swap(p, q)\nx = q;\ny = p;\nend";
        let i = run(src);
        assert_eq!(var_f64(&i, "a"), 2.0);
        assert_eq!(var_f64(&i, "b"), 1.0);
    }

    #[test]
    fn complex_arithmetic() {
        let i = run("z = (1 + 2i) * (3 - 1i);\nm = abs(z);");
        let z = var_matrix(&i, "z").as_scalar().unwrap();
        assert!(z.approx_eq(Cx::new(5.0, 5.0), 1e-12));
        assert!((var_f64(&i, "m") - 50.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn transpose_conjugates() {
        let i = run("v = [1+1i, 2];\nw = v';\nu = v.';");
        assert_eq!(var_matrix(&i, "w").lin(0).im, -1.0);
        assert_eq!(var_matrix(&i, "u").lin(0).im, 1.0);
    }

    #[test]
    fn elementwise_vs_matrix_ops() {
        let i = run("a = [1 2; 3 4];\ne = a .* a;\nm = a * a;");
        assert_eq!(var_matrix(&i, "e").at(1, 1).re, 16.0);
        assert_eq!(var_matrix(&i, "m").at(1, 1).re, 22.0);
    }

    #[test]
    fn auto_grow_assignment() {
        let i = run("x(3) = 5;\ny = length(x);");
        assert_eq!(var_f64(&i, "y"), 3.0);
        assert_eq!(var_matrix(&i, "x").lin(0).re, 0.0);
    }

    #[test]
    fn indexed_assignment_2d() {
        let i = run("a = zeros(2, 2);\na(1, 2) = 7;\na(2, :) = [8 9];");
        let a = var_matrix(&i, "a");
        assert_eq!(a.at(0, 1).re, 7.0);
        assert_eq!(a.at(1, 0).re, 8.0);
        assert_eq!(a.at(1, 1).re, 9.0);
    }

    #[test]
    fn end_in_assignment_index() {
        let i = run("x = 1:5;\nx(end) = 99;");
        assert_eq!(var_matrix(&i, "x").lin(4).re, 99.0);
    }

    #[test]
    fn logical_indexing_reads() {
        let i = run("v = [5 -2 8 -1];\np = v(v > 0);");
        let p = var_matrix(&i, "p");
        assert_eq!(p.numel(), 2);
        assert_eq!(p.lin(1).re, 8.0);
    }

    #[test]
    fn short_circuit_and() {
        // Without short circuit the second operand would error (index 0).
        let i = run("x = [];\nif isempty(x) || x(1) > 0\n ok = 1;\nelse\n ok = 0;\nend");
        assert_eq!(var_f64(&i, "ok"), 1.0);
    }

    #[test]
    fn anonymous_function_captures() {
        let i = run("k = 3;\nf = @(x) k * x;\ny = f(7);\nk = 100;\nz = f(7);");
        assert_eq!(var_f64(&i, "y"), 21.0);
        // Captured at definition time.
        assert_eq!(var_f64(&i, "z"), 21.0);
    }

    #[test]
    fn function_handles_and_feval() {
        let src = "h = @sq;\na = h(4);\nb = feval(h, 5);\nfunction y = sq(x)\ny = x^2;\nend";
        let i = run(src);
        assert_eq!(var_f64(&i, "a"), 16.0);
        assert_eq!(var_f64(&i, "b"), 25.0);
    }

    #[test]
    fn nargin_is_visible() {
        let src = "a = f(1);\nb = f(1, 2);\nfunction y = f(p, q)\ny = nargin;\nend";
        let i = run(src);
        assert_eq!(var_f64(&i, "a"), 1.0);
        assert_eq!(var_f64(&i, "b"), 2.0);
    }

    #[test]
    fn output_of_disp_and_fprintf() {
        let i = run("disp('hello');\nfprintf('%d-%d\\n', 1, 2);");
        assert_eq!(i.output(), "hello\n1-2\n");
    }

    #[test]
    fn unsuppressed_assignment_displays() {
        let i = run("x = 42");
        assert!(i.output().contains("x = 42"));
    }

    #[test]
    fn runtime_error_has_span() {
        let mut i = Interpreter::from_source("x = [1 2] + [1 2 3];").unwrap();
        let err = i.run_script().unwrap_err();
        assert!(err.message.contains("dimensions"));
        assert_ne!(err.span, Span::dummy());
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let mut i = Interpreter::from_source("while 1\n x = 1;\nend").unwrap();
        i.set_fuel(10_000);
        let err = i.run_script().unwrap_err();
        assert!(err.message.contains("fuel"));
    }

    #[test]
    fn undefined_variable_errors() {
        let mut i = Interpreter::from_source("y = no_such_thing + 1;").unwrap();
        let err = i.run_script().unwrap_err();
        assert!(err.message.contains("no_such_thing"));
    }

    #[test]
    fn string_indexing() {
        let i = run("s = 'hello';\nc = s(1);\nt = s(2:3);");
        assert_eq!(i.var("c"), Some(&Value::Str("h".to_string())));
        assert_eq!(i.var("t"), Some(&Value::Str("el".to_string())));
    }

    #[test]
    fn matrix_of_ranges() {
        let i = run("v = [1:3, 7];");
        assert_eq!(var_matrix(&i, "v").numel(), 4);
        assert_eq!(var_matrix(&i, "v").lin(3).re, 7.0);
    }

    #[test]
    fn for_over_matrix_iterates_columns() {
        let i = run("a = [1 2; 3 4];\ns = 0;\nfor col = a\n s = s + col(1);\nend");
        assert_eq!(var_f64(&i, "s"), 3.0);
    }

    #[test]
    fn call_entry_point_directly() {
        let src = "function y = fir1(x)\ny = 2 * x;\nend";
        let mut i = Interpreter::from_source(src).unwrap();
        let outs = i
            .call("fir1", vec![Value::scalar(10.0)], 1)
            .expect("call ok");
        assert_eq!(outs[0].as_matrix().unwrap().as_real_scalar().unwrap(), 20.0);
    }

    #[test]
    fn global_variables_read() {
        let mut i = Interpreter::from_source("global g\nx = g;").unwrap();
        i.run_script().unwrap();
        assert!(var_matrix(&i, "x").is_empty());
    }

    #[test]
    fn power_operators() {
        let i = run("a = 2^10;\nb = [1 2 3].^2;\nc = 2.^[1 2 3];");
        assert_eq!(var_f64(&i, "a"), 1024.0);
        assert_eq!(var_matrix(&i, "b").lin(2).re, 9.0);
        assert_eq!(var_matrix(&i, "c").lin(2).re, 8.0);
    }

    #[test]
    fn comparison_produces_logical() {
        let i = run("m = [1 2 3] > 2;");
        assert!(var_matrix(&i, "m").is_logical());
        assert_eq!(var_matrix(&i, "m").lin(2).re, 1.0);
    }

    #[test]
    fn multiassign_with_discard() {
        let src = "[~, idx] = max([3 9 4]);";
        let i = run(src);
        assert_eq!(var_f64(&i, "idx"), 2.0);
    }

    #[test]
    fn scalar_expansion_assignment() {
        let i = run("x = zeros(1, 4);\nx(2:3) = 5;");
        let x = var_matrix(&i, "x");
        assert_eq!(x.lin(1).re, 5.0);
        assert_eq!(x.lin(2).re, 5.0);
        assert_eq!(x.lin(3).re, 0.0);
    }
}
