//! # matic-interp
//!
//! Reference interpreter for the MATLAB subset accepted by the `matic`
//! compiler. The interpreter is the *numerical oracle* of the project:
//! generated C code (host-compiled) and ASIP-simulated code are both
//! checked against its outputs.
//!
//! The value model is MATLAB's: one numeric type (a column-major matrix of
//! complex doubles, where scalars are 1×1), logical flags on comparison
//! results, strings, and function handles.
//!
//! # Examples
//!
//! ```
//! use matic_interp::Interpreter;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut interp = Interpreter::from_source("y = sum((1:10).^2);")?;
//! interp.run_script()?;
//! let y = interp.var("y").expect("defined").as_matrix()?.as_real_scalar()?;
//! assert_eq!(y, 385.0);
//! # Ok(())
//! # }
//! ```

pub mod builtins;
pub mod cx;
pub mod exec;
pub mod value;

pub use builtins::{call_builtin, is_builtin, Host};
pub use cx::Cx;
pub use exec::{apply_binop, classify_message, ErrorKind, Interpreter, RuntimeError, DEFAULT_FUEL};
pub use value::{Closure, Matrix, Value};
