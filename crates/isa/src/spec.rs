//! The parameterized ISA description.
//!
//! The DATE'16 paper's key retargetability claim is that "the specialized
//! instruction set of the target processor [is described] in a
//! parameterized way allowing the support of any processor". [`IsaSpec`]
//! is that description: which custom-instruction classes exist, the SIMD
//! width, per-class cycle costs, and the intrinsic-name prefix used in the
//! generated ANSI C. Specs serialize to JSON so new targets are data, not
//! code.

use crate::json::{self, Json};
use crate::op::OpClass;
use std::collections::BTreeMap;
use std::fmt;

/// Which custom-instruction families a target implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// SIMD element-wise/reduction instructions (`vadd`, `vmul`, `vred*`…).
    pub simd: bool,
    /// Complex-arithmetic instructions (`cadd`, `cmul`, `cmac`, `cconj`).
    pub complex: bool,
    /// Multiply-accumulate instructions (`vmac`, `cmac`).
    pub mac: bool,
}

impl Features {
    /// Everything enabled.
    pub fn all() -> Features {
        Features {
            simd: true,
            complex: true,
            mac: true,
        }
    }

    /// Nothing enabled (plain scalar core).
    pub fn none() -> Features {
        Features {
            simd: false,
            complex: false,
            mac: false,
        }
    }

    /// Every feature subset, in a stable order (the ablation axis of the
    /// design-space grid: 2³ = 8 combinations).
    pub fn subsets() -> [Features; 8] {
        let mut out = [Features::none(); 8];
        for (i, f) in out.iter_mut().enumerate() {
            f.simd = i & 1 != 0;
            f.complex = i & 2 != 0;
            f.mac = i & 4 != 0;
        }
        out
    }

    /// Whether any custom-instruction family is enabled.
    pub fn any(&self) -> bool {
        self.simd || self.complex || self.mac
    }
}

/// Cycle costs per operation class.
///
/// Costs are *per issue*: a `VectorMul` costs `cost(VectorMul)` cycles and
/// retires `vector_width` lane results, which is exactly how the custom
/// instructions of the paper's ASIP amortize work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    costs: BTreeMap<OpClass, u32>,
}

impl CostModel {
    /// A cost model with the default DSP-like latencies.
    pub fn dsp_default() -> CostModel {
        let mut costs = BTreeMap::new();
        for &(op, c) in &[
            (OpClass::ScalarAlu, 1),
            (OpClass::ScalarMul, 2),
            (OpClass::ScalarDiv, 8),
            (OpClass::ScalarSqrt, 12),
            (OpClass::ScalarTrans, 20),
            (OpClass::Load, 1),
            (OpClass::Store, 1),
            (OpClass::Branch, 1),
            (OpClass::Call, 4),
            (OpClass::VectorAlu, 1),
            (OpClass::VectorMul, 2),
            (OpClass::VectorDiv, 10),
            (OpClass::VectorMac, 2),
            (OpClass::VectorRedAdd, 2),
            (OpClass::VectorRedMinMax, 2),
            (OpClass::VectorLoad, 1),
            (OpClass::VectorStore, 1),
            (OpClass::ComplexAdd, 1),
            (OpClass::ComplexMul, 2),
            (OpClass::ComplexMac, 2),
            (OpClass::ComplexConj, 1),
            (OpClass::VComplexAdd, 1),
            (OpClass::VComplexMul, 2),
            (OpClass::VComplexMac, 2),
        ] {
            costs.insert(op, c);
        }
        CostModel { costs }
    }

    /// Cycles charged per issue of `op`.
    pub fn cost(&self, op: OpClass) -> u32 {
        self.costs.get(&op).copied().unwrap_or(1)
    }

    /// Overrides the cost of one class.
    pub fn set_cost(&mut self, op: OpClass, cycles: u32) {
        self.costs.insert(op, cycles);
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::dsp_default()
    }
}

/// A complete parameterized target description.
#[derive(Debug, Clone, PartialEq)]
pub struct IsaSpec {
    /// Target name (used in reports and generated-file headers).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// SIMD lanes per vector register (1 = no SIMD datapath).
    pub vector_width: usize,
    /// Which custom-instruction families exist.
    pub features: Features,
    /// Cycle cost per operation class.
    pub costs: CostModel,
    /// Prefix for intrinsic functions in generated C (e.g. `__asip`).
    pub intrinsic_prefix: String,
}

impl IsaSpec {
    /// The paper-like DSP ASIP: 8-lane SIMD, complex arithmetic and MAC
    /// custom instructions.
    pub fn dsp16() -> IsaSpec {
        IsaSpec {
            name: "dsp16".to_string(),
            description:
                "DSP-oriented ASIP with 8-lane SIMD, complex-arithmetic and MAC custom instructions"
                    .to_string(),
            vector_width: 8,
            features: Features::all(),
            costs: CostModel::dsp_default(),
            intrinsic_prefix: "__asip".to_string(),
        }
    }

    /// A plain scalar core — the machine model for the MATLAB-Coder-like
    /// baseline (no custom instructions at all).
    pub fn scalar_baseline() -> IsaSpec {
        IsaSpec {
            name: "scalar".to_string(),
            description: "plain scalar core without custom instructions (baseline)".to_string(),
            vector_width: 1,
            features: Features::none(),
            costs: CostModel::dsp_default(),
            intrinsic_prefix: "__asip".to_string(),
        }
    }

    /// A `dsp16` variant with a different SIMD width (for the
    /// width-sweep experiment).
    pub fn with_width(width: usize) -> IsaSpec {
        let mut spec = IsaSpec::dsp16();
        spec.name = format!("dsp16_w{width}");
        spec.vector_width = width.max(1);
        spec.normalize();
        spec
    }

    /// A `dsp16` variant with selected feature families (for the
    /// ablation experiment).
    pub fn with_features(features: Features) -> IsaSpec {
        let mut spec = IsaSpec::dsp16();
        spec.features = features;
        spec.name = format!(
            "dsp16{}{}{}",
            if features.simd { "_simd" } else { "" },
            if features.complex { "_cplx" } else { "" },
            if features.mac { "_mac" } else { "" },
        );
        if spec.name == "dsp16" {
            spec.name = "dsp16_none".to_string();
        }
        spec.normalize();
        spec
    }

    /// Canonicalizes the width/feature interaction in place: a spec
    /// without the `simd` feature has no SIMD datapath (`vector_width`
    /// collapses to 1), and a 1-lane datapath cannot claim `simd`.
    ///
    /// Width 0 is also lifted to 1 — the normalized form always passes
    /// [`IsaSpec::validate`]'s width/feature checks, which is what the
    /// design-space explorer relies on to deduplicate candidates.
    pub fn normalize(&mut self) {
        if self.vector_width <= 1 {
            self.features.simd = false;
        }
        if !self.features.simd {
            self.vector_width = 1;
        }
    }

    /// Whether [`IsaSpec::normalize`] would leave the spec unchanged.
    pub fn is_normalized(&self) -> bool {
        let mut c = self.clone();
        c.normalize();
        c == *self
    }

    /// Whether the target can issue `op` as a single custom instruction.
    pub fn supports(&self, op: OpClass) -> bool {
        if op.is_baseline() {
            return true;
        }
        let f = self.features;
        match op {
            OpClass::VectorMac => f.simd && f.mac && self.vector_width > 1,
            OpClass::ComplexMac => f.complex && f.mac,
            OpClass::VComplexMac => f.simd && f.complex && f.mac && self.vector_width > 1,
            OpClass::VComplexAdd | OpClass::VComplexMul => {
                f.simd && f.complex && self.vector_width > 1
            }
            v if v.is_vector() => f.simd && self.vector_width > 1,
            c if c.is_complex() => f.complex,
            _ => true,
        }
    }

    /// Cycles per issue of `op` on this target.
    pub fn cost(&self, op: OpClass) -> u32 {
        self.costs.cost(op)
    }

    /// The intrinsic function name the C backend emits for `op`
    /// (e.g. `__asip_vmac`).
    pub fn intrinsic_name(&self, op: OpClass) -> String {
        format!("{}_{}", self.intrinsic_prefix, op.mnemonic())
    }

    /// Serializes the spec to pretty JSON (the on-disk target format:
    /// adding a processor is a data change, not a code change).
    pub fn to_json(&self) -> String {
        let cost_fields: Vec<(String, Json)> = self
            .costs
            .costs
            .iter()
            .map(|(op, c)| (op.snake_name().to_string(), Json::Num(*c as f64)))
            .collect();
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("description".into(), Json::Str(self.description.clone())),
            ("vector_width".into(), Json::Num(self.vector_width as f64)),
            (
                "features".into(),
                Json::Obj(vec![
                    ("simd".into(), Json::Bool(self.features.simd)),
                    ("complex".into(), Json::Bool(self.features.complex)),
                    ("mac".into(), Json::Bool(self.features.mac)),
                ]),
            ),
            (
                "costs".into(),
                Json::Obj(vec![("costs".into(), Json::Obj(cost_fields))]),
            ),
            (
                "intrinsic_prefix".into(),
                Json::Str(self.intrinsic_prefix.clone()),
            ),
        ])
        .pretty()
    }

    /// Parses a spec from JSON. All fields are required; unknown cost keys
    /// are rejected so typos in spec files surface immediately.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed or missing field.
    pub fn from_json(text: &str) -> Result<IsaSpec, String> {
        let doc = json::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field `{key}`"))
        };
        let features = doc
            .get("features")
            .ok_or_else(|| "missing field `features`".to_string())?;
        match features {
            Json::Obj(fields) => {
                for (key, _) in fields {
                    if !matches!(key.as_str(), "simd" | "complex" | "mac") {
                        return Err(format!("unknown feature `{key}` in features"));
                    }
                }
            }
            _ => return Err("`features` must be an object".to_string()),
        }
        let flag = |key: &str| -> Result<bool, String> {
            features
                .get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("missing or non-bool field `features.{key}`"))
        };
        let cost_obj = doc
            .get("costs")
            .and_then(|c| c.get("costs"))
            .ok_or_else(|| "missing field `costs.costs`".to_string())?;
        let mut costs = BTreeMap::new();
        match cost_obj {
            Json::Obj(fields) => {
                for (key, val) in fields {
                    let op = OpClass::from_snake(key)
                        .ok_or_else(|| format!("unknown op class `{key}` in costs"))?;
                    // A cycle cost must be a positive integer: zero,
                    // negative, fractional or non-finite costs would turn
                    // into nonsense totals deep inside the simulator, so
                    // they are rejected here, naming the op.
                    let cycles = val
                        .as_u64()
                        .filter(|c| (1..=u32::MAX as u64).contains(c))
                        .ok_or_else(|| {
                            format!("cost for op `{key}` must be a positive integer cycle count")
                        })?;
                    costs.insert(op, cycles as u32);
                }
            }
            _ => return Err("`costs.costs` must be an object".to_string()),
        }
        let spec = IsaSpec {
            name: str_field("name")?,
            description: str_field("description")?,
            vector_width: doc
                .get("vector_width")
                .and_then(Json::as_u64)
                .ok_or_else(|| "missing or non-integer field `vector_width`".to_string())?
                as usize,
            features: Features {
                simd: flag("simd")?,
                complex: flag("complex")?,
                mac: flag("mac")?,
            },
            costs: CostModel { costs },
            intrinsic_prefix: str_field("intrinsic_prefix")?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates internal consistency (width vs. features).
    ///
    /// # Errors
    ///
    /// Describes the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.vector_width == 0 {
            return Err("vector_width must be at least 1".to_string());
        }
        if self.features.simd && self.vector_width < 2 {
            return Err(
                "simd feature requires vector_width >= 2 (normalize() canonicalizes this)"
                    .to_string(),
            );
        }
        if !self.features.simd && self.vector_width > 1 {
            return Err(format!(
                "vector_width {} without the simd feature is inconsistent \
                 (normalize() canonicalizes this)",
                self.vector_width
            ));
        }
        if self.name.is_empty() {
            return Err("target name must not be empty".to_string());
        }
        if self.intrinsic_prefix.is_empty()
            || !self
                .intrinsic_prefix
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err("intrinsic_prefix must be a C identifier fragment".to_string());
        }
        Ok(())
    }
}

impl fmt::Display for IsaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (W={}, simd={}, complex={}, mac={})",
            self.name,
            self.vector_width,
            self.features.simd,
            self.features.complex,
            self.features.mac
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsp16_supports_everything() {
        let t = IsaSpec::dsp16();
        for &op in OpClass::ALL {
            assert!(t.supports(op), "dsp16 should support {op}");
        }
        assert!(t.validate().is_ok());
    }

    #[test]
    fn scalar_baseline_supports_only_baseline() {
        let t = IsaSpec::scalar_baseline();
        for &op in OpClass::ALL {
            assert_eq!(t.supports(op), op.is_baseline(), "{op}");
        }
        assert!(t.validate().is_ok());
    }

    #[test]
    fn feature_gating() {
        let t = IsaSpec::with_features(Features {
            simd: true,
            complex: false,
            mac: false,
        });
        assert!(t.supports(OpClass::VectorMul));
        assert!(!t.supports(OpClass::VectorMac));
        assert!(!t.supports(OpClass::ComplexMul));
        assert!(!t.supports(OpClass::VComplexMul));

        let t = IsaSpec::with_features(Features {
            simd: false,
            complex: true,
            mac: true,
        });
        assert!(t.supports(OpClass::ComplexMul));
        assert!(t.supports(OpClass::ComplexMac));
        assert!(!t.supports(OpClass::VectorMul));
        assert!(!t.supports(OpClass::VComplexMac));
    }

    #[test]
    fn width_one_disables_simd() {
        let t = IsaSpec::with_width(1);
        assert!(!t.supports(OpClass::VectorMul));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn json_round_trip() {
        let t = IsaSpec::dsp16();
        let json = t.to_json();
        let back = IsaSpec::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn json_is_human_editable() {
        let json = IsaSpec::dsp16().to_json();
        assert!(json.contains("\"vector_width\": 8"));
        assert!(json.contains("\"complex_mul\""));
    }

    #[test]
    fn malformed_json_errors() {
        assert!(IsaSpec::from_json("{not json").is_err());
    }

    #[test]
    fn unknown_feature_is_rejected_by_name() {
        let json = IsaSpec::dsp16()
            .to_json()
            .replace("\"mac\": true", "\"mac\": true,\n    \"fma\": true");
        let err = IsaSpec::from_json(&json).unwrap_err();
        assert_eq!(err, "unknown feature `fma` in features");
    }

    #[test]
    fn duplicate_cost_entry_is_rejected_by_name() {
        let json = IsaSpec::dsp16().to_json();
        assert!(json.contains("\"scalar_mul\": 2"), "fixture drifted");
        let json = json.replace(
            "\"scalar_mul\": 2",
            "\"scalar_mul\": 2,\n      \"scalar_mul\": 3",
        );
        let err = IsaSpec::from_json(&json).unwrap_err();
        assert!(
            err.contains("duplicate key `scalar_mul`"),
            "error must name the duplicated key: {err}"
        );
    }

    #[test]
    fn duplicate_feature_entry_is_rejected() {
        let json = IsaSpec::dsp16()
            .to_json()
            .replace("\"mac\": true", "\"mac\": true,\n    \"mac\": true");
        assert!(IsaSpec::from_json(&json)
            .unwrap_err()
            .contains("duplicate key `mac`"));
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut t = IsaSpec::dsp16();
        t.vector_width = 0;
        assert!(t.validate().is_err());

        let mut t = IsaSpec::dsp16();
        t.vector_width = 1; // but simd still claimed
        assert!(t.validate().is_err());

        let mut t = IsaSpec::dsp16();
        t.intrinsic_prefix = "bad prefix!".to_string();
        assert!(t.validate().is_err());
    }

    #[test]
    fn intrinsic_names() {
        let t = IsaSpec::dsp16();
        assert_eq!(t.intrinsic_name(OpClass::VectorMac), "__asip_vmac");
        assert_eq!(t.intrinsic_name(OpClass::ComplexMul), "__asip_cmul");
    }

    #[test]
    fn cost_override() {
        let mut t = IsaSpec::dsp16();
        assert_eq!(t.cost(OpClass::ScalarDiv), 8);
        t.costs.set_cost(OpClass::ScalarDiv, 16);
        assert_eq!(t.cost(OpClass::ScalarDiv), 16);
    }

    #[test]
    fn normalize_canonicalizes_width_feature_interaction() {
        // simd claimed on a 1-lane datapath: the feature goes away.
        let mut t = IsaSpec::dsp16();
        t.vector_width = 1;
        t.normalize();
        assert!(!t.features.simd);
        assert_eq!(t.vector_width, 1);
        assert!(t.validate().is_ok());

        // a vector width without the simd feature: the width collapses.
        let mut t = IsaSpec::dsp16();
        t.features.simd = false;
        t.normalize();
        assert_eq!(t.vector_width, 1);
        assert!(t.validate().is_ok());

        // width 0 is lifted to the scalar form.
        let mut t = IsaSpec::dsp16();
        t.vector_width = 0;
        t.normalize();
        assert_eq!(t.vector_width, 1);
        assert!(!t.features.simd);
        assert!(t.validate().is_ok());

        assert!(IsaSpec::dsp16().is_normalized());
    }

    #[test]
    fn ablation_constructors_produce_consistent_specs() {
        // Regression: `with_features` used to keep vector_width 8 on
        // simd-less specs and `with_width(1)` kept the simd flag.
        for features in Features::subsets() {
            let t = IsaSpec::with_features(features);
            assert!(t.validate().is_ok(), "{}: {:?}", t.name, t.validate());
            if !features.simd {
                assert_eq!(t.vector_width, 1, "{}", t.name);
            }
        }
        for w in [1, 2, 8] {
            assert!(IsaSpec::with_width(w).validate().is_ok());
        }
    }

    #[test]
    fn feature_subsets_enumerate_all_combinations() {
        let subsets = Features::subsets();
        let mut seen = std::collections::HashSet::new();
        for f in subsets {
            assert!(seen.insert((f.simd, f.complex, f.mac)));
        }
        assert_eq!(seen.len(), 8);
        assert!(!Features::none().any());
        assert!(Features::all().any());
    }

    #[test]
    fn zero_cost_is_rejected_naming_the_op() {
        let json = IsaSpec::dsp16().to_json();
        assert!(json.contains("\"scalar_div\": 8"), "fixture drifted");
        let json = json.replace("\"scalar_div\": 8", "\"scalar_div\": 0");
        let err = IsaSpec::from_json(&json).unwrap_err();
        assert_eq!(
            err,
            "cost for op `scalar_div` must be a positive integer cycle count"
        );
    }

    #[test]
    fn fractional_and_negative_costs_are_rejected_naming_the_op() {
        for bad in ["2.5", "-3", "1e99"] {
            let json = IsaSpec::dsp16()
                .to_json()
                .replace("\"scalar_div\": 8", &format!("\"scalar_div\": {bad}"));
            let err = IsaSpec::from_json(&json).unwrap_err();
            assert!(err.contains("`scalar_div`"), "{bad}: {err}");
        }
    }

    #[test]
    fn inconsistent_json_spec_is_rejected() {
        // simd with a 1-lane datapath.
        let json = IsaSpec::dsp16()
            .to_json()
            .replace("\"vector_width\": 8", "\"vector_width\": 1");
        assert!(IsaSpec::from_json(&json)
            .unwrap_err()
            .contains("simd feature requires vector_width >= 2"));

        // a vector width on a spec that never claims simd.
        let json = IsaSpec::dsp16()
            .to_json()
            .replace("\"simd\": true", "\"simd\": false");
        assert!(IsaSpec::from_json(&json)
            .unwrap_err()
            .contains("without the simd feature"));
    }

    #[test]
    fn ablation_names_are_distinct() {
        let a = IsaSpec::with_features(Features::none());
        let b = IsaSpec::with_features(Features::all());
        let c = IsaSpec::with_features(Features {
            simd: true,
            complex: false,
            mac: false,
        });
        assert_ne!(a.name, b.name);
        assert_ne!(b.name, c.name);
    }
}
