//! # matic-isa
//!
//! Parameterized instruction-set descriptions for ASIP targets — the
//! retargetability mechanism of the DATE'16 paper this project reproduces.
//! A target is *data*: an [`IsaSpec`] lists which custom-instruction
//! classes exist (SIMD, complex arithmetic, MAC), the SIMD width, per-class
//! cycle costs and the intrinsic-name prefix used in generated C. Specs
//! serialize to JSON so adding a processor requires no code changes.
//!
//! # Examples
//!
//! ```
//! use matic_isa::{IsaSpec, OpClass};
//!
//! let target = IsaSpec::dsp16();
//! assert!(target.supports(OpClass::VComplexMac));
//! assert_eq!(target.intrinsic_name(OpClass::VectorMac), "__asip_vmac");
//!
//! let json = target.to_json();
//! let reloaded = IsaSpec::from_json(&json).expect("round-trips");
//! assert_eq!(target, reloaded);
//! ```

pub mod json;
pub mod op;
pub mod spec;

pub use op::OpClass;
pub use spec::{CostModel, Features, IsaSpec};
