//! Operation classes an ASIP datapath can implement.
//!
//! Every instruction the compiler can emit — and every cost the simulator
//! can charge — is keyed by an [`OpClass`]. The parameterized ISA
//! description maps each class to availability and a cycle cost.

use std::fmt;

/// A machine operation class.
///
/// `Vector*` classes process one full SIMD word (the target's vector width
/// in lanes) per issue; `Complex*` classes are the custom complex-arithmetic
/// instructions the paper highlights; `VComplex*` are their vectorized
/// combinations (a SIMD word of complex pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    // Scalar core (always present — any C-programmable processor has these).
    /// Integer/float add, sub, logic, compares, moves.
    ScalarAlu,
    /// Scalar multiply.
    ScalarMul,
    /// Scalar divide.
    ScalarDiv,
    /// Scalar square root and other long-latency unary math.
    ScalarSqrt,
    /// Scalar transcendental (sin/cos/exp/log) — software or LUT assisted.
    ScalarTrans,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional/unconditional branch.
    Branch,
    /// Call/return overhead.
    Call,

    // SIMD custom instructions.
    /// Vector element-wise add/sub/logic (one SIMD word).
    VectorAlu,
    /// Vector element-wise multiply.
    VectorMul,
    /// Vector element-wise divide.
    VectorDiv,
    /// Vector fused multiply-accumulate into an accumulator register.
    VectorMac,
    /// Horizontal reduction of an accumulator to a scalar (sum).
    VectorRedAdd,
    /// Horizontal min/max reduction.
    VectorRedMinMax,
    /// Vector load (one SIMD word).
    VectorLoad,
    /// Vector store (one SIMD word).
    VectorStore,

    // Complex-arithmetic custom instructions.
    /// Complex add/sub (one complex pair per issue).
    ComplexAdd,
    /// Complex multiply (the classic 4-mul/2-add fused into one issue).
    ComplexMul,
    /// Complex multiply-accumulate.
    ComplexMac,
    /// Complex conjugate.
    ComplexConj,

    // Vectorized complex custom instructions.
    /// SIMD word of complex adds.
    VComplexAdd,
    /// SIMD word of complex multiplies.
    VComplexMul,
    /// SIMD word of complex MACs.
    VComplexMac,
}

impl OpClass {
    /// Every operation class, in a stable order.
    pub const ALL: &'static [OpClass] = &[
        OpClass::ScalarAlu,
        OpClass::ScalarMul,
        OpClass::ScalarDiv,
        OpClass::ScalarSqrt,
        OpClass::ScalarTrans,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Call,
        OpClass::VectorAlu,
        OpClass::VectorMul,
        OpClass::VectorDiv,
        OpClass::VectorMac,
        OpClass::VectorRedAdd,
        OpClass::VectorRedMinMax,
        OpClass::VectorLoad,
        OpClass::VectorStore,
        OpClass::ComplexAdd,
        OpClass::ComplexMul,
        OpClass::ComplexMac,
        OpClass::ComplexConj,
        OpClass::VComplexAdd,
        OpClass::VComplexMul,
        OpClass::VComplexMac,
    ];

    /// Whether this class is a SIMD (multi-lane) custom instruction.
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            OpClass::VectorAlu
                | OpClass::VectorMul
                | OpClass::VectorDiv
                | OpClass::VectorMac
                | OpClass::VectorRedAdd
                | OpClass::VectorRedMinMax
                | OpClass::VectorLoad
                | OpClass::VectorStore
                | OpClass::VComplexAdd
                | OpClass::VComplexMul
                | OpClass::VComplexMac
        )
    }

    /// Whether this class operates on complex pairs.
    pub fn is_complex(self) -> bool {
        matches!(
            self,
            OpClass::ComplexAdd
                | OpClass::ComplexMul
                | OpClass::ComplexMac
                | OpClass::ComplexConj
                | OpClass::VComplexAdd
                | OpClass::VComplexMul
                | OpClass::VComplexMac
        )
    }

    /// Whether this class always exists, even on a plain scalar core.
    pub fn is_baseline(self) -> bool {
        matches!(
            self,
            OpClass::ScalarAlu
                | OpClass::ScalarMul
                | OpClass::ScalarDiv
                | OpClass::ScalarSqrt
                | OpClass::ScalarTrans
                | OpClass::Load
                | OpClass::Store
                | OpClass::Branch
                | OpClass::Call
        )
    }

    /// Number of operation classes; `op as usize` indexes a dense table
    /// of this size (discriminants follow declaration order).
    pub const COUNT: usize = 24;

    /// The snake_case name used in JSON spec files (e.g. `v_complex_mul`).
    pub fn snake_name(self) -> &'static str {
        match self {
            OpClass::ScalarAlu => "scalar_alu",
            OpClass::ScalarMul => "scalar_mul",
            OpClass::ScalarDiv => "scalar_div",
            OpClass::ScalarSqrt => "scalar_sqrt",
            OpClass::ScalarTrans => "scalar_trans",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Call => "call",
            OpClass::VectorAlu => "vector_alu",
            OpClass::VectorMul => "vector_mul",
            OpClass::VectorDiv => "vector_div",
            OpClass::VectorMac => "vector_mac",
            OpClass::VectorRedAdd => "vector_red_add",
            OpClass::VectorRedMinMax => "vector_red_min_max",
            OpClass::VectorLoad => "vector_load",
            OpClass::VectorStore => "vector_store",
            OpClass::ComplexAdd => "complex_add",
            OpClass::ComplexMul => "complex_mul",
            OpClass::ComplexMac => "complex_mac",
            OpClass::ComplexConj => "complex_conj",
            OpClass::VComplexAdd => "v_complex_add",
            OpClass::VComplexMul => "v_complex_mul",
            OpClass::VComplexMac => "v_complex_mac",
        }
    }

    /// Inverse of [`OpClass::snake_name`].
    pub fn from_snake(name: &str) -> Option<OpClass> {
        OpClass::ALL
            .iter()
            .copied()
            .find(|op| op.snake_name() == name)
    }

    /// Short mnemonic used in intrinsic names and disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::ScalarAlu => "alu",
            OpClass::ScalarMul => "mul",
            OpClass::ScalarDiv => "div",
            OpClass::ScalarSqrt => "sqrt",
            OpClass::ScalarTrans => "trans",
            OpClass::Load => "ld",
            OpClass::Store => "st",
            OpClass::Branch => "br",
            OpClass::Call => "call",
            OpClass::VectorAlu => "vadd",
            OpClass::VectorMul => "vmul",
            OpClass::VectorDiv => "vdiv",
            OpClass::VectorMac => "vmac",
            OpClass::VectorRedAdd => "vredadd",
            OpClass::VectorRedMinMax => "vredmm",
            OpClass::VectorLoad => "vld",
            OpClass::VectorStore => "vst",
            OpClass::ComplexAdd => "cadd",
            OpClass::ComplexMul => "cmul",
            OpClass::ComplexMac => "cmac",
            OpClass::ComplexConj => "cconj",
            OpClass::VComplexAdd => "vcadd",
            OpClass::VComplexMul => "vcmul",
            OpClass::VComplexMac => "vcmac",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_list_is_complete_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in OpClass::ALL {
            assert!(seen.insert(*op), "duplicate {op}");
        }
        assert_eq!(OpClass::ALL.len(), 24);
    }

    #[test]
    fn classification_is_consistent() {
        for &op in OpClass::ALL {
            if op.is_baseline() {
                assert!(!op.is_vector(), "{op} baseline but vector");
                assert!(!op.is_complex(), "{op} baseline but complex");
            }
        }
        assert!(OpClass::VComplexMac.is_vector());
        assert!(OpClass::VComplexMac.is_complex());
        assert!(OpClass::ComplexMul.is_complex());
        assert!(!OpClass::ComplexMul.is_vector());
    }

    #[test]
    fn snake_name_round_trip() {
        for &op in OpClass::ALL {
            assert_eq!(OpClass::from_snake(op.snake_name()), Some(op));
        }
        assert_eq!(OpClass::VComplexMul.snake_name(), "v_complex_mul");
        assert_eq!(OpClass::from_snake("not_an_op"), None);
    }

    #[test]
    fn discriminants_are_dense_and_ordered() {
        assert_eq!(OpClass::ALL.len(), OpClass::COUNT);
        for (i, &op) in OpClass::ALL.iter().enumerate() {
            assert_eq!(op as usize, i, "{op} discriminant out of order");
        }
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in OpClass::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }
}
